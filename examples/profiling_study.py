#!/usr/bin/env python
"""Profiling study: where the time goes on each parcelport.

Reproduces the paper's §5 profiling narrative: running the same
communication-heavy workload over the MPI and LCI parcelports, then
breaking execution down — the MPI run's time sinks into the big
progress-lock convoy ("spinning on the blocking lock of ucp_progress"),
while the LCI run's try-lock engine shows cheap contended attempts
instead.  Also demonstrates the collectives layer.

Run:  python examples/profiling_study.py [--nodes 4]
"""

import argparse

from repro import make_runtime
from repro.bench import format_breakdown, lock_report, runtime_breakdown
from repro.hpx_rt import Collectives
from repro.hpx_rt.platform import EXPANSE


def run_workload(config: str, nodes: int):
    """An all-to-all burst + allreduce epilogue on `nodes` localities."""
    rt = make_runtime(config, platform=EXPANSE, n_localities=nodes)
    coll = Collectives(rt)
    per_pair = 30
    total = nodes * (nodes - 1) * per_pair
    received = {"n": 0}
    all_done = rt.new_latch(nodes)

    def sink(worker, i, blob):
        received["n"] += 1
        return None

    rt.register_action("sink", sink)

    def make_task(lid):
        def task(worker):
            for i in range(per_pair):
                for dest in range(nodes):
                    if dest != lid:
                        yield from rt.locality(lid).apply(
                            worker, dest, "sink", (i, "x"),
                            arg_sizes=[8, 4096])
            # settle: a barrier then an allreduce over message counts
            yield from coll.barrier(worker, "settle")
            got = yield from coll.allreduce(worker, "count",
                                            received["n"], op="sum")
            task.result = got
            all_done.count_down()
        return task

    rt.boot()
    for lid in range(nodes):
        rt.locality(lid).spawn(make_task(lid))
    rt.run_until(all_done, max_events=30_000_000)
    return rt, total


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--nodes", type=int, default=4)
    args = ap.parse_args()

    for config in ("mpi_i", "lci_psr_cq_pin_i"):
        rt, total = run_workload(config, args.nodes)
        b = runtime_breakdown(rt)
        print(f"\n===== {config} ({args.nodes} localities, "
              f"{total} parcels) =====")
        print(format_breakdown(b))
        print("\nhottest locks:")
        print(lock_report(rt))
        if "mpi_lock_wait_us" in b:
            share = b["mpi_lock_wait_us"] / b["virtual_time_us"] / \
                (args.nodes * EXPANSE.sim_cores_per_node) * 100
            print(f"\n-> MPI progress-lock wait = "
                  f"{b['mpi_lock_wait_us']:,.0f} us "
                  f"({share:.1f}% of all worker time) — the paper's "
                  f"'spinning on the blocking lock of ucp_progress'")
        if "lci_progress_contended" in b:
            frac = b["lci_progress_contended"] / max(
                b["lci_progress_calls"], 1) * 100
            print(f"\n-> LCI try-lock contention: {frac:.1f}% of progress "
                  f"attempts failed fast (no convoy: workers moved on)")


if __name__ == "__main__":
    main()
