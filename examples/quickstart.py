#!/usr/bin/env python
"""Quickstart: boot a simulated HPX runtime, register actions, send parcels.

This is the smallest end-to-end use of the public API:

1. pick a parcelport configuration using the paper's Table-1 naming;
2. create a runtime on a platform preset;
3. register actions (the RPC handlers of §2.2);
4. spawn a task that invokes actions on a remote locality;
5. drive the simulation until a future resolves.

Run:  python examples/quickstart.py
"""

from repro import LAPTOP, make_runtime

N_MESSAGES = 20


def main() -> None:
    # The baseline LCI parcelport with the send-immediate optimization —
    # the paper's best configuration, a.k.a. lci_psr_cq_rp_i (§5).
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2)

    all_done = rt.new_latch(N_MESSAGES)
    received = []

    # --- actions (run on whichever locality a parcel targets) -----------
    def greet(worker, idx, blob):
        """Receives one message on locality 1 and acknowledges it."""
        received.append(idx)
        yield from worker.locality.apply(worker, 0, "ack", (idx,))

    def ack(worker, idx):
        all_done.count_down()
        return None

    rt.register_action("greet", greet)
    rt.register_action("ack", ack)

    # --- sender task on locality 0 ----------------------------------------
    def sender(worker):
        for i in range(N_MESSAGES):
            # a small index argument plus a 4 KiB payload argument
            yield from rt.locality(0).apply(worker, 1, "greet", (i, "data"),
                                            arg_sizes=[8, 4096])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(all_done)

    print(f"delivered {len(received)} messages and {N_MESSAGES} acks "
          f"in {rt.now:.1f} virtual microseconds")
    print(f"wire traffic: {rt.fabric.stats.counters['msgs']} messages, "
          f"{int(rt.fabric.stats.accum['bytes'])} bytes")
    pp = rt.localities[1].parcelport
    print(f"receiver parcelport delivered "
          f"{pp.stats.counters['messages_delivered']} HPX messages")
    assert sorted(received) == list(range(N_MESSAGES))
    print("OK")


if __name__ == "__main__":
    main()
