#!/usr/bin/env python
"""Design-space sweep: the §7.2 research questions, parameterized.

Uses the generic sweep utility to explore two axes the paper identifies
as open research directions:

* **device replication** (`LciParams.num_devices`) — "replicating
  low-level network resources could greatly increase message rates";
* **progress model** (pin vs worker-thread progress).

Saves results to JSON so they can be reloaded and re-pivoted without
rerunning the simulations.

Run:  python examples/design_space_sweep.py [--total 1500] [--out sweep.json]
"""

import argparse

from repro.bench.reporting import format_series_table
from repro.bench.sweep import SweepResult, SweepSpec, run_sweep
from repro.hpx_rt import HpxRuntime
from repro.hpx_rt.platform import EXPANSE
from repro.lci_sim import DEFAULT_LCI_PARAMS
from repro.parcelport import PPConfig, make_parcelport_factory


def measure_rate(progress: str, num_devices: int, total: int,
                 seed: int) -> float:
    """8 B message rate (K/s) for one (progress, devices) point."""
    cfg = PPConfig.parse(f"lci_psr_cq_{progress}_i")
    params = DEFAULT_LCI_PARAMS.with_(num_devices=num_devices)
    rt = HpxRuntime(EXPANSE, 2, make_parcelport_factory(cfg,
                                                        lci_params=params),
                    immediate=True, seed=seed)
    state = {"n": 0}
    done = rt.new_future()

    def sink(worker, blob):
        state["n"] += 1
        if state["n"] == total:
            done.set_result(rt.now)
        return None

    rt.register_action("sink", sink)

    def make_task():
        def inject(worker):
            for _ in range(100):
                yield from rt.locality(0).apply(worker, 1, "sink", ("d",),
                                                arg_sizes=[8])
        return inject

    rt.boot()
    for _ in range(total // 100):
        rt.locality(0).spawn(make_task())
    rt.run_until(done, max_events=30_000_000)
    return total / rt.now * 1e3


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--total", type=int, default=1500)
    ap.add_argument("--out", default=None,
                    help="optional JSON path to save/reload results")
    args = ap.parse_args()
    total = args.total - args.total % 100

    spec = SweepSpec(axes={"progress": ["pin", "mt"],
                           "num_devices": [1, 2, 4]})

    def fn(progress, num_devices, seed):
        rate = measure_rate(progress, num_devices, total, seed)
        print(f"  progress={progress:<4} devices={num_devices}  "
              f"{rate:8.1f} K msgs/s")
        return {"rate_kps": rate}

    result = run_sweep(fn, spec)

    if args.out:
        result.save(args.out)
        result = SweepResult.load(args.out)
        print(f"(saved + reloaded {len(result)} rows from {args.out})")

    series = result.to_series(x="num_devices", y="rate_kps",
                              group_by="progress")
    print()
    print(format_series_table(series, x_name="devices"))
    mt = next(s for s in series if s.label == "mt")
    gain = mt.ys[-1] / mt.ys[0]
    print(f"\nworker-progress gains {gain:.1f}x from device replication "
          f"(the paper's §7.2 hypothesis)")


if __name__ == "__main__":
    main()
