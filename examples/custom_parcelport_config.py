#!/usr/bin/env python
"""Exploring the design space: build a runtime with custom library tunings.

The paper's §7.2 future work asks how LCI-layer design choices affect task
systems.  This example shows the knobs the library exposes for that kind of
study: custom LCI/MPI parameter sets, platform overrides, and direct
parcelport construction — then measures how the LCI eager threshold (the
medium/long protocol switch) moves ping-pong latency.

Run:  python examples/custom_parcelport_config.py
"""

from repro import PPConfig, make_parcelport_factory
from repro.bench import LatencyParams, run_latency
from repro.bench.reporting import format_table
from repro.hpx_rt import HpxRuntime
from repro.hpx_rt.platform import EXPANSE
from repro.lci_sim import DEFAULT_LCI_PARAMS


def latency_with_threshold(eager_threshold: int, msg_size: int) -> float:
    """One ping-pong latency run with a custom LCI eager threshold."""
    cfg = PPConfig.parse("lci_psr_cq_pin_i")
    lci_params = DEFAULT_LCI_PARAMS.with_(eager_threshold=eager_threshold)
    factory = make_parcelport_factory(cfg, lci_params=lci_params)

    # Build the runtime by hand (what make_runtime does under the hood),
    # to show the factory hook.
    rt = HpxRuntime(EXPANSE, n_localities=2, parcelport_factory=factory,
                    immediate=cfg.immediate)
    done = rt.new_latch(1)
    steps = 30

    def ping(worker, token):
        yield from worker.locality.apply(worker, 0, "pong", (token,),
                                         arg_sizes=[msg_size])

    def pong(worker, token):
        if token + 1 < steps:
            yield from worker.locality.apply(worker, 1, "ping", (token + 1,),
                                             arg_sizes=[msg_size])
        else:
            done.count_down()

    rt.register_action("ping", ping)
    rt.register_action("pong", pong)

    def starter(worker):
        yield from rt.locality(0).apply(worker, 1, "ping", (0,),
                                        arg_sizes=[msg_size])

    rt.boot()
    rt.locality(0).spawn(starter)
    rt.run_until(done)
    return rt.now / (2 * steps)


def main() -> None:
    msg_size = 16384
    rows = []
    for threshold in (1024, 4096, 8192, 16384, 65536):
        lat = latency_with_threshold(threshold, msg_size)
        protocol = "medium (eager)" if msg_size <= threshold \
            else "long (rendezvous)"
        rows.append([threshold, protocol, f"{lat:.2f}"])
    print(f"16 KiB one-way latency vs LCI eager threshold "
          f"(lci_psr_cq_pin_i):\n")
    print(format_table(rows, header=["eager threshold (B)",
                                     "16KiB chunk protocol",
                                     "latency (us)"]))
    print("\nCrossing the threshold switches the zero-copy chunk from the "
          "rendezvous path\n(RTS/CTS round trip, zero-copy) to the eager "
          "path (extra copy, no handshake).")

    # And the stock configuration for reference:
    ref = run_latency("lci_psr_cq_pin_i",
                      LatencyParams(msg_size=msg_size, window=1, steps=30))
    print(f"\nstock configuration reference: "
          f"{ref.one_way_latency_us:.2f} us")


if __name__ == "__main__":
    main()
