#!/usr/bin/env python
"""Message-rate study: sweep injection rates across parcelport variants.

Reproduces a miniature of the paper's §4.1 message-rate experiments (Figs
1-3) and prints the series as a table plus an ASCII log-log plot.  Shows
how to drive the benchmark workloads directly, without the per-figure
drivers.

Run:  python examples/message_rate_study.py [--size 8] [--total 2000]
"""

import argparse

from repro.bench import MessageRateParams, Series, run_message_rate
from repro.bench.reporting import ascii_plot, format_series_table
from repro.hpx_rt.platform import EXPANSE

CONFIGS = ["mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i",
           "lci_psr_cq_mt_i"]
RATES_KPS = [100.0, 400.0, 1600.0, None]   # None = unlimited


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--size", type=int, default=8,
                    help="message size in bytes (paper: 8 or 16384)")
    ap.add_argument("--total", type=int, default=2000,
                    help="total messages per run (paper: 500000)")
    args = ap.parse_args()

    batch = 100 if args.size <= 1024 else 10
    total = args.total - args.total % batch

    series = []
    for cfg in CONFIGS:
        s = Series(label=cfg)
        for rate in RATES_KPS:
            params = MessageRateParams(
                msg_size=args.size, batch=batch, total_msgs=total,
                inject_rate_kps=rate, platform=EXPANSE)
            r = run_message_rate(cfg, params)
            s.add(r.achieved_injection_kps, r.message_rate_kps)
            print(f"  {cfg:<18} attempted={rate or 'unlimited':>9} "
                  f"achieved_inj={r.achieved_injection_kps:9.1f}K/s "
                  f"rate={r.message_rate_kps:9.1f}K/s")
        series.append(s)

    print()
    print(format_series_table(series, x_name="inj K/s"))
    print()
    print(ascii_plot(series, title=f"{args.size}B message rate (K/s)"))
    best = max(series, key=lambda s: s.peak)
    print(f"\nbest configuration: {best.label} at {best.peak:.0f} K msgs/s")


if __name__ == "__main__":
    main()
