#!/usr/bin/env python
"""Distributed BFS: the irregular graph workload the paper's intro motivates.

Builds a synthetic scale-free graph, hash-partitions it over localities,
and runs a level-synchronous BFS whose frontier relaxations travel as
tiny parcels — the small, irregular, high-rate traffic that separates
the parcelports.  Validates against a sequential reference BFS and
reports virtual-time TEPS per backend.

Run:  python examples/graph_bfs.py [--vertices 800] [--degree 8]
"""

import argparse

from repro import make_runtime
from repro.apps.graphs import DistributedBfs, make_graph
from repro.bench.reporting import format_table
from repro.hpx_rt.platform import LAPTOP
from repro.sim import RngPool

CONFIGS = ["tcp", "mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"]


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--vertices", type=int, default=800)
    ap.add_argument("--degree", type=float, default=8.0)
    ap.add_argument("--localities", type=int, default=4)
    args = ap.parse_args()

    rng = RngPool(2024).stream("graph")
    adj = make_graph(args.vertices, args.degree, rng)
    edges = sum(len(a) for a in adj) // 2
    print(f"graph: {args.vertices} vertices, {edges} edges, "
          f"{args.localities} localities\n")

    rows = []
    reference = None
    for cfg in CONFIGS:
        rt = make_runtime(cfg, platform=LAPTOP,
                          n_localities=args.localities)
        bfs = DistributedBfs(rt, adj)
        res = bfs.run(root=0, max_events=30_000_000)
        if reference is None:
            ref_depth, ref_levels = bfs.reference_bfs(0)
            reference = (len(ref_depth), ref_levels)
        assert res.visited == reference[0], "BFS result mismatch!"
        rows.append([cfg, res.visited, res.levels,
                     f"{res.time_us:.0f}", f"{res.teps / 1e6:.2f}"])

    print(format_table(rows, header=["parcelport", "visited", "levels",
                                     "time (us)", "MTEPS"]))
    print(f"\nall backends reached {reference[0]} vertices in "
          f"{reference[1]} levels (matches the sequential reference)")


if __name__ == "__main__":
    main()
