#!/usr/bin/env python
"""Latency study: ping-pong latencies vs message size and window.

A miniature of the paper's §4.2 experiments (Figs 7-9): one-way latency of
the multi-message ping-pong across parcelport variants.

Run:  python examples/latency_study.py [--steps 20]
"""

import argparse

from repro.bench import LatencyParams, Series, run_latency
from repro.bench.reporting import ascii_plot, format_series_table
from repro.hpx_rt.platform import EXPANSE

CONFIGS = ["mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i",
           "lci_psr_cq_mt_i"]
SIZES = [8, 512, 4096, 16384, 65536]
WINDOWS = [1, 8, 64]


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--steps", type=int, default=20)
    args = ap.parse_args()

    print("=== one-way latency vs message size (window 1) ===")
    size_series = []
    for cfg in CONFIGS:
        s = Series(label=cfg)
        for size in SIZES:
            r = run_latency(cfg, LatencyParams(
                msg_size=size, window=1, steps=args.steps,
                platform=EXPANSE))
            s.add(size, r.one_way_latency_us)
        size_series.append(s)
    print(format_series_table(size_series, x_name="bytes",
                              y_fmt="{:.2f}"))
    print(ascii_plot(size_series, title="latency (us) vs size"))

    print("\n=== 16 KiB latency vs window size ===")
    win_series = []
    for cfg in CONFIGS:
        s = Series(label=cfg)
        for w in WINDOWS:
            r = run_latency(cfg, LatencyParams(
                msg_size=16384, window=w, steps=max(5, args.steps // 2),
                platform=EXPANSE))
            s.add(w, r.one_way_latency_us)
        win_series.append(s)
    print(format_series_table(win_series, x_name="window",
                              y_fmt="{:.1f}"))

    lci = next(s for s in size_series if s.label == "lci_psr_cq_pin_i")
    mpi_i = next(s for s in size_series if s.label == "mpi_i")
    print(f"\nmpi_i / lci latency ratio: "
          f"{mpi_i.y_at(8) / lci.y_at(8):.2f}x at 8B, "
          f"{mpi_i.y_at(65536) / lci.y_at(65536):.2f}x at 64KiB "
          f"(paper: ~1.3x below 1KB, 3-5x above)")


if __name__ == "__main__":
    main()
