#!/usr/bin/env python
"""Octo-Tiger strong scaling across parcelports (the paper's §5 study).

Runs the mini Octo-Tiger on the Expanse or Rostam platform preset over a
range of node counts and prints steps/s plus the relative speedups the
paper plots on the right axis of Figs 10/11.

Run:  python examples/octotiger_scaling.py [--platform expanse]
                                           [--nodes 2 8] [--steps 1]
"""

import argparse
import time

from repro.bench import OctoTigerBenchParams, run_octotiger
from repro.bench.reporting import format_table
from repro.hpx_rt.platform import platform_by_name

CONFIGS = {"lci": "lci_psr_cq_pin_i", "mpi": "mpi", "mpi_i": "mpi_i"}


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--platform", default="expanse",
                    choices=["expanse", "rostam"])
    ap.add_argument("--nodes", type=int, nargs="+", default=[2, 8])
    ap.add_argument("--steps", type=int, default=1)
    args = ap.parse_args()

    platform = platform_by_name(args.platform)
    paper_level = 6 if args.platform == "expanse" else 5

    rows = []
    for nodes in args.nodes:
        result = {}
        for name, cfg in CONFIGS.items():
            params = OctoTigerBenchParams(platform=platform,
                                          n_localities=nodes,
                                          paper_level=paper_level,
                                          n_steps=args.steps)
            t0 = time.time()
            out = run_octotiger(cfg, params)
            result[name] = out["steps_per_second"]
            print(f"  nodes={nodes:<3} {name:<6} "
                  f"steps/s={out['steps_per_second']:8.3f} "
                  f"({time.time() - t0:.1f}s wall)")
        rows.append([nodes,
                     f"{result['lci']:.3f}",
                     f"{result['mpi']:.3f}",
                     f"{result['mpi_i']:.3f}",
                     f"{result['lci'] / result['mpi']:.3f}",
                     f"{result['lci'] / result['mpi_i']:.3f}"])

    print()
    print(format_table(rows, header=["nodes", "lci", "mpi", "mpi_i",
                                     "lci/mpi", "lci/mpi_i"]))
    print("\n(the paper's Fig 10 shows lci/mpi up to 1.175x and lci/mpi_i "
          "up to 13.6x on Expanse;\n Fig 11 shows at most 1.08x on Rostam)")


if __name__ == "__main__":
    main()
