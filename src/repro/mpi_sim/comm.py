"""The simulated MPI library: two-sided messaging over one coarse lock.

Semantics follow MPI_THREAD_MULTIPLE OpenMPI-over-UCX as the paper's
profiling describes it (§5, §7.1):

* **one coarse-grained blocking progress lock** guards the entire engine;
  ``isend``, ``irecv`` and ``test`` all take it, so concurrent callers
  convoy — with many worker threads this lock *is* the bottleneck;
* eager messages below :attr:`MpiParams.eager_threshold` are buffered
  (memcpy both sides when unexpected), larger transfers use an RTS/CTS
  rendezvous driven by the progress engine;
* tag matching linearly scans the posted-receive list, and unexpected
  messages are buffered with an allocation + copy and taxed on every
  progress call — the sources of MPI's collapse under many concurrent
  messages.

All public operations are generators to be driven from a worker context:
``req = yield from comm.isend(worker, dst, size, tag, payload)``.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..faults import TransportError
from ..netsim.message import NetMsg
from ..obs.spans import payload_mid
from ..netsim.nic import Nic
from ..sim.core import Simulator
from ..sim.primitives import SpinLock
from ..sim.stats import StatSet
from .matching import PostedQueue, UnexpectedQueue
from .params import DEFAULT_MPI_PARAMS, MpiParams
from .request import Request

__all__ = ["MpiComm"]


class MpiComm:
    """One rank's endpoint of the simulated MPI library."""

    #: matching-queue factories — class attributes so the benchmark
    #: harness (repro.bench.seedpaths) can swap in the frozen linear-scan
    #: reference (repro.mpi_sim._seed_match) for live-vs-seed timing
    posted_queue_cls = PostedQueue
    unexpected_queue_cls = UnexpectedQueue

    def __init__(self, sim: Simulator, nic: Nic, rank: int,
                 params: MpiParams = DEFAULT_MPI_PARAMS):
        self.sim = sim
        self.nic = nic
        self.rank = rank
        self.params = params
        self.progress_lock = SpinLock(sim, f"mpi{rank}.progress",
                                      acquire_cost=params.lock_acquire_us)
        self.posted = self.posted_queue_cls()
        self.unexpected = self.unexpected_queue_cls()
        self.unexpected_bytes = 0
        #: buffered RTS entries awaiting a matching receive — UCX revisits
        #: its pending-rendezvous queue on *every* progress call
        self.pending_rts = 0
        self.stats = StatSet(f"mpi{rank}")
        #: optional callable invoked when a request completes off the
        #: caller's path (timer-driven rendezvous completions) — used to
        #: wake idle workers so completions are observed promptly.
        self.notify = None
        #: span recorder (None => tracing off, zero overhead)
        self.obs = None
        #: adaptive state (repro.adapt); None keeps the configured eager
        #: threshold — set by the AdaptiveController when adaptation is on
        self.adapt = None

    def _obs_lock_span(self, worker, t_req: float, t_acq: float) -> None:
        """One ``progress/mpi`` hold span: [acquire, release] of the big
        progress lock, with the preceding wait as a field — together they
        cover the caller's whole trip through the engine (the convoy the
        paper profiles)."""
        self.obs.complete("progress", "mpi", t_acq, self.sim.now,
                          loc=self.rank, tid=worker.name,
                          wait_us=t_acq - t_req)

    # ------------------------------------------------------------------
    # public API (generators, worker context)
    # ------------------------------------------------------------------
    def isend(self, worker, dst: int, size: int, tag: int,
              payload: Any = None):
        """Generator → :class:`Request`. Nonblocking send."""
        p = self.params
        req = Request("send", dst, size, tag)
        req.posted_t = self.sim.now
        t_req = self.sim.now
        yield from worker.lock(self.progress_lock)
        t_acq = self.sim.now
        yield worker.cpu(p.post_op_us)
        wire_size = size + p.wire_header_bytes
        eager_max = (p.eager_threshold if self.adapt is None
                     else self.adapt.eager_cutoff(p.eager_threshold))
        if size <= eager_max:
            # Eager: copy into a bounce buffer, inject, complete locally.
            yield worker.cpu(size * p.memcpy_per_byte_us)
            post_cost = self.nic.post_send(NetMsg(
                src=self.rank, dst=dst, size=wire_size, kind="mpi_eager",
                tag=tag, payload=payload))
            yield worker.cpu(post_cost)
            self._complete(req)
            self.stats.inc("eager_sends")
        else:
            # Rendezvous: RTS carries the send request so the CTS can
            # find it without any matching on the sender side.  The user
            # payload rides on the request until the data message goes out.
            req.value = payload
            post_cost = self.nic.post_send(NetMsg(
                src=self.rank, dst=dst, size=p.wire_header_bytes,
                kind="mpi_rts", tag=tag, payload=(req, size, payload)))
            yield worker.cpu(post_cost)
            self.stats.inc("rndv_sends")
        if self.obs is not None:
            self._obs_lock_span(worker, t_req, t_acq)
        self.progress_lock.release()
        return req

    def irecv(self, worker, src: int, size: int, tag: int, ctx: Any = None):
        """Generator → :class:`Request`. Nonblocking receive.

        ``src`` may be :data:`ANY_SOURCE`, ``tag`` may be :data:`ANY_TAG`.
        Checks the unexpected queue first (linear scan), then posts.
        """
        p = self.params
        req = Request("recv", src, size, tag, ctx=ctx)
        req.posted_t = self.sim.now
        t_req = self.sim.now
        yield from worker.lock(self.progress_lock)
        t_acq = self.sim.now
        yield worker.cpu(p.post_op_us)
        entry, scanned = self._match_unexpected(src, tag)
        if scanned:
            yield worker.cpu(scanned * p.unexpected_scan_us)
        if entry is not None:
            if entry.kind == "mpi_eager":
                # Second copy: bounce buffer -> user buffer.
                yield worker.cpu(entry.size * p.memcpy_per_byte_us)
                req.value = entry.payload
                self._complete(req)
                self.stats.inc("unexpected_matches")
            else:  # buffered RTS
                sreq, dsize, payload = entry.payload
                yield from self._send_cts(worker, entry.src, sreq, req)
        else:
            self.posted.append(req)
        if self.obs is not None:
            self._obs_lock_span(worker, t_req, t_acq)
        self.progress_lock.release()
        return req

    def test(self, worker, req: Request):
        """Generator → bool. MPI_Test: runs the progress engine, then checks.

        This is the call the paper's profiling found ``mpi_i`` spending
        "the vast majority of time" in: every invocation takes the big
        lock and polls.
        """
        t_req = self.sim.now
        # Inlined worker.lock() + the empty-ring progress fast path: the
        # overwhelmingly common idle poll runs in this one generator
        # (identical events and charges; see docs/PERFORMANCE.md).
        yield self.progress_lock.acquire()
        worker.lock_acquired(self.progress_lock, t_req)
        t_acq = self.sim.now
        p = self.params
        if not self.nic.rx_ring:
            self.stats.inc("progress_calls")
            yield worker.cpu(p.progress_base_us * 0.25
                             + self.pending_rts * p.unexpected_tax_per_entry_us)
        else:
            yield from self._progress_locked(worker)
        done = req.done
        if self.obs is not None:
            self._obs_lock_span(worker, t_req, t_acq)
        self.progress_lock.release()
        return done

    def progress_only(self, worker):
        """Generator. A bare progress pass (what every polling thread's
        ``MPI_Test`` amounts to when it has no request of its own): take
        the big lock, poll, release.  Under traffic this is where the
        convoy forms."""
        t_req = self.sim.now
        # Inlined worker.lock() + empty-ring fast path, as in test().
        yield self.progress_lock.acquire()
        worker.lock_acquired(self.progress_lock, t_req)
        t_acq = self.sim.now
        p = self.params
        if not self.nic.rx_ring:
            self.stats.inc("progress_calls")
            yield worker.cpu(p.progress_base_us * 0.25
                             + self.pending_rts * p.unexpected_tax_per_entry_us)
        else:
            yield from self._progress_locked(worker)
        if self.obs is not None:
            self._obs_lock_span(worker, t_req, t_acq)
        self.progress_lock.release()

    # ------------------------------------------------------------------
    # progress engine (must hold the lock)
    # ------------------------------------------------------------------
    def _progress_locked(self, worker):
        p = self.params
        net = self.nic.params
        self.stats.inc("progress_calls")
        if not self.nic.rx_ring:
            # Nothing new on the wire: a quick queue check.  Buffered
            # eager messages are not re-walked, but UCX does revisit its
            # pending-rendezvous queue every call — with many concurrent
            # rendezvous in flight this is what each MPI_Test "spins" on.
            yield worker.cpu(p.progress_base_us * 0.25
                             + self.pending_rts * p.unexpected_tax_per_entry_us)
            return
        tax = (p.progress_base_us
               + self.unexpected_bytes * p.unexpected_tax_per_byte_us
               + len(self.unexpected) * p.unexpected_tax_per_entry_us)
        yield worker.cpu(tax)
        for _ in range(p.progress_batch):
            msg = self.nic.poll_rx()
            if msg is None:
                break
            yield worker.cpu(net.rx_overhead_us)
            if self.obs is not None:
                mid, part = payload_mid(msg.kind, msg.payload)
                self.obs.instant("progress", "poll", loc=self.rank,
                                 tid=worker.name, msg_id=msg.msg_id,
                                 mid=mid, part=part, kind=msg.kind,
                                 rx_wait=self.sim.now - msg.arrive_t)
            kind = msg.kind
            if msg.corrupted:
                yield from self._handle_corrupted(worker, msg)
                continue
            if kind == "mpi_eager":
                req, scanned = self._match_posted(msg.src, msg.tag)
                if scanned:
                    yield worker.cpu(scanned * p.match_scan_us)
                if req is not None:
                    yield worker.cpu(msg.size * p.memcpy_per_byte_us)
                    req.value = msg.payload
                    self._complete(req)
                    self.stats.inc("eager_recvs")
                else:
                    yield worker.cpu(p.unexpected_alloc_us
                                     + msg.size * p.memcpy_per_byte_us)
                    self.unexpected.append(msg)
                    self.unexpected_bytes += msg.size
                    self.stats.inc("unexpected_msgs")
            elif kind == "mpi_rts":
                sreq, dsize, payload = msg.payload
                req, scanned = self._match_posted(msg.src, msg.tag)
                if scanned:
                    yield worker.cpu(scanned * p.match_scan_us)
                if req is not None:
                    yield from self._send_cts(worker, msg.src, sreq, req)
                else:
                    self.unexpected.append(msg)
                    self.unexpected_bytes += p.wire_header_bytes
                    self.pending_rts += 1
                    self.stats.inc("unexpected_rts")
            elif kind == "mpi_cts":
                # Arrives at the *sender*.  UCX pipelined rendezvous: the
                # data is staged through pre-registered bounce buffers in
                # fragments, each copied on the send side here and again on
                # the receive side — the "protocol switch" the paper blames
                # for mpi_i's large-message latencies.
                sreq, rreq = msg.payload
                if sreq.cancelled:
                    # The sender withdrew this rendezvous (aborted chain
                    # under fault recovery): don't stream data for it.
                    self.stats.inc("cts_for_cancelled")
                    continue
                yield worker.cpu(net.rndv_handshake_us)
                total = sreq.size
                nfrag = max(1, -(-total // p.rndv_frag_bytes))
                sent = 0
                for i in range(nfrag):
                    frag = min(p.rndv_frag_bytes, total - sent)
                    sent += frag
                    yield worker.cpu(frag * p.memcpy_per_byte_us)
                    last = i == nfrag - 1
                    post_cost = self.nic.post_send(NetMsg(
                        src=self.rank, dst=msg.src,
                        size=frag + p.wire_header_bytes, kind="mpi_data",
                        tag=sreq.tag,
                        payload=(sreq.value if last else None, rreq, last)))
                    yield worker.cpu(post_cost)
                # The send request completes once the NIC drained the last
                # bounce buffer; observed by a later test().
                done_in = max(0.0, self.nic.tx.busy_until - self.sim.now)
                self.sim.schedule_call1(done_in, self._complete, sreq)
                self.stats.inc("cts_handled")
            elif kind == "mpi_data":
                payload, rreq, last = msg.payload
                # copy out of the bounce buffer into the user buffer
                yield worker.cpu(msg.size * p.memcpy_per_byte_us)
                self.stats.inc("rndv_frags")
                if last:
                    yield worker.cpu(net.rndv_handshake_us)
                    rreq.value = payload
                    self._complete(rreq)
                    self.stats.inc("rndv_recvs")
            else:  # pragma: no cover - guarded by construction
                raise ValueError(f"unknown MPI wire message {kind!r}")

    def _handle_corrupted(self, worker, msg: NetMsg):
        """A wire message that failed its (modelled) integrity check.

        Matched receives complete with :attr:`Request.error` set (a
        simulated transport error the caller observes after ``test``);
        control traffic and unmatched arrivals are discarded — corrupted
        messages never enter the unexpected queue.
        """
        p = self.params
        yield worker.cpu(p.progress_base_us * 0.5)  # checksum verify
        kind = msg.kind
        if kind == "mpi_eager":
            req, scanned = self._match_posted(msg.src, msg.tag)
            if scanned:
                yield worker.cpu(scanned * p.match_scan_us)
            if req is not None:
                req.error = TransportError(
                    f"corrupted eager message tag={msg.tag}")
                self._complete(req)
                self.stats.inc("corrupt_errored")
                return
        elif kind == "mpi_data":
            _payload, rreq, _last = msg.payload
            if not rreq.done:
                rreq.error = TransportError(
                    f"corrupted rendezvous fragment tag={msg.tag}")
                self._complete(rreq)
                self.stats.inc("corrupt_errored")
                return
        self.stats.inc("corrupt_discarded")

    def cancel(self, req: Request) -> bool:
        """MPI_Cancel (simplified): withdraw a request.

        Posted receives are removed from the matching list; the request
        completes immediately with ``cancelled`` set.  Already-complete
        requests are left untouched (returns False), matching MPI's
        "cancel either succeeds or the operation completes" contract.
        Pure bookkeeping — no simulated cost, callable from any context.
        """
        if req.done:
            return False
        req.cancelled = True
        if req.kind == "recv":
            try:
                self.posted.remove(req)
            except ValueError:
                pass
        req.done = True
        req.complete_t = self.sim.now
        self.stats.inc("cancelled")
        return True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _send_cts(self, worker, dst: int, sreq: Request, rreq: Request):
        p = self.params
        net = self.nic.params
        yield worker.cpu(net.rndv_handshake_us)
        post_cost = self.nic.post_send(NetMsg(
            src=self.rank, dst=dst, size=p.wire_header_bytes,
            kind="mpi_cts", tag=sreq.tag, payload=(sreq, rreq)))
        yield worker.cpu(post_cost)
        self.stats.inc("cts_sent")

    def _match_posted(self, src: int, tag: int
                      ) -> Tuple[Optional[Request], int]:
        """First posted receive matching (src, tag) plus the scanned count
        the seed's linear scan would have charged (indexed; see
        repro.mpi_sim.matching)."""
        return self.posted.match_pop(src, tag)

    def _match_unexpected(self, src: int, tag: int
                          ) -> Tuple[Optional[NetMsg], int]:
        """Pop the oldest unexpected (src, tag) match, if any."""
        msg, scanned = self.unexpected.match_pop(src, tag)
        if msg is not None:
            if msg.kind == "mpi_eager":
                self.unexpected_bytes -= msg.size
            else:
                self.unexpected_bytes -= self.params.wire_header_bytes
                self.pending_rts -= 1
        return msg, scanned

    def _complete(self, req: Request) -> None:
        if not req.done:
            req.done = True
            req.complete_t = self.sim.now
            if self.notify is not None:
                self.notify()

    # -- introspection ---------------------------------------------------
    @property
    def posted_count(self) -> int:
        return len(self.posted)

    @property
    def unexpected_count(self) -> int:
        return len(self.unexpected)
