"""Tuning constants of the simulated MPI (OpenMPI-over-UCX-like) library."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MpiParams", "DEFAULT_MPI_PARAMS", "MAX_TAG"]

#: Upper bound on MPI tag values (the parcelport wraps its counter here —
#: §3.1 "the tag will wrap around after the MPI tag's upper bound").
MAX_TAG = 32767


@dataclass(frozen=True)
class MpiParams:
    """Cost/threshold model of the MPI + UCX layer (µs / bytes).

    The two load-bearing modelling choices (see DESIGN.md §4):

    * ``eager_threshold``: the internal UCX-like eager→rendezvous protocol
      switch.  The paper observes ``mpi_i`` latency jumping 3–5× above
      ~1 KB and attributes it to "some protocol switch in the MPI/UCX
      layer"; this is that switch.
    * ``match_scan_us`` / ``unexpected_tax_per_byte_us``: tag matching is a
      **linear scan** of the posted-receive list, and each progress call
      pays a tax proportional to the buffered unexpected-message bytes
      (UCX re-walking its queues).  These produce the paper's MPI meltdown
      under many concurrent messages with distinct tags (Figs 4, 8, 9) and
      the instability of ``mpi`` under injection pressure (Fig 1).
    """

    eager_threshold: int = 1024
    #: per-element cost of scanning the posted-receive list (linear walk
    #: with a cache miss per element, as in UCX's expected-queue matching)
    match_scan_us: float = 0.045
    #: per-element cost of scanning the unexpected queue during irecv
    unexpected_scan_us: float = 0.045
    #: per-progress-call tax per buffered unexpected byte
    unexpected_tax_per_byte_us: float = 2.0e-5
    #: per-progress-call tax per buffered unexpected *entry* (UCX re-walks
    #: its pending/rendezvous queues every progress call; this is the
    #: positive-feedback term behind MPI's decreasing 16 KiB rate, Fig 4)
    unexpected_tax_per_entry_us: float = 0.002
    #: base cost of one progress invocation (function call + queue checks)
    progress_base_us: float = 0.30
    #: max RX-ring messages drained per progress call
    progress_batch: int = 8
    #: cost to enqueue one eager message into the unexpected queue
    #: (allocation; the data memcpy is charged separately by size)
    unexpected_alloc_us: float = 0.10
    #: lock-acquire CAS cost for the coarse progress lock
    lock_acquire_us: float = 0.04
    #: CPU cost to initiate isend/irecv (descriptor bookkeeping, sans lock)
    post_op_us: float = 0.30
    #: wire protocol header bytes added to every MPI message
    wire_header_bytes: int = 64
    #: memcpy throughput for eager copies (µs per byte)
    memcpy_per_byte_us: float = 0.0001
    #: UCX-style pipelined rendezvous: data is staged through pre-registered
    #: bounce buffers in fragments of this size, each copied on both ends —
    #: the "protocol switch" behind mpi_i's 3-5x latency penalty above 1 KB
    #: (§4.2) and MPI's collapsing 16 KiB message rates (Fig 4)
    rndv_frag_bytes: int = 4096

    def with_(self, **kw) -> "MpiParams":
        return replace(self, **kw)


DEFAULT_MPI_PARAMS = MpiParams()
