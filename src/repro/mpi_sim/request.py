"""MPI request objects (the completion mechanism MPI offers)."""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Request", "ANY_SOURCE", "ANY_TAG"]

#: wildcard source rank (MPI_ANY_SOURCE)
ANY_SOURCE = -1
#: wildcard tag (MPI_ANY_TAG)
ANY_TAG = -1

_req_ids = itertools.count()


class Request:
    """Handle for a nonblocking operation; completion observed via ``test``.

    ``done`` is set by the library (at post time for buffered eager sends,
    from the progress engine for everything else).  ``value`` carries the
    matched payload for receives.

    ``error`` is set (to a :class:`~repro.faults.TransportError`) when the
    operation completed *unsuccessfully* — e.g. it matched a corrupted
    message under fault injection; ``done`` is still True so ``test``
    observes it.  ``cancelled`` marks a request withdrawn via
    :meth:`~repro.mpi_sim.comm.MpiComm.cancel`.
    """

    __slots__ = ("kind", "peer", "size", "tag", "done", "value", "rid",
                 "ctx", "posted_t", "complete_t", "error", "cancelled")

    def __init__(self, kind: str, peer: int, size: int, tag: int,
                 ctx: Any = None):
        self.kind = kind            # "send" | "recv"
        self.peer = peer            # destination (send) / source (recv)
        self.size = size
        self.tag = tag
        self.done = False
        self.value: Any = None
        self.ctx = ctx
        self.rid = next(_req_ids)
        self.posted_t = 0.0
        self.complete_t = 0.0
        self.error: Optional[Exception] = None
        self.cancelled = False

    def matches(self, src: int, tag: int) -> bool:
        """Does this *posted receive* match an incoming (src, tag)?"""
        if self.kind != "recv":
            return False
        if self.peer != ANY_SOURCE and self.peer != src:
            return False
        if self.tag != ANY_TAG and self.tag != tag:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return (f"<Req#{self.rid} {self.kind} peer={self.peer} "
                f"tag={self.tag} {self.size}B {state}>")
