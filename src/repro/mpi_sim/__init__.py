"""Simulated MPI (OpenMPI/UCX-like) communication library."""

from .comm import MpiComm
from .params import DEFAULT_MPI_PARAMS, MAX_TAG, MpiParams
from .request import ANY_SOURCE, ANY_TAG, Request

__all__ = ["MpiComm", "MpiParams", "DEFAULT_MPI_PARAMS", "MAX_TAG",
           "Request", "ANY_SOURCE", "ANY_TAG"]
