"""FROZEN linear-scan matchers — the seed's MPI matching, verbatim.

Do not optimise or "fix" this module: it is the reference implementation
the indexed matchers in :mod:`repro.mpi_sim.matching` are verified
against.  ``SeedPostedQueue``/``SeedUnexpectedQueue`` wrap the exact
pre-index scan loops (a plain list of requests, a deque of messages)
behind the same queue API, so:

* property tests (``tests/test_matching_property.py``) can drive both
  implementations in lockstep and assert identical ``(match, scanned)``
  pairs, and
* the model benchmark harness (:mod:`repro.bench.seedpaths`) can swap
  them into a live :class:`~repro.mpi_sim.comm.MpiComm` to time the
  optimised paths against the seed behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Tuple

from ..netsim.message import NetMsg
from .request import ANY_SOURCE, ANY_TAG, Request

__all__ = ["SeedPostedQueue", "SeedUnexpectedQueue"]


class SeedPostedQueue:
    """The seed's ``posted`` list + ``_match_posted`` linear scan."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items = []

    def append(self, req: Request) -> None:
        self._items.append(req)

    def match_pop(self, src: int, tag: int
                  ) -> Tuple[Optional[Request], int]:
        """Linear scan of posted receives; returns (match, elements
        scanned)."""
        items = self._items
        for i, req in enumerate(items):
            if req.matches(src, tag):
                items.pop(i)
                return req, i + 1
        return None, len(items)

    def remove(self, req: Request) -> None:
        self._items.remove(req)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, req: object) -> bool:
        return req in self._items

    def __iter__(self) -> Iterator[Request]:
        return iter(self._items)


class SeedUnexpectedQueue:
    """The seed's ``unexpected`` deque + ``_match_unexpected`` scan
    (minus the byte accounting, which lives in the comm either way)."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items = deque()

    def append(self, msg: NetMsg) -> None:
        self._items.append(msg)

    def match_pop(self, src: int, tag: int) -> Tuple[Optional[NetMsg], int]:
        """Scan the unexpected queue for a (src, tag) match."""
        items = self._items
        for i, msg in enumerate(items):
            if src != ANY_SOURCE and msg.src != src:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del items[i]
            return msg, i + 1
        return None, len(items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[NetMsg]:
        return iter(self._items)
