"""Indexed tag matching for the simulated MPI library.

The seed implementation kept posted receives in a plain list and unexpected
messages in a deque, scanning both linearly per :meth:`MpiComm._match_posted`
/ :meth:`MpiComm._match_unexpected` call — faithful to what UCX *charges*
for matching, but O(n) of real interpreter work per probe.  These queues
replace the scans with dict-of-deques buckets keyed ``(src, tag)`` while
reproducing the seed's observable behaviour *exactly*:

* the same entry is matched (first match in insertion order, wildcards
  included), and
* the same deterministic ``scanned`` count is returned — the number the
  progress engine multiplies by ``match_scan_us``/``unexpected_scan_us`` to
  charge simulated CPU time.  A match at live position ``i`` (0-based)
  scans ``i + 1`` entries; a miss scans all live entries.

The position of an entry among the *live* entries is recovered from its
insertion sequence number with one :func:`bisect.bisect_left` over the
sorted live-sequence list (append-only at the tail, C-speed deletes), so a
probe is O(log n + buckets) instead of O(n).

The frozen linear-scan reference lives in :mod:`repro.mpi_sim._seed_match`;
``tests/test_matching_property.py`` drives both in lockstep over randomized
workloads (wildcards, cancels, duplicate/faulted arrivals) and asserts
identical ``(match, scanned)`` pairs.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..netsim.message import NetMsg
from .request import ANY_SOURCE, ANY_TAG, Request

__all__ = ["PostedQueue", "UnexpectedQueue"]


class PostedQueue:
    """Posted-receive list with O(log n) matching.

    Behaves like the seed's plain ``List[Request]`` for the operations the
    library (and the test suite) uses — ``append``, ``remove``, ``len``,
    ``in``, iteration in insertion order — but matches through per-key
    buckets.  Only ``kind == "recv"`` entries are matchable (exactly what
    :meth:`Request.matches` enforces); everything else still occupies a
    position and is counted by ``scanned``.
    """

    __slots__ = ("_buckets", "_seqs", "_seq_of", "_next_seq")

    def __init__(self) -> None:
        #: (peer, tag) -> deque of (seq, request), both possibly wildcards
        self._buckets: Dict[Tuple[int, int], deque] = {}
        #: sorted live insertion sequence numbers (all entries)
        self._seqs: List[int] = []
        #: request -> its insertion sequence number
        self._seq_of: Dict[Request, int] = {}
        self._next_seq = 0

    def append(self, req: Request) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        self._seqs.append(seq)
        self._seq_of[req] = seq
        if req.kind == "recv":
            key = (req.peer, req.tag)
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = bucket = deque()
            bucket.append((seq, req))

    def match_pop(self, src: int, tag: int
                  ) -> Tuple[Optional[Request], int]:
        """First posted receive matching ``(src, tag)``, and the scanned
        count the seed's linear scan would have reported."""
        buckets = self._buckets
        best_seq = -1
        best_key = None
        for key in ((src, tag), (src, ANY_TAG),
                    (ANY_SOURCE, tag), (ANY_SOURCE, ANY_TAG)):
            bucket = buckets.get(key)
            if bucket:
                seq = bucket[0][0]
                if best_key is None or seq < best_seq:
                    best_seq = seq
                    best_key = key
        if best_key is None:
            return None, len(self._seqs)
        bucket = buckets[best_key]
        _seq, req = bucket.popleft()
        if not bucket:
            del buckets[best_key]
        seqs = self._seqs
        i = bisect_left(seqs, best_seq)
        del seqs[i]
        del self._seq_of[req]
        return req, i + 1

    def remove(self, req: Request) -> None:
        """Remove by identity (cancel path); ValueError when absent,
        matching ``list.remove``."""
        seq = self._seq_of.pop(req, None)
        if seq is None:
            raise ValueError("request not in posted queue")
        if req.kind == "recv":
            key = (req.peer, req.tag)
            bucket = self._buckets[key]
            bucket.remove((seq, req))
            if not bucket:
                del self._buckets[key]
        seqs = self._seqs
        del seqs[bisect_left(seqs, seq)]

    # -- sequence protocol (introspection / tests) -----------------------
    def __len__(self) -> int:
        return len(self._seqs)

    def __contains__(self, req: object) -> bool:
        return req in self._seq_of

    def __iter__(self) -> Iterator[Request]:
        """Insertion order, like the seed list (debug/introspection path)."""
        return (req for _seq, req in
                sorted((s, r) for r, s in self._seq_of.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PostedQueue n={len(self._seqs)}>"


class UnexpectedQueue:
    """Unexpected-message store with O(log n) matching.

    Arrivals carry concrete ``(src, tag)`` so buckets are keyed exactly;
    probes come from ``irecv`` and may use wildcards, in which case the
    matching bucket heads are compared by insertion sequence (the number
    of live keys is bounded by peers × in-flight tags, far below the
    entry count the seed deque scanned).  Faulted paths may append the
    same message object more than once (duplicate delivery); every
    append is an independent entry, as in the seed deque.
    """

    __slots__ = ("_buckets", "_seqs", "_next_seq")

    def __init__(self) -> None:
        #: (src, tag) -> deque of (seq, msg), keys always concrete
        self._buckets: Dict[Tuple[int, Any], deque] = {}
        self._seqs: List[int] = []
        self._next_seq = 0

    def append(self, msg: NetMsg) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        self._seqs.append(seq)
        key = (msg.src, msg.tag)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = deque()
        bucket.append((seq, msg))

    def match_pop(self, src: int, tag: int) -> Tuple[Optional[NetMsg], int]:
        """Oldest buffered message matching ``(src, tag)`` (wildcards
        allowed), and the seed-identical scanned count."""
        buckets = self._buckets
        if src != ANY_SOURCE and tag != ANY_TAG:
            best_key = (src, tag)
            bucket = buckets.get(best_key)
            if not bucket:
                return None, len(self._seqs)
            best_seq = bucket[0][0]
        else:
            best_seq = -1
            best_key = None
            for key, bucket in buckets.items():
                if src != ANY_SOURCE and key[0] != src:
                    continue
                if tag != ANY_TAG and key[1] != tag:
                    continue
                seq = bucket[0][0]
                if best_key is None or seq < best_seq:
                    best_seq = seq
                    best_key = key
            if best_key is None:
                return None, len(self._seqs)
            bucket = buckets[best_key]
        _seq, msg = bucket.popleft()
        if not bucket:
            del buckets[best_key]
        seqs = self._seqs
        i = bisect_left(seqs, best_seq)
        del seqs[i]
        return msg, i + 1

    # -- sequence protocol (introspection / tests) -----------------------
    def __len__(self) -> int:
        return len(self._seqs)

    def __iter__(self) -> Iterator[NetMsg]:
        """Insertion order, like the seed deque."""
        entries = []
        for bucket in self._buckets.values():
            entries.extend(bucket)
        entries.sort(key=lambda e: e[0])
        return (msg for _seq, msg in entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UnexpectedQueue n={len(self._seqs)}>"
