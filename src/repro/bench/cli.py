"""Command-line entry point: ``repro-fig <figure> [--full] [--repeats N]``.

Examples::

    repro-fig tables          # Tables 1-3
    repro-fig fig1            # quick Fig 1 regeneration
    repro-fig fig10 --full    # full Fig 10 sweep
    repro-fig all             # everything (long)
    repro-fig fig1 --jobs 4   # fan sweep points across 4 worker processes
    repro-fig fig1 --cache .repro-cache   # reuse cached sweep points
    repro-fig perf            # wall-clock kernel + model + figure benchmarks
    repro-fig fig1 --profile  # cProfile the run, top functions to stderr
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..faults import FaultPlan
from .figures import FIGURES, platform_tables, table_abbreviations
from .validation import validate

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fig",
        description="Regenerate tables/figures from the LCI-parcelport "
                    "paper inside the simulator.")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + ["tables", "all", "perf",
                                                   "tune"],
                        help="which figure to regenerate ('perf' runs the "
                             "wall-clock benchmark harness, 'tune' the "
                             "config auto-tuner; see docs/TUNING.md)")
    parser.add_argument("--full", action="store_true",
                        help="run the full (paper-scale) sweep instead of "
                             "the quick one")
    parser.add_argument("--repeats", type=int, default=None,
                        help="repetitions per data point (default: 1 quick,"
                             " 3 full)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan independent sweep points across N worker "
                             "processes (results are identical to "
                             "sequential; default 1)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run each sweep point on the sharded "
                             "conservative-parallel engine with N shard "
                             "processes (byte-identical results at any N; "
                             "see docs/SHARDING.md; default 1 = the "
                             "sequential kernel)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed result cache directory "
                             "(default: $REPRO_CACHE_DIR if set; see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even if --cache or "
                             "$REPRO_CACHE_DIR is set")
    parser.add_argument("--bench-out", metavar="DIR", default=".",
                        help="directory for the perf/tune harnesses' "
                             "BENCH_*.json files (default: .)")
    parser.add_argument("--tune-workload", metavar="NAME", default=None,
                        choices=["message_rate", "fft", "serve"],
                        help="workload the auto-tuner searches over "
                             "(default: serve; only applies to 'tune')")
    parser.add_argument("--no-plot", action="store_true",
                        help="suppress the ASCII chart")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault-plan DSL for the fault_smoke figure, "
                             "e.g. 'drop=0.05,corrupt=0.01' (see "
                             "docs/FAULTS.md)")
    parser.add_argument("--overload", metavar="SPEC", default=None,
                        help="overload scenario DSL for the overload_smoke "
                             "figure, e.g. 'squeeze=0:3000@0*1,slow=0:4000"
                             "@1*2' (see docs/FLOW_CONTROL.md)")
    parser.add_argument("--trace", metavar="SPEC", default=None,
                        help="trace spec for the trace_smoke figure: a "
                             "preset ('parcel', 'all') or comma-separated "
                             "categories (see docs/OBSERVABILITY.md)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the trace_smoke runs as a merged "
                             "Perfetto/Chrome trace_event JSON file")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics-registry dump for each "
                             "trace_smoke run")
    parser.add_argument("--validate", action="store_true",
                        help="run the figure's EXPERIMENTS.md shape checks "
                             "and set a nonzero exit code on failure")
    parser.add_argument("--profile", nargs="?", const=25, type=int,
                        default=None, metavar="N",
                        help="profile the run with cProfile and print the "
                             "top N functions by cumulative time to stderr "
                             "(default N=25; see docs/PERFORMANCE.md)")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="also dump the raw cProfile stats to FILE "
                             "(load with pstats or snakeviz); implies "
                             "--profile")
    args = parser.parse_args(argv)

    if args.profile is not None or args.profile_out is not None:
        import cProfile
        import pstats
        prof = cProfile.Profile()
        prof.enable()
        try:
            return _dispatch(args, parser)
        finally:
            prof.disable()
            stats = pstats.Stats(prof, stream=sys.stderr)
            stats.sort_stats("cumulative")
            stats.print_stats(args.profile if args.profile is not None
                              else 25)
            if args.profile_out is not None:
                prof.dump_stats(args.profile_out)
                print(f"[profile stats written to {args.profile_out}]",
                      file=sys.stderr)
    return _dispatch(args, parser)


def _dispatch(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards is not None and args.shards < 1:
        parser.error("--shards must be >= 1")
    from .parallel import policy, set_policy
    set_policy(jobs=args.jobs, cache_dir=args.cache,
               no_cache=args.no_cache, shards=args.shards)

    if args.figure == "perf":
        from .perfbench import run_perf
        return run_perf(full=args.full, out_dir=args.bench_out,
                        jobs=args.jobs)

    if args.figure == "tune":
        from ..adapt.tuner import run_tune
        return run_tune(workload=args.tune_workload,
                        full=args.full, out_dir=args.bench_out,
                        repeats=args.repeats)
    if args.tune_workload is not None:
        parser.error("--tune-workload only applies to tune")

    if args.faults is not None:
        try:
            FaultPlan.parse(args.faults)
        except ValueError as exc:
            parser.error(f"--faults: {exc}")

    if args.overload is not None:
        try:
            FaultPlan.parse(args.overload)
        except ValueError as exc:
            parser.error(f"--overload: {exc}")

    if args.trace is not None:
        from ..obs import parse_trace_spec
        try:
            parse_trace_spec(args.trace)
        except ValueError as exc:
            parser.error(f"--trace: {exc}")

    if args.figure == "tables":
        print(table_abbreviations())
        print()
        print(platform_tables())
        return 0

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    failures = 0
    for name in names:
        t0 = time.time()
        kwargs = {}
        if args.faults is not None:
            if name != "fault_smoke":
                parser.error("--faults only applies to fault_smoke")
            kwargs["spec"] = args.faults
        if args.overload is not None:
            if name != "overload_smoke":
                parser.error("--overload only applies to overload_smoke")
            kwargs["spec"] = args.overload
        if args.trace is not None or args.trace_out is not None \
                or args.metrics:
            if name != "trace_smoke":
                parser.error("--trace/--trace-out/--metrics only apply "
                             "to trace_smoke")
            if args.trace is not None:
                kwargs["spec"] = args.trace
            if args.trace_out is not None:
                kwargs["trace_out"] = args.trace_out
            if args.metrics:
                kwargs["show_metrics"] = True
        result = FIGURES[name](quick=not args.full, repeats=args.repeats,
                               **kwargs)
        print(result.render(plot=not args.no_plot))
        if args.validate:
            for check in validate(result):
                print(check.render())
                if not check.passed:
                    failures += 1
        print(f"[{name} done in {time.time() - t0:.1f}s wall]\n")
    cache = policy().cache
    if cache is not None:
        st = cache.stats()
        print(f"[cache {cache.root}: {st['hits']} hits, "
              f"{st['misses']} misses, {st['stores']} stores]",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
