"""Profiling breakdowns: where does the (virtual) time go?

The paper repeatedly leans on profiling to explain results ("Profiling
results show that it spent the vast majority of time inside the MPI_Test
function, spinning on the blocking lock of the ucp_progress function").
This module produces the analogous breakdown from a finished simulation
run: lock waits, progress-engine activity, message census, worker time
split into compute vs communication-path cycles.
"""

from __future__ import annotations

from typing import Dict, List

from ..hpx_rt.runtime import HpxRuntime
from .reporting import format_table

__all__ = ["runtime_breakdown", "format_breakdown", "lock_report"]


def runtime_breakdown(rt: HpxRuntime) -> Dict[str, float]:
    """Aggregate accounting across all localities of a finished run."""
    out: Dict[str, float] = {
        "virtual_time_us": rt.now,
        "wire_msgs": rt.fabric.stats.counters.get("msgs", 0),
        "wire_bytes": rt.fabric.stats.accum.get("bytes", 0.0),
        "worker_cpu_us": 0.0,
        "worker_compute_us": 0.0,
        "worker_lock_wait_us": 0.0,
        "tasks_run": 0,
        "background_calls": 0,
        "parcels_sent": 0,
        "messages_sent": 0,
    }
    for loc in rt.localities:
        for w in loc.workers:
            out["worker_cpu_us"] += w.stats.accum.get("cpu_us", 0.0)
            out["worker_compute_us"] += w.stats.accum.get("compute_us", 0.0)
            out["worker_lock_wait_us"] += w.stats.accum.get(
                "lock_wait_us", 0.0)
            out["tasks_run"] += w.stats.counters.get("tasks_run", 0)
            out["background_calls"] += w.stats.counters.get(
                "background_calls", 0)
        layer = loc.parcel_layer
        if layer is not None:
            out["parcels_sent"] += layer.stats.counters.get(
                "parcels_sent", 0)
            out["messages_sent"] += layer.stats.counters.get(
                "messages_sent", 0)
        pp = loc.parcelport
        # backend-specific: the MPI big lock is the star of the paper
        mpi = getattr(pp, "mpi", None)
        if mpi is not None:
            out["mpi_progress_calls"] = out.get("mpi_progress_calls", 0) \
                + mpi.stats.counters.get("progress_calls", 0)
            out["mpi_lock_wait_us"] = out.get("mpi_lock_wait_us", 0.0) \
                + mpi.progress_lock.total_wait_us
            out["mpi_lock_acquisitions"] = \
                out.get("mpi_lock_acquisitions", 0) \
                + mpi.progress_lock.acquisitions
            out["mpi_unexpected_msgs"] = \
                out.get("mpi_unexpected_msgs", 0) \
                + mpi.stats.counters.get("unexpected_msgs", 0)
        devices = getattr(pp, "devices", None)
        if devices:
            # symmetric LCI-side accounting: the paper's §2.1 resources
            # (packet pool, completion queues, synchronizers) each get the
            # counters the MPI side gets for its big lock
            for dev in devices:
                out["lci_progress_calls"] = \
                    out.get("lci_progress_calls", 0) \
                    + dev.stats.counters.get("progress_calls", 0)
                out["lci_progress_contended"] = \
                    out.get("lci_progress_contended", 0) \
                    + dev.stats.counters.get("progress_contended", 0)
                out["lci_msgs_progressed"] = \
                    out.get("lci_msgs_progressed", 0) \
                    + dev.stats.counters.get("msgs_progressed", 0)
                pool = dev.pool
                out["lci_pool_acquires"] = \
                    out.get("lci_pool_acquires", 0) \
                    + pool.stats.counters.get("acquires", 0)
                out["lci_pool_exhaustions"] = \
                    out.get("lci_pool_exhaustions", 0) \
                    + pool.stats.counters.get("exhaustions", 0)
                out["lci_pool_squeezed"] = \
                    out.get("lci_pool_squeezed", 0) \
                    + pool.stats.counters.get("squeezed", 0)
                out["lci_pool_in_use"] = \
                    out.get("lci_pool_in_use", 0) + pool.in_use
                out["lci_pool_capacity"] = \
                    out.get("lci_pool_capacity", 0) + pool.capacity
        cqs = list(getattr(pp, "header_cqs", []) or [])
        comp_cq = getattr(pp, "comp_cq", None)
        if comp_cq is not None:
            cqs.append(comp_cq)
        for cq in cqs:
            out["lci_cq_signals"] = out.get("lci_cq_signals", 0) \
                + cq.stats.counters.get("signals", 0)
            out["lci_cq_pops"] = out.get("lci_cq_pops", 0) \
                + cq.stats.counters.get("pops", 0)
            out["lci_cq_empty_pops"] = out.get("lci_cq_empty_pops", 0) \
                + cq.stats.counters.get("empty_pops", 0)
            out["lci_cq_max_depth"] = max(out.get("lci_cq_max_depth", 0),
                                          cq.max_depth)
        sync_pending = getattr(pp, "sync_pending", None)
        if sync_pending is not None:
            out["lci_sync_pending"] = out.get("lci_sync_pending", 0) \
                + len(sync_pending)
    return out


def format_breakdown(breakdown: Dict[str, float]) -> str:
    """Paper-style profiling table, most interesting rows first."""
    t = max(breakdown.get("virtual_time_us", 0.0), 1e-9)
    rows: List[List[str]] = []

    def row(key: str, label: str, share_of_time: bool = False) -> None:
        if key not in breakdown:
            return
        v = breakdown[key]
        cell = f"{v:,.1f}" if isinstance(v, float) else f"{v:,}"
        extra = f"{100.0 * v / t:.1f}% of runtime" if share_of_time else ""
        rows.append([label, cell, extra])

    row("virtual_time_us", "virtual time (us)")
    row("worker_compute_us", "application compute (us)", True)
    row("worker_cpu_us", "communication-path cycles (us)", True)
    row("worker_lock_wait_us", "worker lock-wait (us)", True)
    row("mpi_lock_wait_us", "MPI progress-lock wait (us)", True)
    row("mpi_lock_acquisitions", "MPI progress-lock acquisitions")
    row("mpi_progress_calls", "MPI progress calls")
    row("mpi_unexpected_msgs", "MPI unexpected messages")
    row("lci_progress_calls", "LCI progress calls")
    row("lci_progress_contended", "LCI progress try-lock failures")
    row("lci_msgs_progressed", "LCI messages progressed")
    row("lci_pool_acquires", "LCI packet-pool acquires")
    row("lci_pool_exhaustions", "LCI packet-pool exhaustions")
    row("lci_pool_squeezed", "LCI packet-pool fault squeezes")
    row("lci_pool_in_use", "LCI packets in use (end of run)")
    row("lci_pool_capacity", "LCI packet-pool capacity")
    row("lci_cq_signals", "LCI completion-queue signals")
    row("lci_cq_pops", "LCI completion-queue pops")
    row("lci_cq_empty_pops", "LCI completion-queue empty pops")
    row("lci_cq_max_depth", "LCI completion-queue max depth")
    row("lci_sync_pending", "LCI synchronizers pending (end of run)")
    row("tasks_run", "tasks executed")
    row("background_calls", "background-work invocations")
    row("parcels_sent", "parcels sent")
    row("messages_sent", "HPX messages sent")
    row("wire_msgs", "wire messages")
    row("wire_bytes", "wire bytes")
    return format_table(rows, header=["metric", "value", "note"])


def lock_report(rt: HpxRuntime) -> str:
    """Per-lock contention summary across all localities."""
    rows: List[List[str]] = []
    for loc in rt.localities:
        locks = []
        pp = loc.parcelport
        mpi = getattr(pp, "mpi", None)
        if mpi is not None:
            locks.append(mpi.progress_lock)
        pending_lock = getattr(pp, "pending_lock", None)
        if pending_lock is not None:
            locks.append(pending_lock)
        sync_lock = getattr(pp, "sync_lock", None)
        if sync_lock is not None:
            locks.append(sync_lock)
        if loc.parcel_layer is not None:
            locks.append(loc.parcel_layer._cache_lock)
            locks.extend(loc.parcel_layer._queue_locks.values())
        for lk in locks:
            if lk.acquisitions == 0:
                continue
            rows.append([lk.name, f"{lk.acquisitions:,}",
                         f"{lk.total_wait_us:,.1f}",
                         f"{lk.total_wait_us / lk.acquisitions:.3f}",
                         f"{lk.max_queue}"])
    rows.sort(key=lambda r: -float(r[2].replace(",", "")))
    return format_table(rows, header=["lock", "acquisitions",
                                      "total wait (us)", "wait/acq (us)",
                                      "max queue"])
