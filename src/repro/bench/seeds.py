"""Seed-stable random-stream derivation shared by every sweep driver.

Two kinds of determinism matter for the figure pipeline:

* **sweep-level** — a figure repeats each point over a fixed seed ladder
  (:func:`repeat_seeds`, the exact ``1000 + i*7919`` sequence the seed
  repo used inline in ``harness.repeat`` and ``figures._seeds``; kept
  bit-for-bit so every committed ``results/*.txt`` stays byte-identical);
* **stream-level** — within one run, every stochastic component draws
  from a *named substream* derived from the run's root seed
  (:func:`derive_seed` / :func:`substream_seeds`, the same
  ``sha256(f"{root}:{name}")`` recipe as :class:`repro.sim.rng.RngPool`),
  so adding a new consumer never perturbs existing draws and results are
  invariant under ``--jobs`` fan-out and cache warm/cold by construction.

The serving workload (:mod:`repro.apps.serve`) leans on the second kind:
its arrival times, client ids, payload sizes and service times are all
precomputed from named substreams of the point seed before the simulation
starts, so the *offered* workload is a pure function of ``(params, seed)``
no matter what the network later does to it.
"""

from __future__ import annotations

import hashlib
from typing import List

__all__ = ["derive_seed", "substream_seeds", "repeat_seeds",
           "REPEAT_BASE", "REPEAT_STEP"]

#: the canonical sweep-seed ladder parameters (see :func:`repeat_seeds`)
REPEAT_BASE = 1000
REPEAT_STEP = 7919


def derive_seed(root: int, name: str) -> int:
    """A stable 64-bit seed for substream ``name`` of root seed ``root``.

    Identical recipe to :meth:`repro.sim.rng.RngPool.stream`, so a seed
    derived here and a stream created there from the same ``(root, name)``
    agree — the bench layer can pre-derive seeds for worker processes and
    the in-run components re-derive the very same streams.
    """
    digest = hashlib.sha256(f"{int(root)}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def substream_seeds(root: int, name: str, n: int) -> List[int]:
    """``n`` independent seeds for the indexed substreams ``name[i]``."""
    if n < 0:
        raise ValueError("need n >= 0 substream seeds")
    return [derive_seed(root, f"{name}[{i}]") for i in range(n)]


def repeat_seeds(n: int, base: int = REPEAT_BASE,
                 step: int = REPEAT_STEP) -> List[int]:
    """The sweep-repetition seed ladder: ``base + i*step`` for i < n.

    This is the exact sequence :func:`repro.bench.harness.repeat` and the
    figure drivers have always used; it lives here so every sweep (message
    rate, latency, Octo-Tiger, FFT, fault/overload smokes, serving) draws
    its per-repetition seeds from one place and the committed results stay
    byte-identical.
    """
    if n < 1:
        raise ValueError("need at least one repetition seed")
    return [base + i * step for i in range(n)]
