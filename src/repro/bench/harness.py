"""Repetition harness: run an experiment N times, report mean/std.

The paper performs every experiment at least five times and plots mean and
standard deviation; drivers here do the same (with a configurable repeat
count, since DES runs are deterministic given a seed — repetitions vary the
seed, which perturbs workload jitter and tree refinement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from ..sim.stats import summarize
from .seeds import REPEAT_BASE, repeat_seeds

__all__ = ["Measurement", "repeat", "Series"]


@dataclass
class Measurement:
    """Mean/std summary of one measured quantity over repetitions."""

    values: List[float]

    @property
    def mean(self) -> float:
        return summarize(self.values)["mean"]

    @property
    def std(self) -> float:
        return summarize(self.values)["std"]

    @property
    def n(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"{self.mean:.3g}±{self.std:.2g}"


def repeat(fn: Callable[..., Dict[str, float]], n: int = 3,
           base_seed: int = REPEAT_BASE,
           fn_kwargs: "Dict[str, Any] | None" = None
           ) -> Dict[str, Measurement]:
    """Run ``fn(seed, **fn_kwargs)`` ``n`` times; aggregate each key.

    Seeds come from the shared :func:`repro.bench.seeds.repeat_seeds`
    ladder (exactly the historical ``base + i*7919`` sequence), so the
    sequential harness and the parallel sweep engine evaluate identical
    points.  ``fn_kwargs`` threads extra experiment knobs (e.g. a fault
    plan) through to every repetition without wrapping ``fn`` in a lambda.
    """
    kw = fn_kwargs or {}
    acc: Dict[str, List[float]] = {}
    for seed in repeat_seeds(n, base=base_seed):
        out = fn(seed, **kw)
        for k, v in out.items():
            acc.setdefault(k, []).append(float(v))
    return {k: Measurement(v) for k, v in acc.items()}


@dataclass
class Series:
    """One plotted line: label + x values + y measurements."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)
    yerr: List[float] = field(default_factory=list)

    def add(self, x: float, m: "Measurement | float") -> None:
        self.xs.append(float(x))
        if isinstance(m, Measurement):
            self.ys.append(m.mean)
            self.yerr.append(m.std)
        else:
            self.ys.append(float(m))
            self.yerr.append(0.0)

    @property
    def peak(self) -> float:
        return max(self.ys) if self.ys else 0.0

    def y_at(self, x: float) -> float:
        """The y value at the x closest to ``x``."""
        if not self.xs:
            raise ValueError("empty series")
        idx = min(range(len(self.xs)), key=lambda i: abs(self.xs[i] - x))
        return self.ys[idx]
