"""Octo-Tiger application benchmark (§5, Figs 10–11)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..apps.octotiger import OctoTigerConfig, OctoTigerDriver
from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig
from .. import make_runtime

__all__ = ["OctoTigerBenchParams", "run_octotiger"]


@dataclass(frozen=True)
class OctoTigerBenchParams:
    platform: PlatformSpec = EXPANSE
    n_localities: int = 4
    paper_level: int = 6      #: 6 on Expanse, 5 on Rostam (§5)
    n_steps: int = 5          #: the paper's stop step
    max_events: int = 60_000_000

    def with_(self, **kw) -> "OctoTigerBenchParams":
        return replace(self, **kw)


def run_octotiger(config: "PPConfig | str", params: OctoTigerBenchParams,
                  seed: int = 0xC0FFEE) -> Dict[str, float]:
    """One Octo-Tiger run; returns the Fig 10/11 metric (steps/s) and
    structure counters."""
    from ..sim.shard.context import ShardingUnsupported, current_context
    ctx = current_context()
    if ctx is not None and ctx.n_shards > 1:
        raise ShardingUnsupported(
            "the octotiger proxy's result depends on cross-locality "
            "scheduler state that the sharded engine does not merge; "
            "run it without --shards")
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    rt = make_runtime(config, platform=p.platform,
                      n_localities=p.n_localities, seed=seed)
    ot_cfg = OctoTigerConfig.for_paper_level(p.paper_level,
                                             n_steps=p.n_steps)
    driver = OctoTigerDriver(rt, ot_cfg)
    result = driver.run(max_events=p.max_events)
    out: Dict[str, float] = {
        "steps_per_second": result.steps_per_second,
        "total_time_us": result.total_time_us,
    }
    out.update({k: float(v) for k, v in result.census.items()})
    return out
