"""Message-rate microbenchmark (§4.1, Figs 1–6).

A sender locality attempts to create tasks at a fixed rate; each task
injects a batch of fixed-size messages (action invocations) to the
receiver.  The receiver waits for all messages and then signals back with
one short message.  We measure

* **achieved injection rate** — messages / time-to-generate-all-tasks
  (a task counts as generated once it has handed its parcels to the
  network stack), and
* **achieved message rate** — messages / time-until-all-received
  (including the final ack, as in the paper).

Rates are reported in K messages/s of *virtual* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..faults import FaultPlan, RetryPolicy
from ..flow import FlowControlPolicy
from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig, make_parcelport_factory
from .. import make_runtime

__all__ = ["MessageRateParams", "MessageRateResult", "run_message_rate"]


@dataclass(frozen=True)
class MessageRateParams:
    """Workload parameters (paper defaults scaled down; see DESIGN.md)."""

    msg_size: int = 8
    batch: int = 100          #: messages injected per task (paper: 100 / 10)
    total_msgs: int = 10000   #: paper: 500 K (8 B) / 100 K (16 KiB)
    #: attempted injection rate in K msgs/s; None = unlimited
    inject_rate_kps: Optional[float] = None
    platform: PlatformSpec = EXPANSE
    max_events: int = 30_000_000

    def with_(self, **kw) -> "MessageRateParams":
        return replace(self, **kw)


@dataclass
class MessageRateResult:
    config: str
    params: MessageRateParams
    inject_time_us: float
    comm_time_us: float
    total_msgs: int
    #: messages reported failed after exhausting retries (faults only)
    failed_msgs: int = 0
    #: merged fault counters from the runtime (empty without a fault plan)
    faults: Dict[str, int] = field(default_factory=dict)
    #: the run's SpanRecorder when tracing was requested (else None);
    #: deliberately excluded from :meth:`as_dict` so traced and untraced
    #: runs report byte-identical results
    obs: Any = None
    #: the run's MetricsRegistry when tracing was requested (else None)
    metrics: Any = None
    #: AdaptiveController summary (empty without adaptation)
    adapt: Dict[str, float] = field(default_factory=dict)

    @property
    def achieved_injection_kps(self) -> float:
        """K messages per second of injection (paper's x axis)."""
        return self.total_msgs / self.inject_time_us * 1e3

    @property
    def message_rate_kps(self) -> float:
        """K messages per second received (paper's y axis)."""
        return self.total_msgs / self.comm_time_us * 1e3

    def as_dict(self) -> Dict[str, float]:
        out = {
            "achieved_injection_kps": self.achieved_injection_kps,
            "message_rate_kps": self.message_rate_kps,
        }
        # Keep the fault-free dict exactly as before (byte-identical
        # reporting); fault keys appear only when a plan was active.
        if self.faults or self.failed_msgs:
            out["failed_msgs"] = float(self.failed_msgs)
            for k, v in sorted(self.faults.items()):
                out[f"fault.{k}"] = float(v)
        # Same contract for adaptation: keys appear only when it ran.
        for k, v in sorted(self.adapt.items()):
            out[f"adapt.{k}"] = float(v)
        return out


def run_message_rate(config: "PPConfig | str", params: MessageRateParams,
                     seed: int = 0xC0FFEE,
                     fault_plan: Optional[FaultPlan] = None,
                     retry_policy: Optional[RetryPolicy] = None,
                     flow_policy: Optional[FlowControlPolicy] = None,
                     trace: "str | bool | None" = None,
                     adapt: Any = None
                     ) -> MessageRateResult:
    """One full message-rate run for one configuration.

    With a ``fault_plan``, messages may be dropped/corrupted and the
    parcelport retransmits them; messages that exhaust their retries are
    counted as failed and the benchmark still terminates (no hang).
    With a ``flow_policy``, senders are throttled (or shed) instead of
    growing unbounded queues when the receiver falls behind.
    """
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    n_tasks, rem = divmod(p.total_msgs, p.batch)
    if rem:
        raise ValueError("total_msgs must be a multiple of batch")
    kw: Dict[str, Any] = {}
    if adapt is not None:
        kw["adapt"] = adapt
    rt = make_runtime(config, platform=p.platform, n_localities=2, seed=seed,
                      fault_plan=fault_plan, retry_policy=retry_policy,
                      flow_policy=flow_policy, trace=trace, **kw)
    sim = rt.sim

    state = {"received": 0, "failed": 0, "tasks_done": 0,
             "t_inject": None, "t_comm": None}
    done = rt.new_future()

    def finish():
        if state["t_comm"] is None:
            state["t_comm"] = sim.now
            done.set_result(sim.now)

    def sink(worker, payload):
        state["received"] += 1
        if state["received"] + state["failed"] == p.total_msgs:
            # Receiver signals back with one short message.
            yield from worker.locality.apply(worker, 0, "ack", ())

    def ack(worker):
        finish()
        return None

    rt.register_action("sink", sink)
    rt.register_action("ack", ack)

    if fault_plan is not None or flow_policy is not None:
        def on_fail(parcel, exc):
            if parcel.action == "sink":
                state["failed"] += 1
                if state["received"] + state["failed"] == p.total_msgs:
                    # Every message is accounted for, but the receiver can
                    # no longer see the full count — finish from here.
                    finish()
            else:
                # The final ack round itself failed.
                finish()
        rt.on_parcel_failure = on_fail

    sender = rt.locality(0)
    size = p.msg_size

    def make_task():
        def inject(worker):
            for _ in range(p.batch):
                yield from sender.apply(worker, 1, "sink", ("data",),
                                        arg_sizes=[size])
            state["tasks_done"] += 1
            if state["tasks_done"] == n_tasks:
                state["t_inject"] = sim.now
        return inject

    def injector():
        if p.inject_rate_kps:
            # messages/µs -> one task per (batch / rate) µs
            interval_us = p.batch / (p.inject_rate_kps * 1e-3)
        else:
            interval_us = 0.0
        for i in range(n_tasks):
            sender.spawn(make_task(), name="inject")
            if interval_us:
                yield sim.timeout(interval_us)
        if False:  # pragma: no cover - keeps this a generator when rate=None
            yield

    rt.boot()
    sim.process(injector(), name="injector")
    rt.run_until(done, max_events=p.max_events)
    assert state["t_inject"] is not None and state["t_comm"] is not None
    return MessageRateResult(
        config=config.label, params=p,
        inject_time_us=state["t_inject"], comm_time_us=state["t_comm"],
        total_msgs=p.total_msgs,
        failed_msgs=state["failed"],
        faults=rt.fault_summary()
        if (fault_plan is not None or flow_policy is not None) else {},
        obs=rt.obs,
        metrics=rt.metrics() if rt.obs is not None else None,
        adapt=rt.adapt.summary() if rt.adapt is not None else {})
