"""Serving-tier benchmark wrapper: open-loop RPC load for the bench layer.

Runs :class:`~repro.apps.serve.ServeDriver` on a fresh runtime per point
and flattens the result into the primitive metric dict the sweep engine /
figure drivers consume.  Every point runs under a **shed-mode**
:class:`~repro.flow.FlowControlPolicy` (credits riding the reliability
acks + bounded backlogs with ``overflow="shed"``), so past saturation the
stack *rejects* excess requests instead of growing unbounded queues —
shedding as admission control, the regime ``serve_sweep`` maps per
parcelport config family.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..apps.serve import ServeConfig, ServeDriver
from ..faults import FaultPlan, RetryPolicy
from ..flow import OVERFLOW_SHED, FlowControlPolicy
from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig
from .. import make_runtime

__all__ = ["ServeBenchParams", "ServeBenchResult", "run_serve"]


@dataclass(frozen=True)
class ServeBenchParams:
    """One serving sweep point (quick defaults; see docs/SERVING.md)."""

    offered_kps: float = 100.0
    horizon_us: float = 2000.0
    n_localities: int = 4          #: gateway + (n_localities - 1) servers
    n_clients: int = 1_000_000
    arrival: str = "poisson"       #: or "bursty"
    slo_us: float = 200.0
    drain_us: float = 2000.0
    req_bytes_max: int = 16384
    resp_bytes_max: int = 32768
    service_base_us: float = 1.0
    platform: PlatformSpec = EXPANSE
    #: per-peer credit window (credits ride the reliability acks)
    credit_window: int = 8
    #: sender backlog bound; a full backlog *sheds* (admission control)
    max_backlog: int = 16
    #: parcel-layer queue bound per destination (sheds when full)
    max_queued_parcels: int = 64
    max_events: int = 30_000_000

    def with_(self, **kw) -> "ServeBenchParams":
        return replace(self, **kw)

    def flow_policy(self) -> FlowControlPolicy:
        return FlowControlPolicy(credit_window=self.credit_window,
                                 max_backlog=self.max_backlog,
                                 max_queued_parcels=self.max_queued_parcels,
                                 overflow=OVERFLOW_SHED)

    def serve_config(self) -> ServeConfig:
        return ServeConfig(n_clients=self.n_clients,
                           offered_kps=self.offered_kps,
                           horizon_us=self.horizon_us,
                           arrival=self.arrival,
                           req_bytes_max=self.req_bytes_max,
                           resp_bytes_max=self.resp_bytes_max,
                           service_base_us=self.service_base_us,
                           slo_us=self.slo_us, drain_us=self.drain_us)


@dataclass
class ServeBenchResult:
    config: str
    params: ServeBenchParams
    offered: int
    delivered: int
    shed_requests: int
    shed_responses: int
    failed: int
    in_flight: int
    deadline_misses: int
    goodput_kps: float
    achieved_kps: float
    offered_kps: float          #: measured (realized arrivals / horizon)
    slo_attainment: float
    p50_us: float
    p99_us: float
    p999_us: float
    #: merged fault/flow counters (credit stalls, backlog refusals, sheds)
    faults: Dict[str, int] = field(default_factory=dict)
    #: the run's SpanRecorder when tracing was requested (else None);
    #: excluded from :meth:`as_dict` so traced runs report identically
    obs: Any = None
    metrics: Any = None
    #: AdaptiveController summary (empty without adaptation)
    adapt: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "offered_kps": self.offered_kps,
            "achieved_kps": self.achieved_kps,
            "goodput_kps": self.goodput_kps,
            "slo_attainment": self.slo_attainment,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "offered": float(self.offered),
            "delivered": float(self.delivered),
            "shed_requests": float(self.shed_requests),
            "shed_responses": float(self.shed_responses),
            "failed": float(self.failed),
            "in_flight": float(self.in_flight),
            "deadline_misses": float(self.deadline_misses),
        }
        for k, v in sorted(self.faults.items()):
            out[f"fault.{k}"] = float(v)
        for k, v in sorted(self.adapt.items()):
            out[f"adapt.{k}"] = float(v)
        return out


def run_serve(config: "PPConfig | str", params: ServeBenchParams,
              seed: int = 0xC0FFEE,
              fault_plan: Optional[FaultPlan] = None,
              retry_policy: Optional[RetryPolicy] = None,
              trace: "str | bool | None" = None,
              adapt: Any = None) -> ServeBenchResult:
    """One full open-loop serving run for one configuration."""
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    kw: Dict[str, Any] = {}
    if adapt is not None:
        kw["adapt"] = adapt
    rt = make_runtime(config, platform=p.platform,
                      n_localities=p.n_localities, seed=seed,
                      fault_plan=fault_plan, retry_policy=retry_policy,
                      flow_policy=p.flow_policy(), trace=trace,
                      # credits ride on the reliability layer's acks
                      reliable=True, **kw)
    driver = ServeDriver(rt, p.serve_config())
    res = driver.run(max_events=p.max_events)
    pct = res.percentiles()
    return ServeBenchResult(
        config=config.label, params=p,
        offered=res.offered, delivered=res.delivered,
        shed_requests=res.shed_requests, shed_responses=res.shed_responses,
        failed=res.failed, in_flight=res.in_flight,
        deadline_misses=res.deadline_misses,
        goodput_kps=res.goodput_kps, achieved_kps=res.achieved_kps,
        offered_kps=res.offered_kps, slo_attainment=res.slo_attainment,
        p50_us=pct["p50_us"], p99_us=pct["p99_us"], p999_us=pct["p999_us"],
        faults=rt.fault_summary(),
        obs=rt.obs,
        metrics=rt.metrics() if rt.obs is not None else None,
        adapt=rt.adapt.summary() if rt.adapt is not None else {})
