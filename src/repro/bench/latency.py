"""Latency microbenchmark (§4.2, Figs 7–9).

Multi-message ping-pong: ``window`` chains of tasks bounce a fixed-size
message between two localities for ``steps`` iterations; every ping and
every pong is a separate HPX task.  One-way latency = total time /
(2 × steps), as the paper computes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..faults import FaultPlan, RetryPolicy
from ..flow import FlowControlPolicy
from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig
from .. import make_runtime

__all__ = ["LatencyParams", "LatencyResult", "run_latency"]


@dataclass(frozen=True)
class LatencyParams:
    msg_size: int = 8
    window: int = 1           #: concurrent ping-pong chains (1–64 in Fig 8/9)
    steps: int = 50           #: chain length (paper's "step number")
    platform: PlatformSpec = EXPANSE
    max_events: int = 20_000_000

    def with_(self, **kw) -> "LatencyParams":
        return replace(self, **kw)


@dataclass
class LatencyResult:
    config: str
    params: LatencyParams
    total_time_us: float
    #: ping-pong chains killed by a message failure (faults only)
    failed_chains: int = 0
    #: merged fault counters from the runtime (empty without a fault plan)
    faults: Dict[str, int] = field(default_factory=dict)
    #: the run's SpanRecorder when tracing was requested (else None);
    #: deliberately excluded from :meth:`as_dict` so traced and untraced
    #: runs report byte-identical results
    obs: Any = None
    #: the run's MetricsRegistry when tracing was requested (else None)
    metrics: Any = None

    @property
    def one_way_latency_us(self) -> float:
        """Average one-way message latency (the paper's y axis)."""
        return self.total_time_us / (2 * self.params.steps)

    def as_dict(self) -> Dict[str, float]:
        out = {"one_way_latency_us": self.one_way_latency_us}
        if self.faults or self.failed_chains:
            out["failed_chains"] = float(self.failed_chains)
            for k, v in sorted(self.faults.items()):
                out[f"fault.{k}"] = float(v)
        return out


def run_latency(config: "PPConfig | str", params: LatencyParams,
                seed: int = 0xC0FFEE,
                fault_plan: Optional[FaultPlan] = None,
                retry_policy: Optional[RetryPolicy] = None,
                flow_policy: Optional[FlowControlPolicy] = None,
                trace: "str | bool | None" = None) -> LatencyResult:
    """One latency run: ``window`` chains × ``steps`` round trips.

    With a ``fault_plan``, a chain whose ping or pong exhausts its retries
    is counted as failed and released — the run still terminates.  A
    ``flow_policy`` adds credit/backlog throttling (a shed ping or pong
    likewise kills its chain).
    """
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    rt = make_runtime(config, platform=p.platform, n_localities=2, seed=seed,
                      fault_plan=fault_plan, retry_policy=retry_policy,
                      flow_policy=flow_policy, trace=trace)
    sim = rt.sim
    done = rt.new_latch(p.window)
    size = p.msg_size
    state = {"failed_chains": 0}

    if fault_plan is not None or flow_policy is not None:
        def on_fail(parcel, exc):
            # Exactly one ping or pong is in flight per chain, so a failed
            # parcel kills exactly one chain: release its latch slot.
            state["failed_chains"] += 1
            done.count_down()
        rt.on_parcel_failure = on_fail

    def ping(worker, token):
        # Runs on locality 1; answer with a pong.
        yield from worker.locality.apply(worker, 0, "pong", (token,),
                                         arg_sizes=[size])

    def pong(worker, token):
        # Runs on locality 0; continue or finish the chain.
        chain, step = token
        if step + 1 < p.steps:
            yield from worker.locality.apply(worker, 1, "ping",
                                             ((chain, step + 1),),
                                             arg_sizes=[size])
        else:
            done.count_down()

    rt.register_action("ping", ping)
    rt.register_action("pong", pong)

    def starter(worker):
        for chain in range(p.window):
            yield from rt.locality(0).apply(worker, 1, "ping",
                                            ((chain, 0),),
                                            arg_sizes=[size])

    rt.boot()
    rt.locality(0).spawn(starter, name="latency_start")
    rt.run_until(done, max_events=p.max_events)
    return LatencyResult(config=config.label, params=p,
                         total_time_us=sim.now,
                         failed_chains=state["failed_chains"],
                         faults=rt.fault_summary()
                         if (fault_plan is not None or flow_policy is not None)
                         else {},
                         obs=rt.obs,
                         metrics=rt.metrics() if rt.obs is not None else None)
