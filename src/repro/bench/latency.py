"""Latency microbenchmark (§4.2, Figs 7–9).

Multi-message ping-pong: ``window`` chains of tasks bounce a fixed-size
message between two localities for ``steps`` iterations; every ping and
every pong is a separate HPX task.  One-way latency = total time /
(2 × steps), as the paper computes it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig
from .. import make_runtime

__all__ = ["LatencyParams", "LatencyResult", "run_latency"]


@dataclass(frozen=True)
class LatencyParams:
    msg_size: int = 8
    window: int = 1           #: concurrent ping-pong chains (1–64 in Fig 8/9)
    steps: int = 50           #: chain length (paper's "step number")
    platform: PlatformSpec = EXPANSE
    max_events: int = 20_000_000

    def with_(self, **kw) -> "LatencyParams":
        return replace(self, **kw)


@dataclass
class LatencyResult:
    config: str
    params: LatencyParams
    total_time_us: float

    @property
    def one_way_latency_us(self) -> float:
        """Average one-way message latency (the paper's y axis)."""
        return self.total_time_us / (2 * self.params.steps)

    def as_dict(self) -> Dict[str, float]:
        return {"one_way_latency_us": self.one_way_latency_us}


def run_latency(config: "PPConfig | str", params: LatencyParams,
                seed: int = 0xC0FFEE) -> LatencyResult:
    """One latency run: ``window`` chains × ``steps`` round trips."""
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    rt = make_runtime(config, platform=p.platform, n_localities=2, seed=seed)
    sim = rt.sim
    done = rt.new_latch(p.window)
    size = p.msg_size

    def ping(worker, token):
        # Runs on locality 1; answer with a pong.
        yield from worker.locality.apply(worker, 0, "pong", (token,),
                                         arg_sizes=[size])

    def pong(worker, token):
        # Runs on locality 0; continue or finish the chain.
        chain, step = token
        if step + 1 < p.steps:
            yield from worker.locality.apply(worker, 1, "ping",
                                             ((chain, step + 1),),
                                             arg_sizes=[size])
        else:
            done.count_down()

    rt.register_action("ping", ping)
    rt.register_action("pong", pong)

    def starter(worker):
        for chain in range(p.window):
            yield from rt.locality(0).apply(worker, 1, "ping",
                                            ((chain, 0),),
                                            arg_sizes=[size])

    rt.boot()
    rt.locality(0).spawn(starter, name="latency_start")
    rt.run_until(done, max_events=p.max_events)
    return LatencyResult(config=config.label, params=p,
                         total_time_us=sim.now)
