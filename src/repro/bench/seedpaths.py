"""FROZEN seed-model hot paths + the reference-mode swap harness.

PR "model-layer fast paths" rewired the stack's hottest interpreter paths
(bare-float CPU charges, slim lock/atomic grant records, indexed MPI tag
matching, the C-level caller meter) under the kernel's bit-identity
contract.  This module keeps the *replaced* method bodies verbatim — the
same role :mod:`repro.sim._seed_kernel` plays for the event kernel — and
provides :func:`reference_models`, a context manager that swaps them back
onto the live classes so that:

* the model macrobenchmarks (:func:`repro.bench.perfbench.bench_models`)
  can time live-vs-seed on end-to-end workloads and *assert* both modes
  produce identical simulated results, and
* equivalence tests can run whole figures both ways and compare.

Do not optimise or "fix" the ``_seed_*`` functions: they are the
reference.  The indexed-matching reference lives separately in
:mod:`repro.mpi_sim._seed_match` (swapped in here via the queue-factory
class attributes).

Reference mode is the *whole* frozen seed stack, kernel included:

* the model-method bodies below are swapped onto the live classes,
* the matching queues come from :mod:`repro.mpi_sim._seed_match`,
* :class:`SeedNetMsg` (the seed's dataclass, verbatim) is patched over
  the ``NetMsg`` *module global* at every construction site — consumers
  only read attributes, which both layouts expose identically — and
* the kernel-class names (``Simulator``/``Event``/``AnyOf``) resolved by
  the runtime layers are rebound to :mod:`repro.sim._seed_kernel`, so
  reference runs execute on the frozen seed event loop too.

Two compatibility shims are installed on the *seed* ``Simulator`` for the
post-seed ``schedule_call1``/``succeed_later`` entry points a couple of
live call sites use: each is implemented the way the seed would have
written it (``schedule_call`` + a closure), so reference timing charges
the seed's interpreter cost and the heap records stay tuple-identical.

Still live in both modes: the tombstoned sleeper list's *storage* (the
seed ``deque.remove`` body is restored, operating on the same deque).
Both modes produce bit-identical simulated results — the harness and the
equivalence tests assert it on every run.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional

from ..hpx_rt import future as _future_mod
from ..hpx_rt import runtime as _runtime_mod
from ..hpx_rt import scheduler as _scheduler_mod
from ..hpx_rt.scheduler import Scheduler, Worker
from ..lci_sim import device as _lci_device_mod
from ..lci_sim.device import LciDevice, _CallerMeter
from ..mpi_sim import comm as _mpi_comm_mod
from ..mpi_sim._seed_match import SeedPostedQueue, SeedUnexpectedQueue
from ..mpi_sim.comm import MpiComm
from ..netsim import nic as _nic_mod
from ..netsim.fabric import Fabric
from ..parcelport import lci_pp as _lci_pp_mod
from ..parcelport.lci_pp import LciParcelport
from ..parcelport.mpi_pp import MpiParcelport
from ..netsim.message import _msg_ids
from ..sim import _seed_kernel
from ..sim import primitives as _primitives_mod
from ..sim import queues as _queues_mod
from ..sim.core import Event
from ..sim.primitives import AtomicCell, SpinLock
from ..tcp_sim import stack as _tcp_stack_mod

__all__ = ["reference_models", "SeedNetMsg"]


@dataclass
class SeedNetMsg:
    """The seed's :class:`NetMsg`: a plain dataclass with a
    ``default_factory`` msg_id (kept verbatim; shares the live id counter
    so interleaved live/reference runs never collide)."""

    src: int
    dst: int
    size: int
    kind: str
    tag: Optional[int] = None
    payload: Any = None
    vchan: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    inject_t: float = 0.0
    arrive_t: float = 0.0
    corrupted: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CORRUPT" if self.corrupted else ""
        return (f"<NetMsg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B tag={self.tag}{flag}>")


# ---------------------------------------------------------------------------
# frozen seed bodies (verbatim pre-optimisation code)
# ---------------------------------------------------------------------------
def _seed_worker_cpu(self, us):
    """Unscaled CPU time: communication-path / per-message cycles."""
    self.stats.add("cpu_us", us)
    return self.sim.timeout(us)


def _seed_worker_compute(self, us):
    """Application compute, scaled by the platform thread weight."""
    scaled = us / self._weight
    self.stats.add("compute_us", scaled)
    return self.sim.timeout(scaled)


def _seed_worker_compute_granular(self, us):
    remaining = us / self._weight
    slice_us = self.cost.task_slice_us
    self.stats.add("compute_us", remaining)
    while remaining > 0.0:
        dt = min(slice_us, remaining)
        remaining -= dt
        yield self.sim.timeout(dt)
        if remaining > 0.0:
            yield from self.locality.parcelport.background_work(self)


def _seed_spinlock_acquire(self):
    ev = Event(self.sim)
    if not self.locked:
        self.locked = True
        self.acquisitions += 1
        self._acq_time = self.sim.now
        # Even an uncontended acquire costs a CAS.
        self.sim.schedule_call(self.acquire_cost, lambda: ev.succeed())
    else:
        self._waiters.append((self.sim.now, ev))
        self.max_queue = max(self.max_queue, len(self._waiters))
    return ev


def _seed_spinlock_release(self):
    if not self.locked:
        raise RuntimeError(f"{self.name}: release of unheld lock")
    if self._waiters:
        t_enq, ev = self._waiters.popleft()
        self.total_wait_us += self.sim.now - t_enq
        self.acquisitions += 1
        self._acq_time = self.sim.now
        # Hand-off cost: the waiter's CAS finally succeeds.
        self.sim.schedule_call(self.acquire_cost, lambda: ev.succeed())
    else:
        self.locked = False


def _seed_atomic_wrap(self, old):
    inner = self._line.request(self._service())
    ev = Event(self.sim)
    inner.add_callback(lambda _e: ev.succeed(old))
    return ev


def _seed_fabric_transmit(self, msg, tx_done_t):
    dst = self.nics.get(msg.dst)
    if dst is None:
        raise KeyError(f"no NIC for destination node {msg.dst}")
    self.stats.inc("msgs")
    self.stats.add("bytes", msg.size)
    if self.injector is not None:
        verdict = self.injector.on_transmit(msg)
        if verdict == "drop":
            self.stats.inc("dropped_msgs")
            if self.obs is not None:
                self.obs.wire_fault(msg, "drop")
            return
        if verdict == "corrupt":
            msg.corrupted = True
            self.stats.inc("corrupted_msgs")
            if self.obs is not None:
                self.obs.wire_fault(msg, "corrupt")
    wire = 0.0 if msg.dst == msg.src else self.params.wire_latency_us
    arrive_t = tx_done_t + wire
    self.sim.schedule_call(arrive_t - self.sim.now,
                           lambda: dst.deliver(msg))


def _seed_caller_meter_touch(self, caller, now):
    """Record a call; return the number of distinct recent callers
    (including this one)."""
    self._last_seen[caller] = now
    horizon = now - self.window_us
    if len(self._last_seen) > 64:  # prune stale entries
        self._last_seen = {c: t for c, t in self._last_seen.items()
                           if t >= horizon}
    return sum(1 for t in self._last_seen.values() if t >= horizon)


def _seed_worker_lock(self, lk):
    """Generator: blockingly acquire a spin lock (FIFO)."""
    t0 = self.sim.now
    yield lk.acquire()
    self.stats.add("lock_wait_us", self.sim.now - t0)
    if self.obs is not None and self.sim.now > t0:
        self.obs.complete("lock", "wait", t0, self.sim.now,
                          loc=self.locality.lid, tid=self.name,
                          lock=lk.name)


def _seed_mpi_test(self, worker, req):
    t_req = self.sim.now
    yield from worker.lock(self.progress_lock)
    t_acq = self.sim.now
    yield from self._progress_locked(worker)
    done = req.done
    if self.obs is not None:
        self._obs_lock_span(worker, t_req, t_acq)
    self.progress_lock.release()
    return done


def _seed_mpi_progress_only(self, worker):
    t_req = self.sim.now
    yield from worker.lock(self.progress_lock)
    t_acq = self.sim.now
    yield from self._progress_locked(worker)
    if self.obs is not None:
        self._obs_lock_span(worker, t_req, t_acq)
    self.progress_lock.release()


def _seed_lci_progress(self, worker, caller):
    """Generator → int: messages handled, or -1 if the try-lock failed."""
    p = self.params
    now = self.sim.now
    pressure = self._callers.touch(caller, now)
    if not self.progress_lock.try_acquire():
        yield worker.cpu(p.trylock_fail_us)
        self.stats.inc("progress_contended")
        return -1
    mult = 1.0 + p.contention_factor * max(0, pressure - 1)
    if caller != self._last_caller:
        mult += p.caller_switch_penalty
        self._last_caller = caller
    mult = min(mult, p.max_contention_mult)
    self.stats.inc("progress_calls")
    t0 = self.sim.now
    yield worker.cpu(p.progress_base_us * mult)
    handled = 0
    try:
        for _ in range(p.progress_batch):
            msg = self.nic.poll_rx(self.vchan)
            if msg is None:
                break
            yield worker.cpu(self.nic.params.rx_overhead_us * mult)
            if self.obs is not None:
                mid, part = _lci_device_mod.payload_mid(msg.kind, msg.payload)
                self.obs.instant("progress", "poll", loc=self.rank,
                                 tid=worker.name, msg_id=msg.msg_id,
                                 mid=mid, part=part, kind=msg.kind,
                                 rx_wait=self.sim.now - msg.arrive_t)
            yield from self._dispatch(worker, msg, mult)
            handled += 1
    finally:
        self.progress_lock.release()
    if self.obs is not None:
        self.obs.complete("progress", "lci", t0, self.sim.now,
                          loc=self.rank, tid=worker.name,
                          handled=handled, vchan=self.vchan)
    if handled:
        self.stats.inc("msgs_progressed", handled)
    return handled


def _seed_lci_progress_loop(self):
    w = self._progress_worker
    rt = self.locality.runtime
    sched = self.locality.sched
    while rt.running:
        handled = 0
        for dev in self.devices:
            n = yield from dev.progress(w, caller="pin")
            if n > 0:
                handled += n
        if handled:
            # Completions were pushed; make sure a worker notices.
            sched.notify()
            continue
        if self.nic.rx_pending() == 0:
            yield self.nic.arrival_event()


def _seed_lci_scan_syncs(self, worker):
    if not self.sync_pending:
        return False
    yield from worker.lock(self.sync_lock)
    did = False
    ready = []
    keep = []
    for _ in range(min(_lci_pp_mod.SYNC_SCAN_LIMIT, len(self.sync_pending))):
        sync = self.sync_pending.popleft()
        if sync.cancelled:
            self.stats.inc("syncs_cancelled")
            continue
        yield worker.cpu(self.device.params.sync_test_us)
        if sync.test():
            ready.append(sync)
        else:
            keep.append(sync)
    self.sync_pending.extend(keep)
    self.sync_lock.release()
    for sync in ready:
        did = True
        yield from self._dispatch(worker, sync.value)
    return did


def _seed_mpi_scan_pending(self, worker):
    if not self.pending:
        return False
    yield from worker.lock(self.pending_lock)
    batch = []
    for _ in range(min(self.scan_limit, len(self.pending))):
        batch.append(self.pending.popleft())
    self.pending_lock.release()
    did = False
    keep = []
    for conn in batch:
        if conn.aborted:
            did = True
            if conn.cur is not None:
                self.mpi.cancel(conn.cur)
                conn.cur = None
            self.stats.inc("aborted_completions")
            continue
        req = conn.cur
        done = yield from self.mpi.test(worker, req)
        if conn.aborted:
            did = True
            if conn.cur is not None:
                self.mpi.cancel(conn.cur)
                conn.cur = None
            self.stats.inc("aborted_completions")
            continue
        if done:
            did = True
            conn.cur = None
            if req.error is not None:
                yield from self._handle_op_error(worker, conn)
            elif conn.role == "send":
                yield from self._advance_sender(worker, conn)
            else:
                yield from self._advance_receiver(worker, conn)
        else:
            keep.append(conn)
    if keep:
        yield from worker.lock(self.pending_lock)
        self.pending.extend(keep)
        self.pending_lock.release()
    return did


def _seed_parcelport_background_work(self, worker, rounds=None):
    """The seed's delegating poll loop (identical in both parcelports):
    one ``_background_once`` generator per round, every sub-poll entered
    unconditionally."""
    did_any = False
    idle_rounds = 0
    for _ in range(rounds if rounds is not None else self.poll_rounds):
        did = yield from self._background_once(worker)
        if did:
            did_any = True
            idle_rounds = 0
        else:
            idle_rounds += 1
            if idle_rounds >= 2:
                break
    return did_any


def _seed_sched_unregister_sleeper(self, ev):
    try:
        self._sleepers.remove(ev)
    except ValueError:
        pass


def _seed_sched_notify(self, n=1):
    """Wake up to ``n`` sleeping workers (skipping stale entries)."""
    woken = 0
    while self._sleepers and woken < n:
        ev = self._sleepers.popleft()
        if not ev.triggered:
            ev.succeed()
            woken += 1


def _compat_schedule_call1(self, delay, fn, arg):
    """Seed-style spelling of the live kernel's closure-free entry point."""
    return self.schedule_call(delay, lambda: fn(arg))


def _compat_succeed_later(self, event, delay, value=None):
    """Seed-style spelling of the live kernel's pre-staged wake record."""
    return self.schedule_call(delay, lambda: event.succeed(value))


# ---------------------------------------------------------------------------
# the swap registry
# ---------------------------------------------------------------------------
#: (class-or-module, attribute, seed implementation) — everything
#: reference mode swaps; the live values are captured at swap time so
#: nesting and exceptions restore cleanly
_PATCHES = [
    (Worker, "cpu", _seed_worker_cpu),
    (Worker, "compute", _seed_worker_compute),
    (Worker, "compute_granular", _seed_worker_compute_granular),
    (Worker, "lock", _seed_worker_lock),
    (SpinLock, "acquire", _seed_spinlock_acquire),
    (SpinLock, "release", _seed_spinlock_release),
    (AtomicCell, "_wrap", _seed_atomic_wrap),
    (Fabric, "transmit", _seed_fabric_transmit),
    (_CallerMeter, "touch", _seed_caller_meter_touch),
    (Scheduler, "unregister_sleeper", _seed_sched_unregister_sleeper),
    (Scheduler, "notify", _seed_sched_notify),
    (MpiParcelport, "background_work", _seed_parcelport_background_work),
    (LciParcelport, "background_work", _seed_parcelport_background_work),
    (MpiParcelport, "_scan_pending", _seed_mpi_scan_pending),
    (LciParcelport, "_scan_syncs", _seed_lci_scan_syncs),
    (LciParcelport, "_progress_loop", _seed_lci_progress_loop),
    (LciDevice, "progress", _seed_lci_progress),
    (MpiComm, "posted_queue_cls", SeedPostedQueue),
    (MpiComm, "unexpected_queue_cls", SeedUnexpectedQueue),
    (MpiComm, "test", _seed_mpi_test),
    (MpiComm, "progress_only", _seed_mpi_progress_only),
    # NetMsg construction sites: swap the name each module resolves at
    # call time (consumers elsewhere only read attributes)
    (_lci_device_mod, "NetMsg", SeedNetMsg),
    (_mpi_comm_mod, "NetMsg", SeedNetMsg),
    (_tcp_stack_mod, "NetMsg", SeedNetMsg),
    # kernel swap: every module that *constructs* kernel objects resolves
    # these names at call time
    (_runtime_mod, "Simulator", _seed_kernel.Simulator),
    (_runtime_mod, "Event", _seed_kernel.Event),
    (_future_mod, "Event", _seed_kernel.Event),
    (_scheduler_mod, "Event", _seed_kernel.Event),
    (_scheduler_mod, "AnyOf", _seed_kernel.AnyOf),
    (_primitives_mod, "Event", _seed_kernel.Event),
    (_queues_mod, "Event", _seed_kernel.Event),
    (_nic_mod, "Event", _seed_kernel.Event),
    (sys.modules[__name__], "Event", _seed_kernel.Event),
    (_seed_kernel.Simulator, "schedule_call1", _compat_schedule_call1),
    (_seed_kernel.Simulator, "succeed_later", _compat_succeed_later),
]

_MISSING = object()


@contextmanager
def reference_models():
    """Run the enclosed code on the frozen seed stack (kernel + models).

    Affects objects *constructed or called* inside the context (the
    patches are class- and module-level), so build the runtime inside the
    ``with``.  Results must be bit-identical either way — callers are
    expected to assert that; only wall-clock differs.
    """
    saved = [(obj, name, obj.__dict__.get(name, _MISSING))
             for obj, name, _ in _PATCHES]
    for obj, name, impl in _PATCHES:
        setattr(obj, name, impl)
    try:
        yield
    finally:
        for obj, name, impl in saved:
            if impl is _MISSING:
                delattr(obj, name)
            else:
                setattr(obj, name, impl)
