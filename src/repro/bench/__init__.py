"""Benchmark harness: workloads + per-figure drivers (§4, §5)."""

from .fft_bench import FftBenchParams, FftBenchResult, run_fft
from .figures import (FFT_CONFIGS, FIGURES, SERVE_CONFIGS, FigureResult,
                      ablation_aggregation, ablation_mpi_pp, fft_smoke,
                      fft_sweep, fig1, fig2, fig3, fig4, fig5, fig6,
                      fig7, fig8, fig9, fig10, fig11, find_knee,
                      platform_tables, serve_smoke, serve_sweep,
                      table_abbreviations)
from .harness import Measurement, Series, repeat
from .seeds import derive_seed, repeat_seeds, substream_seeds
from .serve_bench import ServeBenchParams, ServeBenchResult, run_serve
from .latency import LatencyParams, LatencyResult, run_latency
from .message_rate import (MessageRateParams, MessageRateResult,
                           run_message_rate)
from .octotiger_bench import OctoTigerBenchParams, run_octotiger
from .parallel import (ExecutionPolicy, PointTask, ResultCache,
                       code_fingerprint, evaluate_point, execution,
                       fft_task, latency_task, message_rate_task,
                       octotiger_task, run_points, serve_task, set_policy)
from .perfbench import bench_figures, bench_kernel, run_perf, validate_bench
from .profiling import format_breakdown, lock_report, runtime_breakdown
from .sweep import SweepResult, SweepSpec, run_sweep
from .calibration import check_calibration, format_calibration
from .validation import CheckResult, checks_for, validate

__all__ = [
    "FIGURES", "FigureResult",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "ablation_mpi_pp", "ablation_aggregation",
    "fft_smoke", "fft_sweep", "FFT_CONFIGS",
    "FftBenchParams", "FftBenchResult", "run_fft", "fft_task",
    "serve_smoke", "serve_sweep", "find_knee", "SERVE_CONFIGS",
    "ServeBenchParams", "ServeBenchResult", "run_serve", "serve_task",
    "table_abbreviations", "platform_tables",
    "Measurement", "Series", "repeat",
    "derive_seed", "repeat_seeds", "substream_seeds",
    "LatencyParams", "LatencyResult", "run_latency",
    "MessageRateParams", "MessageRateResult", "run_message_rate",
    "OctoTigerBenchParams", "run_octotiger",
    "PointTask", "ResultCache", "ExecutionPolicy",
    "code_fingerprint", "evaluate_point", "execution",
    "message_rate_task", "latency_task", "octotiger_task",
    "run_points", "set_policy",
    "bench_kernel", "bench_figures", "run_perf", "validate_bench",
    "runtime_breakdown", "format_breakdown", "lock_report",
    "SweepSpec", "SweepResult", "run_sweep",
    "validate", "checks_for", "CheckResult",
    "check_calibration", "format_calibration",
]
