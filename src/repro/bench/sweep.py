"""Generic parameter sweeps with JSON persistence.

The per-figure drivers cover the paper's sweeps; this utility is for the
open-ended exploration the library invites (the §7.2 questions): define a
grid of axes, run a measurement function over the cartesian product, save
and reload results, and pivot them into plot-ready series.

Example::

    spec = SweepSpec(axes={"config": ["mpi_i", "lci_psr_cq_pin_i"],
                           "size": [8, 16384]})
    result = run_sweep(lambda config, size, seed:
                       {"rate": measure(config, size, seed)}, spec)
    result.save("sweep.json")
    series = result.to_series(x="size", y="rate", group_by="config")
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .harness import Series

__all__ = ["SweepSpec", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian grid of named axes plus repetition control."""

    axes: Dict[str, Sequence[Any]]
    repeats: int = 1
    base_seed: int = 1000

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("sweep needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def points(self) -> List[Dict[str, Any]]:
        """All grid points as keyword dictionaries, in axis order."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            out.append(dict(zip(names, combo)))
        return out

    @property
    def size(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n * self.repeats


@dataclass
class SweepResult:
    """Rows of ``{**point, **measurement, "seed": ...}`` dictionaries."""

    axes: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump({"axes": self.axes, "rows": self.rows}, f, indent=1)

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as f:
            data = json.load(f)
        return cls(axes=data["axes"], rows=data["rows"])

    # -- querying ---------------------------------------------------------
    def filter(self, **match: Any) -> List[Dict[str, Any]]:
        return [r for r in self.rows
                if all(r.get(k) == v for k, v in match.items())]

    def metrics(self) -> List[str]:
        if not self.rows:
            return []
        skip = set(self.axes) | {"seed"}
        return sorted(k for k in self.rows[0] if k not in skip)

    def to_series(self, x: str, y: str,
                  group_by: Optional[str] = None) -> List[Series]:
        """Pivot rows into plot series, averaging over repetitions."""
        groups: Dict[Any, Dict[float, List[float]]] = {}
        for row in self.rows:
            g = row.get(group_by) if group_by else ""
            groups.setdefault(g, {}).setdefault(
                float(row[x]), []).append(float(row[y]))
        out = []
        for g, pts in sorted(groups.items(), key=lambda kv: str(kv[0])):
            s = Series(label=str(g) if group_by else y)
            for xv in sorted(pts):
                ys = pts[xv]
                s.xs.append(xv)
                s.ys.append(sum(ys) / len(ys))
                if len(ys) > 1:
                    mean = sum(ys) / len(ys)
                    var = sum((v - mean) ** 2 for v in ys) / len(ys)
                    s.yerr.append(var ** 0.5)
                else:
                    s.yerr.append(0.0)
            out.append(s)
        return out

    def __len__(self) -> int:
        return len(self.rows)


def _eval_cell(job: "tuple") -> Dict[str, float]:
    """Top-level trampoline so grid cells can cross a process boundary."""
    fn, point, seed = job
    return fn(**point, seed=seed)


def run_sweep(fn: Callable[..., Dict[str, float]], spec: SweepSpec,
              progress: Optional[Callable[[int, int], None]] = None,
              jobs: Optional[int] = None) -> SweepResult:
    """Run ``fn(**point, seed=...)`` over the whole grid.

    ``fn`` must return a flat dict of metric name → value.  Each grid
    point runs ``spec.repeats`` times with distinct seeds.

    With ``jobs > 1`` (default: the active
    :func:`repro.bench.parallel.policy`), independent grid cells fan out
    over worker processes — ``fn`` must then be a picklable top-level
    function.  Rows are collected in grid order either way, so the result
    is identical to a sequential run.
    """
    from .parallel import policy

    points = spec.points()
    result = SweepResult(axes=list(spec.axes))
    total = spec.size
    if jobs is None:
        jobs = policy().jobs
    from .seeds import repeat_seeds
    cells = [(point, seed)
             for point in points
             for seed in repeat_seeds(spec.repeats, base=spec.base_seed)]

    def fold(measurements) -> None:
        for done, ((point, seed), measurement) in enumerate(
                zip(cells, measurements), start=1):
            row = dict(point)
            row["seed"] = seed
            for k, v in measurement.items():
                if k in row:
                    raise ValueError(
                        f"metric {k!r} collides with an axis")
                row[k] = v
            result.rows.append(row)
            if progress is not None:
                progress(done, total)

    if jobs > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as ex:
            fold(ex.map(_eval_cell, [(fn, p, s) for p, s in cells],
                        chunksize=max(1, len(cells) // (jobs * 4))))
    else:
        fold(fn(**point, seed=seed) for point, seed in cells)
    return result
