"""Wall-clock performance harness for the event kernel and figure drivers.

Everything else in ``repro.bench`` measures *simulated* time; this module
is the one place that measures *wall-clock* time, so the kernel fast paths
(docs/PERFORMANCE.md) have recorded, regression-checkable numbers:

* **Kernel microbenchmarks** — timeout storm, process ping-pong, condition
  fan-in, ``schedule_call`` storm — each run on both the live kernel
  (:mod:`repro.sim.core`) and the frozen pre-optimisation baseline
  (:mod:`repro.sim._seed_kernel`), reporting median-of-k events/sec and
  the live/seed speedup ratio.
* **Model macrobenchmarks** — end-to-end model workloads (a fig. 1
  message-rate point, a multi-threaded rate-sweep point, an Octo-Tiger
  step) run live and under :func:`repro.bench.seedpaths.reference_models`,
  which swaps the whole frozen seed stack (matching queues, model hot
  paths, message objects, *and* the seed kernel) back in.  Results are
  asserted identical before anything is timed, so every speedup quoted
  here is earned under the bit-identity contract.
* **Figure wall-times** — end-to-end quick-figure regeneration plus a
  sequential-vs-``--jobs`` sweep timing (speedup scales with available
  cores; on a single-core host the ratio is honestly ~1×).

Results are emitted as ``BENCH_kernel.json`` / ``BENCH_models.json`` /
``BENCH_figures.json``
(schema tag ``repro-bench/1``, validated by :func:`validate_bench`).  CI
runs the smoke scale and *records* the numbers — wall-clock varies across
runners, so nothing gates on them; the committed baselines at the repo
root are the reference points for eyeballing regressions.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["KERNEL_WORKLOADS", "BENCH_SCHEMA",
           "bench_kernel", "bench_models", "bench_figures", "bench_shards",
           "validate_bench", "run_perf"]

#: schema tag stamped into every BENCH_*.json document
BENCH_SCHEMA = "repro-bench/1"


# ---------------------------------------------------------------------------
# kernel microbenchmarks — written against a kernel *module* so the same
# workload runs on repro.sim.core and repro.sim._seed_kernel
# ---------------------------------------------------------------------------
def _noop() -> None:
    pass


def _timeout_storm(mod, n: int) -> int:
    """Many processes each yielding a long run of plain timeouts."""
    sim = mod.Simulator()

    def proc(sim, k):
        for i in range(k):
            yield sim.timeout(0.5 + (i % 7) * 0.25)

    for _ in range(10):
        sim.process(proc(sim, n // 10))
    sim.run()
    return sim.event_count


def _process_ping_pong(mod, n: int) -> int:
    """Spawn/complete churn: every round pays a boot and a completion wake."""
    sim = mod.Simulator()

    def child(sim):
        yield sim.timeout(0.1)
        return 1

    def parent(sim, k):
        total = 0
        for _ in range(k):
            total += yield sim.process(child(sim))
        return total

    sim.process(parent(sim, n))
    sim.run()
    return sim.event_count


def _condition_fanin(mod, n: int) -> int:
    """AllOf/AnyOf over 16-wide event fan-ins, round after round."""
    sim = mod.Simulator()

    def waiter(sim, rounds):
        for _ in range(rounds):
            evs = [sim.timeout(0.5 + (i % 3) * 0.25) for i in range(16)]
            yield mod.AllOf(sim, evs)
            yield mod.AnyOf(sim, [sim.timeout(1.0), sim.timeout(2.0)])

    sim.process(waiter(sim, n // 16))
    sim.run()
    return sim.event_count


def _call_storm(mod, n: int) -> int:
    """Raw ``schedule_call`` throughput (batched API when available)."""
    sim = mod.Simulator()
    calls = [((i % 97) * 0.5, _noop) for i in range(n)]
    if hasattr(sim, "schedule_calls"):
        sim.schedule_calls(calls)
    else:
        for delay, fn in calls:
            sim.schedule_call(delay, fn)
    sim.run()
    return sim.event_count


#: name → (workload fn, smoke-scale n, full-scale n)
KERNEL_WORKLOADS: Dict[str, Tuple[Callable, int, int]] = {
    "timeout_storm": (_timeout_storm, 50_000, 200_000),
    "process_ping_pong": (_process_ping_pong, 12_000, 50_000),
    "condition_fanin": (_condition_fanin, 10_000, 40_000),
    "call_storm": (_call_storm, 50_000, 200_000),
}


def _doc_header(kind: str, repeats: int) -> Dict[str, Any]:
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "python": sys.version.split()[0],
        "platform": _platform.platform(),
        "cpu_count": os.cpu_count(),
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeats": repeats,
    }


def bench_kernel(full: bool = False,
                 repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run every kernel workload on live + seed kernels; return the doc."""
    import repro.sim._seed_kernel as seed_kernel
    import repro.sim.core as live_kernel

    repeats = repeats or (5 if full else 3)
    doc = _doc_header("kernel", repeats)
    doc["scale"] = "full" if full else "smoke"
    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for name, (fn, n_smoke, n_full) in KERNEL_WORKLOADS.items():
        n = n_full if full else n_smoke
        # warm up once, then time live/seed interleaved so slow drift in
        # host CPU speed cancels out of the ratio
        live_ev = fn(live_kernel, n)
        seed_ev = fn(seed_kernel, n)
        if live_ev != seed_ev:
            raise AssertionError(
                f"{name}: event_count diverged between kernels "
                f"({live_ev} vs {seed_ev}) — determinism contract broken")
        live_times: List[float] = []
        seed_times: List[float] = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(live_kernel, n)
            live_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            fn(seed_kernel, n)
            seed_times.append(time.perf_counter() - t0)
        live_s = statistics.median(live_times)
        seed_s = statistics.median(seed_times)
        live_eps = live_ev / live_s
        seed_eps = seed_ev / seed_s
        workloads[name] = {
            "n": n, "events": live_ev,
            "live_s": round(live_s, 6),
            "live_events_per_s": round(live_eps),
            "seed_s": round(seed_s, 6),
            "seed_events_per_s": round(seed_eps),
            "speedup": round(live_eps / seed_eps, 3),
        }
        speedups.append(live_eps / seed_eps)
    doc["workloads"] = workloads
    doc["speedup_min"] = round(min(speedups), 3)
    doc["speedup_geomean"] = round(
        statistics.geometric_mean(speedups), 3)
    return doc


# ---------------------------------------------------------------------------
# end-to-end model macrobenchmarks — live vs frozen-reference stack
# ---------------------------------------------------------------------------
def _model_workloads(full: bool) -> Dict[str, Callable[[], Any]]:
    """name → zero-arg runner returning a comparable result dict.

    Each runner is deterministic for a fixed seed, so the live run and the
    :func:`~repro.bench.seedpaths.reference_models` run must return equal
    results — that equality is asserted before any timing happens.
    """
    from .message_rate import MessageRateParams, run_message_rate
    from .octotiger_bench import OctoTigerBenchParams, run_octotiger

    mr = MessageRateParams(msg_size=8, batch=50,
                           total_msgs=2000 if full else 600,
                           inject_rate_kps=200.0)
    ot = OctoTigerBenchParams(n_localities=2,
                              paper_level=4 if full else 3, n_steps=1)
    return {
        "fig1_point_mpi_i":
            lambda: run_message_rate("mpi_i", mr, seed=7).as_dict(),
        "fig1_point_lci_pin":
            lambda: run_message_rate("lci_psr_cq_pin_i", mr,
                                     seed=7).as_dict(),
        "rate_sweep_lci_mt":
            lambda: run_message_rate("lci_sr_sy_mt", mr, seed=7).as_dict(),
        "octotiger_step_mpi_i":
            lambda: run_octotiger("mpi_i", ot, seed=7),
    }


def bench_models(full: bool = False,
                 repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run the model workloads live and frozen-reference; return the doc.

    The reference side runs under :func:`repro.bench.seedpaths.
    reference_models`, i.e. the complete pre-optimisation model stack
    (linear-scan matching, un-split hot paths, dataclass messages, seed
    kernel).  Timings interleave live/reference so host-speed drift
    cancels out of the ratio; the headline number is the geomean speedup
    across workloads (target: >= 1.5x on these model-dominated runs).
    """
    from .seedpaths import reference_models

    repeats = repeats or (5 if full else 3)
    doc = _doc_header("models", repeats)
    doc["scale"] = "full" if full else "smoke"
    workloads: Dict[str, Any] = {}
    speedups: List[float] = []
    for name, fn in _model_workloads(full).items():
        # warm-up doubles as the identity check: the optimised stack must
        # reproduce the frozen reference bit-for-bit before it gets timed
        live_res = fn()
        with reference_models():
            ref_res = fn()
        if live_res != ref_res:
            raise AssertionError(
                f"{name}: live result diverged from frozen reference — "
                f"determinism contract broken")
        live_times: List[float] = []
        ref_times: List[float] = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            live_times.append(time.perf_counter() - t0)
            with reference_models():
                t0 = time.perf_counter()
                fn()
                ref_times.append(time.perf_counter() - t0)
        live_s = statistics.median(live_times)
        ref_s = statistics.median(ref_times)
        workloads[name] = {
            "live_s": round(live_s, 6),
            "ref_s": round(ref_s, 6),
            "speedup": round(ref_s / live_s, 3),
        }
        speedups.append(ref_s / live_s)
    doc["workloads"] = workloads
    doc["speedup_min"] = round(min(speedups), 3)
    doc["speedup_geomean"] = round(
        statistics.geometric_mean(speedups), 3)
    return doc


# ---------------------------------------------------------------------------
# end-to-end figure wall-times
# ---------------------------------------------------------------------------
def bench_figures(full: bool = False, jobs: Optional[int] = None
                  ) -> Dict[str, Any]:
    """Time quick-figure regeneration and a sequential-vs-parallel sweep."""
    from ..hpx_rt.platform import EXPANSE
    from .figures import fig1
    from .parallel import execution, message_rate_task, run_points

    jobs = jobs or min(4, os.cpu_count() or 1)
    doc = _doc_header("figures", repeats=1)
    doc["scale"] = "full" if full else "smoke"
    total = 4000 if full else 1000

    figures: Dict[str, Any] = {}
    with execution(jobs=1, cache=None):
        t0 = time.perf_counter()
        fig1(quick=True, total=total)
        figures["fig1_quick"] = {"total_msgs": total,
                                 "wall_s": round(time.perf_counter() - t0,
                                                 3)}
    doc["figures"] = figures

    # the same independent task list, sequential then fanned out
    from .seeds import repeat_seeds
    tasks = [message_rate_task(cfg, msg_size=8, batch=50, total_msgs=total,
                               inject_rate_kps=rate, platform=EXPANSE,
                               seed=seed)
             for cfg in ("mpi_i", "lci_psr_cq_pin_i")
             for rate in (100.0, 400.0, None)
             for seed in repeat_seeds(2 if full else 1)]
    t0 = time.perf_counter()
    seq = run_points(tasks, jobs=1, no_cache=True)
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = run_points(tasks, jobs=jobs, no_cache=True)
    par_s = time.perf_counter() - t0
    if seq != par:
        raise AssertionError("parallel sweep results diverged from "
                             "sequential — determinism contract broken")
    doc["sweep"] = {
        "points": len(tasks),
        "sequential_s": round(seq_s, 3),
        "jobs": jobs,
        "parallel_s": round(par_s, 3),
        "speedup": round(seq_s / par_s, 3) if par_s else 0.0,
    }
    return doc


# ---------------------------------------------------------------------------
# sharded-engine scaling macro
# ---------------------------------------------------------------------------
def _shard_macro(n_localities: int, rounds: int, horizon_us: float,
                 seed: int) -> Callable[[], Dict[str, Any]]:
    """A partition-friendly macro for the sharded engine.

    Localities pair up (``2k <-> 2k+1``) and stream pings for a fixed
    virtual horizon; the contiguous ownership split keeps every pair on
    one shard, so measured scaling reflects engine + barrier overhead,
    not wire-codec cost.  Deadline termination freezes every shard at
    exactly ``horizon_us``, which is what makes the aggregate event
    count shard-count-invariant (asserted by the caller).
    """
    def run() -> Dict[str, Any]:
        from .. import make_runtime
        from ..hpx_rt.platform import EXPANSE

        plat = EXPANSE.with_(max_nodes=max(EXPANSE.max_nodes, n_localities),
                             sim_cores_per_node=2)
        rt = make_runtime("lci", platform=plat, n_localities=n_localities,
                          seed=seed)

        def pong(worker, i):
            return None

        rt.register_action("pong", pong)

        def pinger(lid):
            def task(worker):
                for i in range(rounds):
                    yield from worker.locality.apply(
                        worker, lid + 1, "pong", (i,), arg_sizes=[64])
            return task

        rt.boot()
        for lid in range(0, n_localities, 2):
            if rt.shard_owns(lid):
                rt.locality(lid).spawn(pinger(lid), name=f"ping{lid}")
        ctx = rt.shard_ctx
        peer_events: List[int] = []
        if ctx is not None and ctx.n_shards > 1:
            ctx.register_contrib("bench.events",
                                 lambda: rt.sim.event_count,
                                 peer_events.append)
        rt.run_until(float(horizon_us))
        return {"events": rt.sim.event_count + sum(peer_events),
                "windows": ctx.windows if ctx is not None else 0}

    return run


def bench_shards(full: bool = False,
                 repeats: Optional[int] = None) -> Dict[str, Any]:
    """Scale the pair-ping-pong macro over shard counts; return the doc.

    Every shard count must produce the *same* aggregate event count
    (shard-count invariance — asserted here before anything is recorded);
    the quoted numbers are aggregate events/sec and wall seconds per
    shard count, with ``--shards 1`` (in-process, no barriers) as the
    baseline.  Like every wall-clock suite here, CI records but does not
    gate on the ratios: on a single-core host the honest speedup is ~1×
    or below (the processes time-slice one core and pay the barrier
    tax); the committed baseline states its ``cpu_count`` for exactly
    that reason.
    """
    from ..sim.shard.runner import run_sharded_point

    repeats = repeats or (3 if full else 2)
    n_localities = 256 if full else 32
    rounds = 30 if full else 20
    horizon_us = 400.0 if full else 300.0
    shard_counts = (1, 2, 4, 8) if full else (1, 2, 4)

    doc = _doc_header("shards", repeats)
    doc["scale"] = "full" if full else "smoke"
    doc["workload"] = {"macro": "pair_ping_pong", "config": "lci",
                       "n_localities": n_localities, "rounds": rounds,
                       "horizon_us": horizon_us}
    workload = _shard_macro(n_localities, rounds, horizon_us, seed=7)

    results: Dict[str, Any] = {}
    events0: Optional[int] = None
    base_s: Optional[float] = None
    for n in shard_counts:
        # warm-up doubles as the invariance check
        r = run_sharded_point(workload, n)
        if events0 is None:
            events0 = r["events"]
        elif r["events"] != events0:
            raise AssertionError(
                f"shards={n}: aggregate event count diverged "
                f"({r['events']} vs {events0}) — shard-count invariance "
                f"broken")
        times: List[float] = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_sharded_point(workload, n)
            times.append(time.perf_counter() - t0)
        wall = statistics.median(times)
        if n == 1:
            base_s = wall
        eps = r["events"] / wall
        results[str(n)] = {
            "events": r["events"],
            "windows": r["windows"],
            "wall_s": round(wall, 6),
            "events_per_s": round(eps),
            "speedup_vs_1": round(base_s / wall, 3),
        }
    doc["shard_counts"] = results
    doc["best_speedup"] = max(r["speedup_vs_1"]
                              for r in results.values())
    return doc


# ---------------------------------------------------------------------------
# schema validation (what the CI perf job checks)
# ---------------------------------------------------------------------------
def validate_bench(doc: Dict[str, Any]) -> List[str]:
    """Return a list of schema problems (empty = valid)."""
    errors: List[str] = []
    if doc.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema != {BENCH_SCHEMA!r}: {doc.get('schema')!r}")
    kind = doc.get("kind")
    if kind not in ("kernel", "models", "figures", "shards", "tune"):
        errors.append(f"unknown kind {kind!r}")
    for key in ("python", "platform", "generated_utc", "repeats", "scale"):
        if key not in doc:
            errors.append(f"missing key {key!r}")
    if kind == "kernel":
        workloads = doc.get("workloads")
        if not workloads:
            errors.append("kernel doc has no workloads")
        else:
            for name, w in workloads.items():
                for key in ("n", "events", "live_s", "live_events_per_s",
                            "seed_s", "seed_events_per_s", "speedup"):
                    val = w.get(key)
                    if not isinstance(val, (int, float)) or val <= 0:
                        errors.append(f"workload {name}: bad {key}={val!r}")
        for key in ("speedup_min", "speedup_geomean"):
            if not isinstance(doc.get(key), (int, float)):
                errors.append(f"missing/bad {key}")
    elif kind == "models":
        workloads = doc.get("workloads")
        if not workloads:
            errors.append("models doc has no workloads")
        else:
            for name, w in workloads.items():
                for key in ("live_s", "ref_s", "speedup"):
                    val = w.get(key)
                    if not isinstance(val, (int, float)) or val <= 0:
                        errors.append(f"workload {name}: bad {key}={val!r}")
        for key in ("speedup_min", "speedup_geomean"):
            if not isinstance(doc.get(key), (int, float)):
                errors.append(f"missing/bad {key}")
    elif kind == "shards":
        counts = doc.get("shard_counts")
        if not counts:
            errors.append("shards doc has no shard_counts")
        else:
            events = {c.get("events") for c in counts.values()}
            if len(events) != 1:
                errors.append(f"aggregate events differ across shard "
                              f"counts: {sorted(events)} — invariance "
                              f"contract broken")
            for n, c in counts.items():
                for key in ("events", "wall_s", "events_per_s",
                            "speedup_vs_1"):
                    val = c.get(key)
                    if not isinstance(val, (int, float)) or val <= 0:
                        errors.append(f"shards={n}: bad {key}={val!r}")
        if "workload" not in doc:
            errors.append("shards doc has no workload description")
        if not isinstance(doc.get("best_speedup"), (int, float)):
            errors.append("missing/bad best_speedup")
    elif kind == "figures":
        if not doc.get("figures"):
            errors.append("figures doc has no figure timings")
        sweep = doc.get("sweep")
        if not sweep:
            errors.append("figures doc has no sweep timing")
        else:
            for key in ("points", "sequential_s", "jobs", "parallel_s",
                        "speedup"):
                val = sweep.get(key)
                if not isinstance(val, (int, float)) or val <= 0:
                    errors.append(f"sweep: bad {key}={val!r}")
    elif kind == "tune":
        for key in ("workload", "metric"):
            if not doc.get(key):
                errors.append(f"tune doc missing {key!r}")
        base = doc.get("baseline")
        if not isinstance(base, dict) or "config" not in base:
            errors.append("tune doc missing baseline.config")
        elif not isinstance(base.get("score"), (int, float)) \
                or base["score"] <= 0:
            errors.append(f"baseline: bad score={base.get('score')!r}")
        rungs = doc.get("rungs")
        if not rungs:
            errors.append("tune doc has no rungs")
        else:
            for i, rung in enumerate(rungs):
                cands = rung.get("candidates")
                if not cands:
                    errors.append(f"rung {i}: no candidates")
                    continue
                names = set()
                for c in cands:
                    if "name" not in c or "config" not in c:
                        errors.append(f"rung {i}: candidate missing "
                                      f"name/config: {c!r}")
                        continue
                    names.add(c["name"])
                    if not isinstance(c.get("score"), (int, float)):
                        errors.append(f"rung {i}: candidate {c['name']}: "
                                      f"bad score={c.get('score')!r}")
                kept = rung.get("kept")
                if not isinstance(kept, list) or not kept:
                    errors.append(f"rung {i}: bad kept={kept!r}")
                elif not set(kept) <= names:
                    errors.append(f"rung {i}: kept names not a subset of "
                                  f"candidates: {sorted(set(kept) - names)}")
        winner = doc.get("winner")
        if not isinstance(winner, dict) or "config" not in winner:
            errors.append("tune doc missing winner.config")
        else:
            for key in ("score", "improvement_pct"):
                if not isinstance(winner.get(key), (int, float)):
                    errors.append(f"winner: bad {key}={winner.get(key)!r}")
    return errors


# ---------------------------------------------------------------------------
# CLI driver (``repro-fig perf``)
# ---------------------------------------------------------------------------
def run_perf(full: bool = False, out_dir: str = ".",
             jobs: Optional[int] = None) -> int:
    """Run both benches, write BENCH_*.json, print a summary; 0 on success."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    kernel_doc = bench_kernel(full=full)
    print(f"== kernel microbenchmarks "
          f"({kernel_doc['scale']}, median of {kernel_doc['repeats']}) ==")
    for name, w in kernel_doc["workloads"].items():
        print(f"  {name:<18} {w['live_events_per_s']:>9,} ev/s  "
              f"(seed {w['seed_events_per_s']:>9,})  "
              f"speedup {w['speedup']:.2f}x")
    print(f"  min speedup {kernel_doc['speedup_min']:.2f}x, "
          f"geomean {kernel_doc['speedup_geomean']:.2f}x")

    models_doc = bench_models(full=full)
    print(f"== model macrobenchmarks "
          f"({models_doc['scale']}, median of {models_doc['repeats']}) ==")
    for name, w in models_doc["workloads"].items():
        print(f"  {name:<22} live {w['live_s']:.2f}s  "
              f"ref {w['ref_s']:.2f}s  speedup {w['speedup']:.2f}x")
    print(f"  min speedup {models_doc['speedup_min']:.2f}x, "
          f"geomean {models_doc['speedup_geomean']:.2f}x")

    figures_doc = bench_figures(full=full, jobs=jobs)
    sweep = figures_doc["sweep"]
    print("== figure wall-times ==")
    for name, f in figures_doc["figures"].items():
        print(f"  {name:<18} {f['wall_s']:.1f}s")
    print(f"  sweep {sweep['points']} pts: sequential "
          f"{sweep['sequential_s']:.1f}s, --jobs {sweep['jobs']} "
          f"{sweep['parallel_s']:.1f}s ({sweep['speedup']:.2f}x, "
          f"{os.cpu_count()} cores)")

    shards_doc = bench_shards(full=full)
    w = shards_doc["workload"]
    print(f"== sharded engine ({shards_doc['scale']}, "
          f"{w['n_localities']} localities, median of "
          f"{shards_doc['repeats']}) ==")
    for n, c in shards_doc["shard_counts"].items():
        print(f"  shards={n:<3} {c['events_per_s']:>9,} ev/s  "
              f"{c['wall_s']:.2f}s wall  "
              f"({c['speedup_vs_1']:.2f}x vs 1)")
    print(f"  best speedup {shards_doc['best_speedup']:.2f}x "
          f"({os.cpu_count()} cores)")

    failures = 0
    for fname, doc in (("BENCH_kernel.json", kernel_doc),
                       ("BENCH_models.json", models_doc),
                       ("BENCH_figures.json", figures_doc),
                       ("BENCH_shards.json", shards_doc)):
        errors = validate_bench(doc)
        if errors:
            failures += 1
            for e in errors:
                print(f"  INVALID {fname}: {e}")
        path = out / fname
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {path}")
    print(f"[perf done in {time.perf_counter() - t0:.1f}s wall]")
    return 1 if failures else 0
