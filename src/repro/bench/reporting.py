"""Paper-style terminal output: tables and ASCII log-log plots.

No plotting libraries are assumed; every figure driver prints its series as
both a table (the exact numbers) and a rough ASCII chart (the shape), which
is what EXPERIMENTS.md's paper-vs-measured comparisons are built from.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .harness import Series

__all__ = ["format_table", "format_series_table", "ascii_plot",
           "format_bar_chart"]


def format_table(rows: Sequence[Sequence[object]],
                 header: Optional[Sequence[str]] = None) -> str:
    """Fixed-width table with a separator under the header."""
    data = [list(map(str, r)) for r in rows]
    if header:
        data.insert(0, list(map(str, header)))
    if not data:
        return ""
    widths = [max(len(r[i]) for r in data) for i in range(len(data[0]))]
    lines = []
    for idx, row in enumerate(data):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if header and idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series_table(series: List[Series], x_name: str = "x",
                        y_fmt: str = "{:.1f}") -> str:
    """All series against their union of x values."""
    xs = sorted({x for s in series for x in s.xs})
    header = [x_name] + [s.label for s in series]
    rows = []
    for x in xs:
        row: List[str] = [f"{x:g}"]
        for s in series:
            if x in s.xs:
                i = s.xs.index(x)
                cell = y_fmt.format(s.ys[i])
                if s.yerr[i]:
                    cell += "±" + y_fmt.format(s.yerr[i])
            else:
                cell = "-"
            row.append(cell)
        rows.append(row)
    return format_table(rows, header)


def _log_scale(values: List[float], lo: float, hi: float, n: int) -> List[int]:
    out = []
    # zero (e.g. a 0.0 drop-probability point) has no log; clamp it to a
    # synthetic decade below the positive range instead of crashing
    if hi <= 0.0:
        lo, hi = 1e-6, 1.0
    elif lo <= 0.0:
        lo = hi / 1e6
    llo, lhi = math.log10(lo), math.log10(hi)
    span = max(lhi - llo, 1e-12)
    for v in values:
        frac = (math.log10(max(v, lo)) - llo) / span
        out.append(min(n - 1, max(0, round(frac * (n - 1)))))
    return out


def ascii_plot(series: List[Series], width: int = 64, height: int = 18,
               logx: bool = True, logy: bool = True,
               title: str = "") -> str:
    """A rough multi-series scatter/line chart in ASCII (log-log default)."""
    pts = [(x, y) for s in series for x, y in zip(s.xs, s.ys) if y > 0]
    if not pts:
        return "(no data)"
    xs_all = [p[0] for p in pts]
    ys_all = [p[1] for p in pts]
    xlo, xhi = min(xs_all), max(xs_all)
    ylo, yhi = min(ys_all), max(ys_all)
    if not logx:
        raise NotImplementedError("only log axes are provided")
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&$~^=123456789"
    for si, s in enumerate(series):
        mark = marks[si % len(marks)]
        cols = _log_scale(s.xs, xlo, xhi, width)
        rows = _log_scale(s.ys, ylo, yhi, height) if logy else [
            min(height - 1, max(0, round((y - ylo) / max(yhi - ylo, 1e-12)
                                         * (height - 1)))) for y in s.ys]
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{ylo:.3g} .. {yhi:.3g}] (log)" if logy
                 else f"y: [{ylo:.3g} .. {yhi:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{xlo:.3g} .. {xhi:.3g}] (log)")
    for si, s in enumerate(series):
        lines.append(f"  {marks[si % len(marks)]} = {s.label}")
    return "\n".join(lines)


def format_bar_chart(labels: List[str], values: List[float],
                     width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart (used for the Fig 3/6 peak-rate charts)."""
    if not values:
        return "(no data)"
    peak = max(values)
    lw = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        bar = "#" * max(1, round(v / peak * width)) if peak > 0 else ""
        lines.append(f"{label.ljust(lw)} |{bar} {v:.1f}{unit}")
    return "\n".join(lines)
