"""Parallel sweep engine with content-addressed result caching.

Every figure in EXPERIMENTS.md is a sweep over independent, deterministic
``(config, workload-params, seed)`` points — embarrassingly parallel work
the seed repo ran strictly sequentially.  This module provides the three
pieces that remove that serialization without changing a single simulated
number:

* :class:`PointTask` — a picklable, canonically-serializable description of
  one sweep point (workload kind + config label + primitive params + seed),
  evaluated by the top-level :func:`evaluate_point` so it can cross a
  ``ProcessPoolExecutor`` boundary.
* :class:`ResultCache` — a content-addressed on-disk cache.  The key is
  ``sha256(code fingerprint ‖ canonical task JSON)`` where the code
  fingerprint hashes every ``repro`` source file, so re-running a figure
  after an *unrelated* edit outside ``src/repro`` is a cache hit while any
  change to the simulator code invalidates everything.
* :func:`run_points` — evaluates a task list under the active
  :class:`ExecutionPolicy` (``--jobs N`` fans misses across worker
  processes; results always return in input order, so parallel output is
  element-wise identical to sequential).

The figure drivers in :mod:`repro.bench.figures` route all paper sweeps
through :func:`run_points`; the CLI knobs are ``--jobs N``, ``--cache DIR``
and ``--no-cache`` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "PointTask", "ResultCache", "ExecutionPolicy",
    "code_fingerprint", "evaluate_point", "run_points",
    "message_rate_task", "latency_task", "octotiger_task", "fft_task",
    "serve_task",
    "set_policy", "policy", "execution",
]

#: environment variable consulted for a default cache directory
CACHE_ENV = "REPRO_CACHE_DIR"

#: on-disk cache entry schema tag
CACHE_SCHEMA = "repro-cache/1"


# ---------------------------------------------------------------------------
# code fingerprint
# ---------------------------------------------------------------------------
_FINGERPRINT: Optional[str] = None


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Cached per process; any edit under ``src/repro`` changes the digest and
    therefore every cache key derived from it.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None or refresh:
        import repro
        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


# ---------------------------------------------------------------------------
# sweep points
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PointTask:
    """One independent sweep point: fully picklable, canonically hashable."""

    kind: str                    #: "message_rate" | "latency" | "octotiger"
    config: str                  #: parcelport configuration label
    params: Dict[str, Any]       #: primitive workload parameters
    seed: int

    def canonical(self) -> str:
        """Canonical JSON (sorted keys, fixed separators) for cache keys."""
        return json.dumps({"kind": self.kind, "config": self.config,
                           "params": self.params, "seed": self.seed},
                          sort_keys=True, separators=(",", ":"))


def _platform(name: str):
    from ..hpx_rt.platform import EXPANSE, LAPTOP, ROSTAM
    try:
        return {"expanse": EXPANSE, "rostam": ROSTAM,
                "laptop": LAPTOP}[name]
    except KeyError:
        raise ValueError(f"unknown platform {name!r} (parallel sweep points "
                         f"serialize platforms by name)") from None


def message_rate_task(config: str, *, msg_size: int, batch: int,
                      total_msgs: int, inject_rate_kps: Optional[float],
                      platform, seed: int,
                      adapt: Optional[Dict[str, Any]] = None,
                      max_events: int = 30_000_000) -> PointTask:
    params = {"msg_size": msg_size, "batch": batch,
              "total_msgs": total_msgs,
              "inject_rate_kps": inject_rate_kps,
              "platform": platform.name,
              "max_events": max_events}
    if adapt is not None:
        # Key appears only when adaptation is on, so every pre-existing
        # cache key (and its cached result) stays valid.
        params["adapt"] = dict(adapt)
    return PointTask("message_rate", config, params, seed)


def latency_task(config: str, *, msg_size: int, window: int, steps: int,
                 platform, seed: int,
                 max_events: int = 20_000_000) -> PointTask:
    return PointTask("latency", config,
                     {"msg_size": msg_size, "window": window,
                      "steps": steps, "platform": platform.name,
                      "max_events": max_events}, seed)


def octotiger_task(config: str, *, platform, n_localities: int,
                   paper_level: int, n_steps: int, seed: int,
                   max_events: int = 60_000_000) -> PointTask:
    return PointTask("octotiger", config,
                     {"platform": platform.name,
                      "n_localities": n_localities,
                      "paper_level": paper_level, "n_steps": n_steps,
                      "max_events": max_events}, seed)


def fft_task(config: str, *, n1: int, n2: int, n_localities: int,
             platform, seed: int, iterations: int = 1,
             fragment: bool = True, credit_window: int = 0,
             max_backlog: int = 0,
             adapt: Optional[Dict[str, Any]] = None,
             max_events: int = 20_000_000) -> PointTask:
    params = {"n1": n1, "n2": n2, "n_localities": n_localities,
              "iterations": iterations, "fragment": fragment,
              "credit_window": credit_window,
              "max_backlog": max_backlog,
              "platform": platform.name,
              "max_events": max_events}
    if adapt is not None:
        params["adapt"] = dict(adapt)
    return PointTask("fft", config, params, seed)


def serve_task(config: str, *, offered_kps: float, horizon_us: float,
               n_localities: int, platform, seed: int,
               arrival: str = "poisson", slo_us: float = 200.0,
               drain_us: float = 2000.0, n_clients: int = 1_000_000,
               credit_window: int = 8, max_backlog: int = 16,
               max_queued_parcels: int = 64,
               adapt: Optional[Dict[str, Any]] = None,
               max_events: int = 30_000_000) -> PointTask:
    params = {"offered_kps": offered_kps, "horizon_us": horizon_us,
              "n_localities": n_localities, "arrival": arrival,
              "slo_us": slo_us, "drain_us": drain_us,
              "n_clients": n_clients,
              "credit_window": credit_window,
              "max_backlog": max_backlog,
              "max_queued_parcels": max_queued_parcels,
              "platform": platform.name,
              "max_events": max_events}
    if adapt is not None:
        params["adapt"] = dict(adapt)
    return PointTask("serve", config, params, seed)


def evaluate_point(task: PointTask) -> Dict[str, float]:
    """Run one sweep point and return its flat metric dict.

    Top-level (and argument-picklable) so :class:`ProcessPoolExecutor`
    workers can execute it.  Under an active ``--shards N`` policy the
    point is handed to the sharded engine
    (:func:`repro.sim.shard.run_sharded_point`), which forks ``N`` shard
    processes that each re-enter this function under a shard context —
    the ``current_context()`` check keeps the recursion single-level.
    """
    from ..sim.shard.context import ShardingUnsupported, current_context

    if _POLICY.shards > 1 and current_context() is None:
        if task.kind == "octotiger":
            raise ShardingUnsupported(
                "the octotiger proxy's result depends on cross-locality "
                "scheduler state that the sharded engine does not merge; "
                "run it without --shards")
        if "adapt" in task.params:
            raise ShardingUnsupported(
                "adaptive policies (adapt=) are not supported under "
                "--shards > 1: the controller's shared state spans "
                "localities that live on different shards")
        from ..sim.shard.runner import run_sharded_point
        return run_sharded_point(task, _POLICY.shards)
    p = dict(task.params)

    def _adapt_spec():
        if "adapt" not in p:
            return None
        from ..adapt import AdaptiveSpec
        return AdaptiveSpec.from_dict(p["adapt"])

    if task.kind == "message_rate":
        from .message_rate import MessageRateParams, run_message_rate
        params = MessageRateParams(
            msg_size=p["msg_size"], batch=p["batch"],
            total_msgs=p["total_msgs"],
            inject_rate_kps=p["inject_rate_kps"],
            platform=_platform(p["platform"]),
            max_events=p["max_events"])
        return run_message_rate(task.config, params,
                                seed=task.seed,
                                adapt=_adapt_spec()).as_dict()
    if task.kind == "latency":
        from .latency import LatencyParams, run_latency
        params = LatencyParams(
            msg_size=p["msg_size"], window=p["window"], steps=p["steps"],
            platform=_platform(p["platform"]), max_events=p["max_events"])
        return run_latency(task.config, params, seed=task.seed).as_dict()
    if task.kind == "fft":
        from .fft_bench import FftBenchParams, run_fft
        params = FftBenchParams(
            n1=p["n1"], n2=p["n2"], n_localities=p["n_localities"],
            iterations=p["iterations"], fragment=p["fragment"],
            credit_window=p["credit_window"], max_backlog=p["max_backlog"],
            platform=_platform(p["platform"]), max_events=p["max_events"])
        return run_fft(task.config, params, seed=task.seed,
                       adapt=_adapt_spec()).as_dict()
    if task.kind == "serve":
        from .serve_bench import ServeBenchParams, run_serve
        params = ServeBenchParams(
            offered_kps=p["offered_kps"], horizon_us=p["horizon_us"],
            n_localities=p["n_localities"], arrival=p["arrival"],
            slo_us=p["slo_us"], drain_us=p["drain_us"],
            n_clients=p["n_clients"],
            credit_window=p["credit_window"],
            max_backlog=p["max_backlog"],
            max_queued_parcels=p["max_queued_parcels"],
            platform=_platform(p["platform"]), max_events=p["max_events"])
        return run_serve(task.config, params, seed=task.seed,
                         adapt=_adapt_spec()).as_dict()
    if task.kind == "octotiger":
        from .octotiger_bench import OctoTigerBenchParams, run_octotiger
        params = OctoTigerBenchParams(
            platform=_platform(p["platform"]),
            n_localities=p["n_localities"],
            paper_level=p["paper_level"], n_steps=p["n_steps"],
            max_events=p["max_events"])
        return run_octotiger(task.config, params, seed=task.seed)
    raise ValueError(f"unknown point kind {task.kind!r}")


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------
class ResultCache:
    """Content-addressed cache of sweep-point results.

    Entry key = ``sha256(code_fingerprint ‖ task.canonical())``; the entry
    file records the schema tag, the key's ingredients (for debuggability)
    and the result dict.  A changed parameter, seed, or any edit to the
    ``repro`` sources produces a different key — stale hits are impossible
    by construction, so there is no expiry logic.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key(self, task: PointTask) -> str:
        h = hashlib.sha256()
        h.update(code_fingerprint().encode())
        h.update(b"\0")
        h.update(task.canonical().encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, task: PointTask) -> Optional[Dict[str, float]]:
        path = self._path(self.key(task))
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, task: PointTask, result: Dict[str, float]) -> None:
        key = self.key(task)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"schema": CACHE_SCHEMA, "key": key,
                       "fingerprint": code_fingerprint(),
                       "task": json.loads(task.canonical()),
                       "result": result}, fh, indent=1)
        os.replace(tmp, path)
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}


# ---------------------------------------------------------------------------
# execution policy (what the CLI's --jobs/--cache/--no-cache configure)
# ---------------------------------------------------------------------------
@dataclass
class ExecutionPolicy:
    """How sweep points are evaluated: fan-out width + result cache +
    shard count for the conservative-parallel engine.

    ``shards`` deliberately does **not** enter the cache key: shard-count
    invariance (same bytes at any ``--shards N``) is part of the engine's
    contract, so a result computed at one shard count is a valid cache
    hit for every other.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    shards: int = 1


_POLICY = ExecutionPolicy()


def policy() -> ExecutionPolicy:
    """The active execution policy."""
    return _POLICY


def set_policy(jobs: Optional[int] = None,
               cache_dir: "str | Path | None" = None,
               no_cache: bool = False,
               shards: Optional[int] = None) -> ExecutionPolicy:
    """Configure the process-wide execution policy.

    ``cache_dir=None`` falls back to the ``REPRO_CACHE_DIR`` environment
    variable; ``no_cache=True`` disables caching regardless of both.
    """
    global _POLICY
    if jobs is not None:
        if jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {jobs}")
        _POLICY.jobs = jobs
    if shards is not None:
        if shards < 1:
            raise ValueError(f"--shards must be >= 1, got {shards}")
        _POLICY.shards = shards
    if no_cache:
        _POLICY.cache = None
    elif cache_dir is not None:
        _POLICY.cache = ResultCache(cache_dir)
    elif _POLICY.cache is None and os.environ.get(CACHE_ENV):
        _POLICY.cache = ResultCache(os.environ[CACHE_ENV])
    return _POLICY


@contextmanager
def execution(jobs: int = 1, cache: "ResultCache | str | Path | None" = None,
              shards: int = 1) -> Iterator[ExecutionPolicy]:
    """Temporarily swap the execution policy (used by tests and drivers)."""
    global _POLICY
    prev = _POLICY
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    _POLICY = ExecutionPolicy(jobs=jobs, cache=cache, shards=shards)
    try:
        yield _POLICY
    finally:
        _POLICY = prev


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
def run_points(tasks: Sequence[PointTask],
               jobs: Optional[int] = None,
               cache: "ResultCache | None" = None,
               no_cache: bool = False,
               progress: Optional[Callable[[int, int], None]] = None
               ) -> List[Dict[str, float]]:
    """Evaluate sweep points; results are returned **in input order**.

    Cache hits are resolved first; remaining misses run sequentially in
    process (``jobs == 1``) or fan out over a :class:`ProcessPoolExecutor`
    (``jobs > 1``).  Because every point is an independent deterministic
    simulation keyed by its own seed, the output is element-wise identical
    whatever the fan-out width — asserted in
    ``tests/test_parallel_sweep.py``.
    """
    pol = _POLICY
    if jobs is None:
        jobs = pol.jobs
    if pol.shards > 1:
        # Each point already fans out over shard processes; stacking a
        # ProcessPoolExecutor on top would fork from daemonic workers.
        jobs = 1
    if cache is None and not no_cache:
        cache = pol.cache
    if no_cache:
        cache = None

    results: List[Optional[Dict[str, float]]] = [None] * len(tasks)
    miss_idx: List[int] = []
    if cache is not None:
        for i, task in enumerate(tasks):
            hit = cache.get(task)
            if hit is not None:
                results[i] = hit
            else:
                miss_idx.append(i)
    else:
        miss_idx = list(range(len(tasks)))

    done = len(tasks) - len(miss_idx)
    if progress is not None and done:
        progress(done, len(tasks))

    if jobs > 1 and len(miss_idx) > 1:
        chunk = max(1, len(miss_idx) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=min(jobs, len(miss_idx))) as ex:
            for i, result in zip(miss_idx,
                                 ex.map(evaluate_point,
                                        [tasks[i] for i in miss_idx],
                                        chunksize=chunk)):
                results[i] = result
                if cache is not None:
                    cache.put(tasks[i], result)
                done += 1
                if progress is not None:
                    progress(done, len(tasks))
    else:
        for i in miss_idx:
            result = evaluate_point(tasks[i])
            results[i] = result
            if cache is not None:
                cache.put(tasks[i], result)
            done += 1
            if progress is not None:
                progress(done, len(tasks))
    return results  # type: ignore[return-value]
