"""Per-figure drivers: regenerate every table and figure of the paper.

Each ``figN()`` runs the corresponding experiment (scaled down by default —
pass ``quick=False`` for the fuller sweep), prints the paper-style series
and returns a :class:`FigureResult` whose series the benchmark suite
asserts shape targets against (see DESIGN.md §3).

Workload scaling vs the paper (documented per DESIGN.md): message totals
are 10–50× smaller than the paper's 500 K/100 K, repeat counts default to
3 (paper: ≥5), and Octo-Tiger trees are two levels shallower.  None of
these change who wins or where the crossovers sit; they keep a full figure
regeneration within minutes of wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..faults import FaultPlan
from ..hpx_rt.platform import EXPANSE, ROSTAM, PlatformSpec
from ..parcelport import ALL_LCI_VARIANTS, PPConfig, TABLE1
from .harness import Measurement, Series, repeat
from .latency import LatencyParams, run_latency
from .message_rate import MessageRateParams, run_message_rate
from .parallel import (fft_task, latency_task, message_rate_task,
                       octotiger_task, run_points, serve_task)
from .reporting import (ascii_plot, format_bar_chart, format_series_table,
                        format_table)
from .seeds import repeat_seeds

__all__ = ["FigureResult", "FIGURES",
           "table_abbreviations", "platform_tables",
           "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
           "fig7", "fig8", "fig9", "fig10", "fig11",
           "ablation_mpi_pp", "ablation_aggregation", "fault_smoke",
           "overload_smoke", "trace_smoke", "fft_smoke", "fft_sweep",
           "serve_smoke", "serve_sweep", "find_knee",
           "OVERLOAD_CONFIGS", "OVERLOAD_SPEC",
           "FFT_CONFIGS", "FFT_FLOW",
           "SERVE_CONFIGS", "SERVE_FLOW", "SERVE_SLO_TARGET"]

#: the 11 configurations of Figs 3/6/7/8/9
ALL_CONFIGS = (["lci_psr_cq_pin"] + ALL_LCI_VARIANTS + ["mpi", "mpi_i"])

#: Fig 1/4 comparison set
MPI_VS_LCI = ["mpi", "mpi_i", "lci_psr_cq_pin", "lci_psr_cq_pin_i"]


@dataclass
class FigureResult:
    """Series + metadata for one regenerated figure."""

    figure: str
    title: str
    series: List[Series]
    x_name: str = "x"
    y_name: str = "y"
    meta: Dict[str, object] = field(default_factory=dict)

    def by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.figure}: no series {label!r} "
                       f"(have {[s.label for s in self.series]})")

    def render(self, plot: bool = True) -> str:
        parts = [f"== {self.figure}: {self.title} =="]
        parts.append(format_series_table(self.series, x_name=self.x_name))
        if plot and any(s.xs for s in self.series) \
                and len({x for s in self.series for x in s.xs}) > 1:
            parts.append(ascii_plot(self.series, title=self.y_name))
        counters = self.meta.get("counters")
        if counters:
            for key in sorted(counters):
                body = "  ".join(f"{k}={v:g}" for k, v in
                                 sorted(counters[key].items())) or "(none)"
                parts.append(f"-- {key}: {body}")
        reports = self.meta.get("reports")
        if reports:
            for key in sorted(reports):
                parts.append(f"-- {key} --\n{reports[key]}")
        return "\n".join(parts)

    def show(self) -> None:
        print(self.render())


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------
def table_abbreviations() -> str:
    """Table 1: configuration abbreviations."""
    rows = sorted(TABLE1.items())
    return format_table(rows, header=["Abbreviation", "Configuration"])


def platform_tables() -> str:
    """Tables 2 and 3: the two system configurations (as simulated)."""
    parts = []
    for plat, tid in ((EXPANSE, "Table 2 (SDSC Expanse)"),
                      (ROSTAM, "Table 3 (Rostam)")):
        rows = list(plat.table().items())
        parts.append(f"== {tid} ==\n" + format_table(rows))
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# sweep plumbing: fan independent points through repro.bench.parallel
# ---------------------------------------------------------------------------
def _seeds(repeats: int) -> List[int]:
    """The exact seed sequence :func:`repro.bench.harness.repeat` uses."""
    return repeat_seeds(repeats)


def _fold(results: Sequence[Dict[str, float]]) -> Dict[str, Measurement]:
    """Aggregate per-repetition result dicts exactly like ``repeat()``."""
    acc: Dict[str, List[float]] = {}
    for out in results:
        for k, v in out.items():
            acc.setdefault(k, []).append(float(v))
    return {k: Measurement(v) for k, v in acc.items()}


# ---------------------------------------------------------------------------
# message-rate figures (Figs 1-6)
# ---------------------------------------------------------------------------
def _rate_sweep(configs: Sequence[str], size: int, batch: int, total: int,
                rates_kps: Sequence[Optional[float]],
                platform: PlatformSpec, repeats: int) -> List[Series]:
    seeds = _seeds(repeats)
    tasks = [message_rate_task(cfg, msg_size=size, batch=batch,
                               total_msgs=total, inject_rate_kps=rate,
                               platform=platform, seed=seed)
             for cfg in configs for rate in rates_kps for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    for cfg in configs:
        s = Series(label=cfg)
        for _rate in rates_kps:
            res = _fold([next(results) for _ in seeds])
            s.add(res["achieved_injection_kps"].mean,
                  res["message_rate_kps"])
        series.append(s)
    return series


_RATES_8B_FULL = [100.0, 200.0, 400.0, 800.0, 1600.0, None]
_RATES_8B_QUICK = [100.0, 400.0, 1600.0, None]
_RATES_16K_FULL = [10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, None]
_RATES_16K_QUICK = [10.0, 40.0, 160.0, None]


def fig1(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 1: 8 B message rate vs injection rate — MPI vs LCI ± immediate."""
    repeats = repeats or (1 if quick else 3)
    total = total or (4000 if quick else 20000)
    rates = _RATES_8B_QUICK if quick else _RATES_8B_FULL
    series = _rate_sweep(MPI_VS_LCI, 8, 100, total, rates, EXPANSE, repeats)
    return FigureResult("fig1", "Achieved message rate (8B), MPI vs LCI",
                        series, x_name="inj_kps", y_name="rate K/s",
                        meta={"total": total, "repeats": repeats})


def fig2(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 2: 8 B message rate vs injection — the 8 LCI ``_i`` variants."""
    repeats = repeats or (1 if quick else 3)
    total = total or (4000 if quick else 20000)
    rates = _RATES_8B_QUICK if quick else _RATES_8B_FULL
    series = _rate_sweep(ALL_LCI_VARIANTS, 8, 100, total, rates, EXPANSE,
                         repeats)
    return FigureResult("fig2", "Achieved message rate (8B), LCI variants",
                        series, x_name="inj_kps", y_name="rate K/s",
                        meta={"total": total, "repeats": repeats})


def _peak_rates(configs: Sequence[str], size: int, batch: int, total: int,
                rates: Sequence[Optional[float]], repeats: int
                ) -> FigureResult:
    series = _rate_sweep(configs, size, batch, total, rates, EXPANSE,
                         repeats)
    peaks = Series(label="peak")
    for i, s in enumerate(series):
        peaks.xs.append(float(i))
        peaks.ys.append(s.peak)
        peaks.yerr.append(0.0)
    fig = "fig3" if size == 8 else "fig6"
    res = FigureResult(fig, f"Highest achieved message rate ({size}B)",
                       series, x_name="inj_kps", y_name="rate K/s",
                       meta={"labels": [s.label for s in series],
                             "peaks": peaks.ys})
    return res


def fig3(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 3: highest achieved 8 B message rate across all 11 configs."""
    repeats = repeats or (1 if quick else 3)
    total = total or (4000 if quick else 20000)
    rates = [400.0, None] if quick else _RATES_8B_FULL
    return _peak_rates(ALL_CONFIGS, 8, 100, total, rates, repeats)


def fig4(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 4: 16 KiB message rate vs injection — MPI vs LCI ± immediate."""
    repeats = repeats or (1 if quick else 3)
    total = total or (1000 if quick else 5000)
    rates = _RATES_16K_QUICK if quick else _RATES_16K_FULL
    series = _rate_sweep(MPI_VS_LCI, 16384, 10, total, rates, EXPANSE,
                         repeats)
    return FigureResult("fig4", "Achieved message rate (16KiB), MPI vs LCI",
                        series, x_name="inj_kps", y_name="rate K/s",
                        meta={"total": total, "repeats": repeats})


def fig5(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 5: 16 KiB message rate vs injection — LCI variants."""
    repeats = repeats or (1 if quick else 3)
    total = total or (1000 if quick else 5000)
    rates = _RATES_16K_QUICK if quick else _RATES_16K_FULL
    series = _rate_sweep(ALL_LCI_VARIANTS, 16384, 10, total, rates, EXPANSE,
                         repeats)
    return FigureResult("fig5", "Achieved message rate (16KiB), LCI variants",
                        series, x_name="inj_kps", y_name="rate K/s",
                        meta={"total": total, "repeats": repeats})


def fig6(quick: bool = True, repeats: Optional[int] = None,
         total: Optional[int] = None) -> FigureResult:
    """Fig 6: highest achieved 16 KiB message rate across all configs."""
    repeats = repeats or (1 if quick else 3)
    total = total or (1000 if quick else 5000)
    rates = [40.0, None] if quick else _RATES_16K_FULL
    return _peak_rates(ALL_CONFIGS, 16384, 10, total, rates, repeats)


# ---------------------------------------------------------------------------
# latency figures (Figs 7-9)
# ---------------------------------------------------------------------------
_SIZES_FULL = [8, 64, 512, 1024, 4096, 16384, 65536]
_SIZES_QUICK = [8, 512, 4096, 16384, 65536]


def fig7(quick: bool = True, repeats: Optional[int] = None,
         steps: Optional[int] = None) -> FigureResult:
    """Fig 7: single-message ping-pong latency vs message size."""
    repeats = repeats or (1 if quick else 3)
    steps = steps or (20 if quick else 50)
    sizes = _SIZES_QUICK if quick else _SIZES_FULL
    seeds = _seeds(repeats)
    tasks = [latency_task(cfg, msg_size=size, window=1, steps=steps,
                          platform=EXPANSE, seed=seed)
             for cfg in ALL_CONFIGS for size in sizes for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    for cfg in ALL_CONFIGS:
        s = Series(label=cfg)
        for size in sizes:
            res = _fold([next(results) for _ in seeds])
            s.add(size, res["one_way_latency_us"])
        series.append(s)
    return FigureResult("fig7", "Latency vs message size", series,
                        x_name="bytes", y_name="latency us",
                        meta={"steps": steps, "repeats": repeats})


def _latency_window_sweep(fig: str, size: int, quick: bool,
                          repeats: Optional[int],
                          steps: Optional[int]) -> FigureResult:
    repeats = repeats or (1 if quick else 3)
    steps = steps or (15 if quick else 40)
    windows = [1, 4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    seeds = _seeds(repeats)
    tasks = [latency_task(cfg, msg_size=size, window=w, steps=steps,
                          platform=EXPANSE, seed=seed)
             for cfg in ALL_CONFIGS for w in windows for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    for cfg in ALL_CONFIGS:
        s = Series(label=cfg)
        for w in windows:
            res = _fold([next(results) for _ in seeds])
            s.add(w, res["one_way_latency_us"])
        series.append(s)
    return FigureResult(fig, f"Latency vs window size ({size}B)", series,
                        x_name="window", y_name="latency us",
                        meta={"steps": steps, "repeats": repeats})


def fig8(quick: bool = True, repeats: Optional[int] = None,
         steps: Optional[int] = None) -> FigureResult:
    """Fig 8: 8 B latency vs window size (1-64)."""
    return _latency_window_sweep("fig8", 8, quick, repeats, steps)


def fig9(quick: bool = True, repeats: Optional[int] = None,
         steps: Optional[int] = None) -> FigureResult:
    """Fig 9: 16 KiB latency vs window size (1-64)."""
    return _latency_window_sweep("fig9", 16384, quick, repeats, steps)


# ---------------------------------------------------------------------------
# Octo-Tiger figures (Figs 10-11)
# ---------------------------------------------------------------------------
def _octotiger_scaling(fig: str, platform: PlatformSpec, paper_level: int,
                       node_counts: Sequence[int], repeats: int,
                       n_steps: int = 2) -> FigureResult:
    configs = ["mpi", "mpi_i", "lci"]  # lci == lci_psr_cq_rp_i (§5)
    resolved = {"lci": "lci_psr_cq_pin_i", "mpi": "mpi", "mpi_i": "mpi_i"}
    series = {c: Series(label=c) for c in configs}
    seeds = _seeds(repeats)
    tasks = [octotiger_task(resolved[c], platform=platform,
                            n_localities=nodes, paper_level=paper_level,
                            n_steps=n_steps, seed=seed)
             for nodes in node_counts for c in configs for seed in seeds]
    results = iter(run_points(tasks))
    for nodes in node_counts:
        for c in configs:
            res = _fold([next(results) for _ in seeds])
            series[c].add(nodes, res["steps_per_second"])
    out = list(series.values())
    # relative speedup series, as plotted on the right axis of Figs 10/11
    for base in ("mpi", "mpi_i"):
        ratio = Series(label=f"lci / {base}")
        for i, nodes in enumerate(node_counts):
            denom = series[base].ys[i]
            ratio.add(nodes, series["lci"].ys[i] / denom if denom else 0.0)
        out.append(ratio)
    return FigureResult(fig, f"Octo-Tiger on {platform.name} "
                             f"(level {paper_level}, strong scaling)",
                        out, x_name="nodes", y_name="steps/s",
                        meta={"paper_level": paper_level})


def fig10(quick: bool = True, repeats: Optional[int] = None,
          node_counts: Optional[Sequence[int]] = None) -> FigureResult:
    """Fig 10: Octo-Tiger steps/s on SDSC Expanse, 2-32 nodes."""
    repeats = repeats or (1 if quick else 3)
    nodes = node_counts or ([2, 8, 32] if quick else [2, 4, 8, 16, 32])
    return _octotiger_scaling("fig10", EXPANSE, 6, nodes, repeats,
                              n_steps=1 if quick else 5)


def fig11(quick: bool = True, repeats: Optional[int] = None,
          node_counts: Optional[Sequence[int]] = None) -> FigureResult:
    """Fig 11: Octo-Tiger steps/s on Rostam, 2-16 nodes."""
    repeats = repeats or (1 if quick else 3)
    nodes = node_counts or ([2, 8, 16] if quick else [2, 4, 8, 16])
    return _octotiger_scaling("fig11", ROSTAM, 5, nodes, repeats,
                              n_steps=1 if quick else 5)


# ---------------------------------------------------------------------------
# ablations called out in the text
# ---------------------------------------------------------------------------
def ablation_mpi_pp(quick: bool = True, repeats: Optional[int] = None
                    ) -> FigureResult:
    """§3.1: original vs improved MPI parcelport (~20 % application gain).

    The application-level difference needs communication-heavy runs to be
    visible, so this ablation measures both the Octo-Tiger ratio (at a
    comm-bound node count) and the sharper microbenchmark signal: the
    original's fixed 512 B headers and tag-release round trips cost wire
    bytes and messages on every parcel.
    """
    repeats = repeats or (1 if quick else 3)
    nodes = 8 if quick else 16
    seeds = _seeds(repeats)
    app_tasks = [octotiger_task(cfg, platform=EXPANSE, n_localities=nodes,
                                paper_level=6, n_steps=1 if quick else 5,
                                seed=seed)
                 for cfg in ("mpi", "mpi_orig") for seed in seeds]
    # microbenchmark side: 8 B message rate, where every parcel is one
    # header message and the original pays the tag-release round trip and
    # the fixed 512 B wire header on each
    rate_tasks = [message_rate_task(cfg, msg_size=8, batch=100,
                                    total_msgs=2000 if quick else 10000,
                                    inject_rate_kps=None, platform=EXPANSE,
                                    seed=seed, max_events=20_000_000)
                  for cfg in ("mpi", "mpi_orig") for seed in seeds]
    results = iter(run_points(app_tasks + rate_tasks))
    series = []
    app = {}
    for cfg in ("mpi", "mpi_orig"):
        s = Series(label=cfg)
        res = _fold([next(results) for _ in seeds])
        s.add(nodes, res["steps_per_second"])
        app[cfg] = res["steps_per_second"].mean
        series.append(s)
    rate = {}
    for cfg in ("mpi", "mpi_orig"):
        res = _fold([next(results) for _ in seeds])
        rate[cfg] = res["message_rate_kps"].mean
    ratio_app = app["mpi"] / app["mpi_orig"] if app["mpi_orig"] else 0.0
    ratio_rate = rate["mpi"] / rate["mpi_orig"] if rate["mpi_orig"] else 0.0
    return FigureResult("ablation_mpi_pp",
                        "Original vs improved MPI parcelport",
                        series, x_name="nodes", y_name="steps/s",
                        meta={"improved_over_original": ratio_app,
                              "rate_improved_over_original": ratio_rate,
                              "rates_kps": rate})


def ablation_aggregation(quick: bool = True, repeats: Optional[int] = None
                         ) -> FigureResult:
    """§4.1: aggregation's mixed results — psr vs sr, with/without ``_i``."""
    repeats = repeats or (1 if quick else 3)
    total = 4000 if quick else 20000
    configs = ["lci_psr_cq_pin", "lci_psr_cq_pin_i",
               "lci_sr_cq_pin", "lci_sr_cq_pin_i"]
    rates = [400.0, None] if quick else _RATES_8B_FULL
    series = _rate_sweep(configs, 8, 100, total, rates, EXPANSE, repeats)
    return FigureResult("ablation_aggregation",
                        "Aggregation vs send-immediate (8B message rate)",
                        series, x_name="inj_kps", y_name="rate K/s",
                        meta={"peaks": {s.label: s.peak for s in series}})


# ---------------------------------------------------------------------------
# fault-injection smoke (not a paper figure: exercises repro.faults)
# ---------------------------------------------------------------------------
def fault_smoke(quick: bool = True, repeats: Optional[int] = None,
                spec: Optional[str] = None) -> FigureResult:
    """Message rate under an injected fault plan, MPI vs LCI.

    Sweeps drop probability (or runs a user ``spec`` once per config) and
    reports the achieved rate plus retransmit/failure counters — the
    headline check that lossy runs terminate instead of hanging.
    """
    repeats = repeats or 1
    total = 1000 if quick else 5000
    configs = ["lci_psr_cq_pin_i", "mpi_i"]
    drops = [0.0, 0.02, 0.1] if spec is None else [None]
    series = []
    counters: Dict[str, Dict[str, float]] = {}
    for cfg in configs:
        s = Series(label=cfg)
        for i, drop in enumerate(drops):
            plan = (FaultPlan.parse(spec) if spec is not None
                    else FaultPlan(drop_prob=drop, corrupt_prob=drop / 4))
            params = MessageRateParams(msg_size=8, batch=50,
                                       total_msgs=total,
                                       inject_rate_kps=None,
                                       platform=EXPANSE)
            res = repeat(lambda seed, plan=plan:
                         run_message_rate(cfg, params, seed,
                                          fault_plan=plan).as_dict(),
                         n=repeats)
            x = drop if drop is not None else float(i)
            s.add(x, res["message_rate_kps"])
            if plan is not None and not plan.is_zero:
                counters[f"{cfg}@{plan.describe()}"] = {
                    k: m.mean for k, m in res.items()
                    if k.startswith("fault.") or k == "failed_msgs"}
        series.append(s)
    return FigureResult("fault_smoke",
                        "Message rate under fault injection (8B)",
                        series, x_name="drop_prob", y_name="rate K/s",
                        meta={"total": total, "counters": counters,
                              "spec": spec})


# ---------------------------------------------------------------------------
# overload smoke (not a paper figure: exercises repro.flow backpressure)
# ---------------------------------------------------------------------------
#: the five Table-1 configuration *families* the overload smoke covers:
#: LCI one-sided (psr), LCI two-sided (sr), improved MPI (± immediate)
#: and the original MPI parcelport
OVERLOAD_CONFIGS = ["lci_psr_cq_pin_i", "lci_sr_sy_mt", "mpi", "mpi_i",
                    "mpi_orig"]

#: default overload scenario: squeeze the sender's packet pool while the
#: receiver is slow — both ends of the stack under pressure at once
OVERLOAD_SPEC = "squeeze=0:3000@0*1,slow=0:4000@1*2"


def overload_smoke(quick: bool = True, repeats: Optional[int] = None,
                   spec: Optional[str] = None) -> FigureResult:
    """Message rate with flow control, unloaded vs overloaded (x=0 / x=1).

    Runs each of the five configuration families twice under a
    :class:`~repro.flow.FlowControlPolicy`: once fault-free and once under
    the overload ``spec`` (default: pool squeeze on the sender plus a slow
    receiver).  The headline checks: every run completes exactly-once with
    bounded backlogs, and the overloaded runs report nonzero pool-
    exhaustion / credit-stall counters (visible in ``meta["counters"]``).
    """
    from ..flow import FlowControlPolicy

    repeats = repeats or 1
    total = 600 if quick else 3000
    plan = FaultPlan.parse(spec if spec is not None else OVERLOAD_SPEC)
    flow = FlowControlPolicy(credit_window=4, max_backlog=64,
                             max_queued_parcels=256,
                             rendezvous_fallback_after=2)
    series = []
    counters: Dict[str, Dict[str, float]] = {}
    for cfg in OVERLOAD_CONFIGS:
        s = Series(label=cfg)
        for x, active_plan in ((0.0, None), (1.0, plan)):
            params = MessageRateParams(msg_size=8, batch=50,
                                       total_msgs=total,
                                       inject_rate_kps=None,
                                       platform=EXPANSE)
            res = repeat(lambda seed, active_plan=active_plan:
                         run_message_rate(cfg, params, seed,
                                          fault_plan=active_plan,
                                          flow_policy=flow).as_dict(),
                         n=repeats)
            s.add(x, res["message_rate_kps"])
            if active_plan is not None:
                counters[f"{cfg}@{plan.describe()}"] = {
                    k: m.mean for k, m in res.items()
                    if k.startswith("fault.") or k == "failed_msgs"}
        series.append(s)
    return FigureResult("overload_smoke",
                        "Message rate with flow control under overload (8B)",
                        series, x_name="overload", y_name="rate K/s",
                        meta={"total": total, "counters": counters,
                              "spec": plan.describe(),
                              "flow": {"credit_window": flow.credit_window,
                                       "max_backlog": flow.max_backlog}})


# ---------------------------------------------------------------------------
# tracing smoke (not a paper figure: exercises repro.obs)
# ---------------------------------------------------------------------------
def trace_smoke(quick: bool = True, repeats: Optional[int] = None,
                spec: Optional[str] = None, trace_out: Optional[str] = None,
                show_metrics: bool = False) -> FigureResult:
    """Traced windowed ping-pong, MPI vs LCI, with critical-path analysis.

    Runs the Fig. 8 workload (8 B, window 16) under ``--trace`` and
    decomposes every delivered message's latency into the paper's Fig. 7
    stages.  The headline check: the improved-MPI run is dominated by
    progress-lock wait while the LCI run is dominated by (lock-free)
    progress polling.  With ``trace_out``, both runs are merged into one
    Perfetto/Chrome ``trace_event`` JSON file (MPI pids 0+, LCI 100+).

    The run is deterministic per seed, so ``repeats`` is accepted for CLI
    uniformity but a single seed is measured.
    """
    import json as _json

    from ..obs import (analyze, parse_trace_spec, to_merged_chrome_trace,
                       validate_chrome_trace)

    spec = spec or "parcel"
    parse_trace_spec(spec)  # fail fast on a bad spec
    steps = 30 if quick else 60
    window = 16
    configs = ["mpi_i", "lci_psr_cq_pin_i"]
    series: List[Series] = []
    counters: Dict[str, Dict[str, float]] = {}
    reports: Dict[str, str] = {}
    dominant: Dict[str, str] = {}
    runs = []
    for cfg in configs:
        params = LatencyParams(msg_size=8, window=window, steps=steps)
        res = run_latency(cfg, params, trace=spec)
        rep = analyze(res.obs)
        s = Series(label=cfg)
        s.xs.append(float(window))
        s.ys.append(res.one_way_latency_us)
        s.yerr.append(0.0)
        series.append(s)
        shares = rep.shares()
        counters[cfg] = {
            "chains": float(rep.n_complete),
            "retx": float(rep.retransmits),
            "lock_wait_pct": 100 * shares["progress_lock_wait"],
            "poll_pct": 100 * shares["progress_poll"],
            "wire_pct": 100 * shares["wire"],
            "spans": float(len(res.obs)),
        }
        reports[cfg] = rep.render()
        dominant[cfg] = rep.dominant
        if show_metrics and res.metrics is not None:
            reports[f"{cfg} metrics"] = res.metrics.render()
        runs.append((res.obs, cfg))
    meta: Dict[str, object] = {"steps": steps, "window": window,
                               "spec": spec, "counters": counters,
                               "reports": reports, "dominant": dominant}
    if trace_out:
        doc = to_merged_chrome_trace(runs)
        errors = validate_chrome_trace(doc)
        with open(trace_out, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh)
        meta["trace_out"] = trace_out
        meta["trace_events"] = len(doc["traceEvents"])
        meta["trace_errors"] = errors
    return FigureResult("trace_smoke",
                        "Traced latency with critical-path decomposition "
                        "(8B, window 16)",
                        series, x_name="window", y_name="latency us",
                        meta=meta)


# ---------------------------------------------------------------------------
# distributed-FFT incast figures (not paper figures: the collectives
# workload of docs/COLLECTIVES.md — all-to-all transpose fan-in)
# ---------------------------------------------------------------------------
#: the five Table-1 configuration *families* the FFT workload compares:
#: LCI one-sided (psr), LCI two-sided (sr), improved MPI (± immediate)
#: and the original MPI parcelport — the overload_smoke set
FFT_CONFIGS = ["lci_psr_cq_pin_i", "lci_sr_cq_pin_i", "mpi", "mpi_i",
               "mpi_orig"]

#: flow-control knobs for the incast runs: a 4-message credit window and
#: a shallow sender backlog, so the transpose fan-in visibly engages
#: credit stalls and deferred sends at the top of the size ladder
FFT_FLOW = {"credit_window": 4, "max_backlog": 8}


def _fft_breakdown(cfg: str, n: int, n_loc: int, seed: int
                   ) -> "tuple[Dict[str, float], str, str]":
    """Traced run of one FFT point: flow counters + critical-path shares.

    Returns ``(counters, report, dominant)`` where the counters show the
    incast story in one line — phase times, credit stalls / deferred
    sends, and the share of delivery latency spent in the flow backlog
    vs under the MPI progress lock vs in LCI polling.
    """
    from ..obs import analyze
    from .fft_bench import FftBenchParams, run_fft

    params = FftBenchParams(n1=n, n2=n, n_localities=n_loc, **FFT_FLOW)
    res = run_fft(cfg, params, seed=seed, trace="parcel")
    rep = analyze(res.obs)
    shares = rep.shares()
    counters = {
        "row_fft1_us": res.phase_times_us["row_fft1"],
        "transpose_us": res.phase_times_us["transpose"],
        "row_fft2_us": res.phase_times_us["row_fft2"],
        "credit_stalls": float(res.faults.get("credit_stalls", 0)),
        "backlogged_sends": float(res.faults.get("backlogged_sends", 0)),
        "puts_deferred": float(res.faults.get("puts_deferred", 0)),
        "backlog_pct": 100 * shares.get("backlog_wait", 0.0),
        "lock_wait_pct": 100 * shares.get("progress_lock_wait", 0.0),
        "poll_pct": 100 * shares.get("progress_poll", 0.0),
        "wire_pct": 100 * shares.get("wire", 0.0),
    }
    return counters, rep.render(), rep.dominant


def fft_smoke(quick: bool = True, repeats: Optional[int] = None
              ) -> FigureResult:
    """Distributed FFT, one small problem per config family, traced.

    The quick CI smoke for the collectives layer: runs a 16×16 (quick)
    or 32×32 (full) four-locality FFT under flow control on each of the
    five Table-1 config families and reports throughput, per-phase
    times, flow-control counters and the critical-path decomposition of
    the transpose incast.  Deterministic per seed, so ``repeats`` is
    accepted for CLI uniformity but a single seed is measured.
    """
    n = 16 if quick else 32
    n_loc = 4
    seed = _seeds(1)[0]
    series: List[Series] = []
    counters: Dict[str, Dict[str, float]] = {}
    reports: Dict[str, str] = {}
    dominant: Dict[str, str] = {}
    from .fft_bench import FftBenchParams
    x = float(FftBenchParams(n1=n, n2=n,
                             n_localities=n_loc).transpose_msg_bytes)
    for cfg in FFT_CONFIGS:
        ctrs, report, dom = _fft_breakdown(cfg, n, n_loc, seed)
        total = (ctrs["row_fft1_us"] + ctrs["transpose_us"]
                 + ctrs["row_fft2_us"])
        s = Series(label=cfg)
        s.xs.append(x)
        s.ys.append((n * n) / total if total else 0.0)  # Mpoints/s
        s.yerr.append(0.0)
        series.append(s)
        counters[cfg] = ctrs
        reports[cfg] = report
        dominant[cfg] = dom
    return FigureResult("fft_smoke",
                        f"Distributed FFT {n}x{n} on {n_loc} localities "
                        f"(all-to-all incast, flow control on)",
                        series, x_name="msg_bytes", y_name="Mpoints/s",
                        meta={"n": n, "n_localities": n_loc,
                              "flow": dict(FFT_FLOW), "counters": counters,
                              "reports": reports, "dominant": dominant})


def fft_sweep(quick: bool = True, repeats: Optional[int] = None
              ) -> FigureResult:
    """Distributed FFT sweeping the incast regime, per config family.

    Sweeps the problem size (and with ``--full`` the locality count)
    so the transpose's per-peer fan-in walks from a handful of small
    messages into deep multi-fragment backlogs.  Every point runs under
    flow control; the top of the ladder must show the credit machinery
    engaging (``credit_stalls > 0`` — asserted by ``--validate`` and
    the collectives test battery).  The meta carries, for the **highest
    sweep point**, the flow counters of every config plus a traced
    critical-path breakdown (incast backlog vs progress-lock wait vs
    polling), mirroring the Fig. 7 narrative under fan-in pressure.
    """
    repeats = repeats or (1 if quick else 3)
    n_loc = 4 if quick else 8
    sizes = [16, 32, 64] if quick else [32, 64, 128]
    seeds = _seeds(repeats)
    from .fft_bench import FftBenchParams
    tasks = [fft_task(cfg, n1=n, n2=n, n_localities=n_loc,
                      platform=EXPANSE, seed=seed, **FFT_FLOW)
             for cfg in FFT_CONFIGS for n in sizes for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    top_counters: Dict[str, Dict[str, float]] = {}
    for cfg in FFT_CONFIGS:
        s = Series(label=cfg)
        for n in sizes:
            res = _fold([next(results) for _ in seeds])
            x = float(FftBenchParams(
                n1=n, n2=n, n_localities=n_loc).transpose_msg_bytes)
            s.add(x, res["points_per_second"])
            if n == sizes[-1]:
                top_counters[cfg] = {
                    k.removeprefix("fault."): m.mean
                    for k, m in sorted(res.items())
                    if k.startswith("fault.") or k.endswith("_us")}
        series.append(s)
    # traced breakdown of the highest sweep point, per config
    reports: Dict[str, str] = {}
    dominant: Dict[str, str] = {}
    for cfg in FFT_CONFIGS:
        ctrs, report, dom = _fft_breakdown(cfg, sizes[-1], n_loc, seeds[0])
        for k in ("backlog_pct", "lock_wait_pct", "poll_pct", "wire_pct"):
            top_counters[cfg][k] = ctrs[k]
        reports[cfg] = report
        dominant[cfg] = dom
    return FigureResult("fft_sweep",
                        f"Distributed FFT size sweep on {n_loc} localities "
                        f"(all-to-all incast, flow control on)",
                        series, x_name="msg_bytes", y_name="points/s",
                        meta={"sizes": sizes, "n_localities": n_loc,
                              "repeats": repeats, "flow": dict(FFT_FLOW),
                              "counters": top_counters,
                              "reports": reports, "dominant": dominant})


# ---------------------------------------------------------------------------
# open-loop serving figures (not paper figures: the workload of
# docs/SERVING.md — offered-load sweeps with shedding as admission control)
# ---------------------------------------------------------------------------
#: the five Table-1 configuration *families* the serving workload sweeps:
#: LCI one-sided (psr), LCI two-sided (sr), improved MPI (± immediate)
#: and the original MPI parcelport — the FFT/overload comparison set
SERVE_CONFIGS = ["lci_psr_cq_pin_i", "lci_sr_cq_pin_i", "mpi", "mpi_i",
                 "mpi_orig"]

#: flow-control knobs for the serving runs: an 8-message credit window
#: with shallow shed-mode backlogs, so past saturation the stack rejects
#: excess requests (``ParcelShedError``) instead of queueing unboundedly
SERVE_FLOW = {"credit_window": 8, "max_backlog": 16,
              "max_queued_parcels": 64}

#: SLO-attainment threshold that defines the saturation knee
SERVE_SLO_TARGET = 0.9

#: offered-load ladders (K requests/s); chosen so every config family's
#: knee falls strictly inside the swept range (see docs/SERVING.md)
_SERVE_LOADS_QUICK = [25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0]
_SERVE_LOADS_FULL = [25.0, 50.0, 75.0, 100.0, 150.0, 200.0,
                     300.0, 400.0, 600.0]

#: the smoke's two operating points: comfortably below every knee, and
#: far enough past all of them that every family sheds
_SERVE_LIGHT_KPS = 50.0
_SERVE_HEAVY_KPS = 1600.0


def find_knee(loads: Sequence[float], attainments: Sequence[float],
              target: float = SERVE_SLO_TARGET) -> float:
    """The saturation knee: the largest offered load still meeting SLO.

    Returns the largest ``loads[i]`` with ``attainments[i] >= target``,
    or ``0.0`` when even the lightest point misses the target (the knee
    sits below the swept range).  A knee equal to ``loads[-1]`` means the
    sweep never saturated the config — both edge cases fail the
    knee-inside-sweep validation check.
    """
    knee = 0.0
    for load, att in zip(loads, attainments):
        if att >= target:
            knee = max(knee, load)
    return knee


def _serve_params(offered_kps: float, horizon_us: float):
    from .serve_bench import ServeBenchParams

    return ServeBenchParams(offered_kps=offered_kps, horizon_us=horizon_us,
                            **SERVE_FLOW)


def _serve_counters(d: Dict[str, float]) -> Dict[str, float]:
    """The per-operating-point counter line of the serve figures."""
    keys = ("goodput_kps", "slo_attainment", "p50_us", "p99_us", "p999_us",
            "shed_requests", "shed_responses", "deadline_misses")
    out = {k: d[k] for k in keys}
    out["parcels_shed"] = d.get("fault.parcels_shed", 0.0)
    out["credit_stalls"] = d.get("fault.credit_stalls", 0.0)
    return out


def _serve_breakdown(cfg: str, offered_kps: float, horizon_us: float,
                     seed: int) -> "tuple[Dict[str, float], str, str]":
    """Traced run of one serving point: SLO counters + critical path.

    Returns ``(counters, report, dominant)``: goodput/attainment/tail
    percentiles, shed and deadline-miss totals, flow-control engagement,
    and the share of delivered-parcel latency spent in the shed-mode
    backlog vs under the MPI progress lock vs in LCI polling.
    """
    from ..obs import analyze
    from .serve_bench import run_serve

    res = run_serve(cfg, _serve_params(offered_kps, horizon_us), seed=seed,
                    trace="parcel")
    rep = analyze(res.obs)
    shares = rep.shares()
    ctrs = _serve_counters(res.as_dict())
    ctrs.update({
        "backlog_pct": 100 * shares.get("backlog_wait", 0.0),
        "lock_wait_pct": 100 * shares.get("progress_lock_wait", 0.0),
        "poll_pct": 100 * shares.get("progress_poll", 0.0),
        "wire_pct": 100 * shares.get("wire", 0.0),
    })
    return ctrs, rep.render(), rep.dominant


def serve_smoke(quick: bool = True, repeats: Optional[int] = None
                ) -> FigureResult:
    """Open-loop serving at two operating points, below and past the knee.

    The quick CI smoke for the serving subsystem: each config family
    handles a light (100 K req/s) and a heavy (1600 K req/s) open-loop
    request stream under shed-mode flow control.  Light must meet the
    SLO outright; heavy must saturate — goodput collapses, the p99/p999
    tail inflects past the deadline, and shedding engages as admission
    control on every family.  The heavy point runs traced and reports
    the critical-path decomposition of delivered parcels.  Deterministic
    per seed, so ``repeats`` is accepted for CLI uniformity but a single
    seed is measured.
    """
    from .serve_bench import run_serve

    horizon = 2000.0 if quick else 4000.0
    seed = _seeds(1)[0]
    series: List[Series] = []
    counters: Dict[str, Dict[str, float]] = {}
    reports: Dict[str, str] = {}
    dominant: Dict[str, str] = {}
    for cfg in SERVE_CONFIGS:
        light = run_serve(cfg, _serve_params(_SERVE_LIGHT_KPS, horizon),
                          seed=seed).as_dict()
        heavy_ctrs, report, dom = _serve_breakdown(
            cfg, _SERVE_HEAVY_KPS, horizon, seed)
        s = Series(label=cfg)
        s.add(_SERVE_LIGHT_KPS, light["goodput_kps"])
        s.add(_SERVE_HEAVY_KPS, heavy_ctrs["goodput_kps"])
        series.append(s)
        counters[f"{cfg}@light"] = _serve_counters(light)
        counters[f"{cfg}@heavy"] = heavy_ctrs
        reports[cfg] = report
        dominant[cfg] = dom
    return FigureResult("serve_smoke",
                        "Open-loop serving below and past saturation "
                        "(shed-mode flow control)",
                        series, x_name="offered_kps", y_name="goodput K/s",
                        meta={"horizon_us": horizon,
                              "light_kps": _SERVE_LIGHT_KPS,
                              "heavy_kps": _SERVE_HEAVY_KPS,
                              "slo_target": SERVE_SLO_TARGET,
                              "flow": dict(SERVE_FLOW),
                              "counters": counters, "reports": reports,
                              "dominant": dominant})


def serve_sweep(quick: bool = True, repeats: Optional[int] = None
                ) -> FigureResult:
    """Offered-load sweep: locate each config family's saturation knee.

    Walks the offered-load ladder per config family and reports goodput
    (y), SLO attainment, and tail latency per point, then places each
    family's saturation knee (the largest load with attainment >=
    ``SERVE_SLO_TARGET``).  Past the knee the open-loop stream keeps
    arriving, so goodput falls off its peak while p99 inflects and the
    shed/deadline-miss counters engage — shedding as admission control.
    The meta carries the per-family knees (``meta["knees"]``), the full
    attainment/p99 curves, and the top-of-ladder counters the
    ``--validate`` checks assert against.
    """
    repeats = repeats or 1
    loads = _SERVE_LOADS_QUICK if quick else _SERVE_LOADS_FULL
    horizon = 2000.0 if quick else 4000.0
    seeds = _seeds(repeats)
    tasks = [serve_task(cfg, offered_kps=kps, horizon_us=horizon,
                        n_localities=4, platform=EXPANSE, seed=seed,
                        **SERVE_FLOW)
             for cfg in SERVE_CONFIGS for kps in loads for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    attainment: Dict[str, List[float]] = {}
    p99: Dict[str, List[float]] = {}
    knees: Dict[str, float] = {}
    top_counters: Dict[str, Dict[str, float]] = {}
    for cfg in SERVE_CONFIGS:
        s = Series(label=cfg)
        att: List[float] = []
        tail: List[float] = []
        for kps in loads:
            res = _fold([next(results) for _ in seeds])
            s.add(kps, res["goodput_kps"])
            att.append(res["slo_attainment"].mean)
            tail.append(res["p99_us"].mean)
            if kps == loads[-1]:
                top_counters[cfg] = _serve_counters(
                    {k: m.mean for k, m in res.items()})
        series.append(s)
        attainment[cfg] = att
        p99[cfg] = tail
        knees[cfg] = find_knee(loads, att)
    return FigureResult("serve_sweep",
                        "Open-loop serving: goodput vs offered load "
                        "(saturation knees per config family)",
                        series, x_name="offered_kps", y_name="goodput K/s",
                        meta={"loads": list(loads), "horizon_us": horizon,
                              "repeats": repeats,
                              "slo_target": SERVE_SLO_TARGET,
                              "flow": dict(SERVE_FLOW),
                              "knees": knees, "attainment": attainment,
                              "p99_us": p99, "counters": top_counters})


# ---------------------------------------------------------------------------
# adaptive-policy smoke (not a paper figure: exercises repro.adapt)
# ---------------------------------------------------------------------------
def adapt_smoke(quick: bool = True,
                repeats: Optional[int] = None) -> FigureResult:
    """Message rate with the adaptive controller on vs off (8 B).

    Runs the aggregated ``lci_psr_cq_pin`` config plain and with the
    tuned aggregation-hold adaptive spec (``docs/TUNING.md``), proving
    (a) the controller engages (tick/retune counters in the meta) and
    (b) adaptation helps rather than hurts at saturation.
    """
    from ..adapt import AdaptiveSpec
    repeats = repeats or 1
    total = 2000 if quick else 8000
    cfg = "lci_psr_cq_pin"
    spec = AdaptiveSpec(agg_hold_init=1024, agg_hold_max=16384)
    rates = [400.0, None]
    seeds = _seeds(repeats)
    variants = [(cfg, None), (f"{cfg}+adapt", spec.as_dict())]
    tasks = [message_rate_task(cfg, msg_size=8, batch=100, total_msgs=total,
                               inject_rate_kps=rate, platform=EXPANSE,
                               seed=seed, adapt=adapt)
             for _label, adapt in variants for rate in rates
             for seed in seeds]
    results = iter(run_points(tasks))
    series = []
    counters: Dict[str, Dict[str, float]] = {}
    for label, adapt in variants:
        s = Series(label=label)
        for _rate in rates:
            res = _fold([next(results) for _ in seeds])
            s.add(res["achieved_injection_kps"].mean,
                  res["message_rate_kps"])
        if adapt is not None:
            # The unlimited-rate point's controller counters.
            counters[label] = {k[len("adapt."):]: m.mean
                               for k, m in res.items()
                               if k.startswith("adapt.")}
        series.append(s)
    return FigureResult("adapt_smoke",
                        "Message rate with adaptive policies (8B)",
                        series, x_name="achieved K/s", y_name="rate K/s",
                        meta={"total": total, "repeats": repeats,
                              "adapt": spec.as_dict(),
                              "counters": counters})


#: registry for the CLI
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5,
    "fig6": fig6, "fig7": fig7, "fig8": fig8, "fig9": fig9,
    "fig10": fig10, "fig11": fig11,
    "ablation_mpi_pp": ablation_mpi_pp,
    "ablation_aggregation": ablation_aggregation,
    "fault_smoke": fault_smoke,
    "overload_smoke": overload_smoke,
    "trace_smoke": trace_smoke,
    "fft_smoke": fft_smoke,
    "fft_sweep": fft_sweep,
    "serve_smoke": serve_smoke,
    "serve_sweep": serve_sweep,
    "adapt_smoke": adapt_smoke,
}
