"""Executable shape targets: does a regenerated figure match the paper?

EXPERIMENTS.md states, per figure, which orderings and directions must
hold; this module encodes them as data so they can be evaluated anywhere
(`repro-fig fig4 --validate`, notebooks, CI) rather than hand-coded in
each benchmark.

A check is a named predicate over a :class:`~repro.bench.figures.
FigureResult`; :func:`validate` returns structured outcomes, never
raising — reporting belongs to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .figures import SERVE_CONFIGS, FigureResult

__all__ = ["CheckResult", "validate", "checks_for", "CHECKS"]


@dataclass
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


Check = Callable[[FigureResult], CheckResult]


def _ratio_check(name: str, a: str, b: str, at_least: float,
                 where: str = "peak") -> Check:
    """series[a] / series[b] >= at_least (peak or final point)."""

    def check(result: FigureResult) -> CheckResult:
        sa, sb = result.by_label(a), result.by_label(b)
        va = sa.peak if where == "peak" else sa.ys[-1]
        vb = sb.peak if where == "peak" else sb.ys[-1]
        ratio = va / vb if vb else float("inf")
        return CheckResult(
            name, ratio >= at_least,
            f"{a}/{b} {where} = {ratio:.2f}x (need >= {at_least}x)")

    return check


def _latency_below(name: str, a: str, b: str) -> Check:
    """series[a] <= series[b] at every shared x (latency figures)."""

    def check(result: FigureResult) -> CheckResult:
        sa, sb = result.by_label(a), result.by_label(b)
        bad = [x for x in sa.xs if sa.y_at(x) > sb.y_at(x) * 1.05]
        return CheckResult(
            name, not bad,
            f"{a} <= {b} everywhere" if not bad
            else f"{a} above {b} at x={bad}")

    return check


def _monotone_rising(name: str, label: str) -> Check:
    def check(result: FigureResult) -> CheckResult:
        s = result.by_label(label)
        ok = all(b >= a * 0.999 for a, b in zip(s.ys, s.ys[1:]))
        return CheckResult(name, ok,
                           f"{label} non-decreasing" if ok
                           else f"{label} dips: {s.ys}")
    return check


def _declines_from_peak(name: str, label: str, below: float) -> Check:
    """The final point sits below ``below`` x the series peak."""

    def check(result: FigureResult) -> CheckResult:
        s = result.by_label(label)
        frac = s.ys[-1] / s.peak if s.peak else 1.0
        return CheckResult(
            name, frac < below,
            f"{label} final/peak = {frac:.2f} (need < {below})")

    return check


def _gap_grows(name: str, a: str, b: str) -> Check:
    """a/b at the last x exceeds a/b at the first x."""

    def check(result: FigureResult) -> CheckResult:
        sa, sb = result.by_label(a), result.by_label(b)
        lo = sa.ys[0] / sb.ys[0] if sb.ys[0] else 0.0
        hi = sa.ys[-1] / sb.ys[-1] if sb.ys[-1] else 0.0
        return CheckResult(name, hi > lo,
                           f"{a}/{b}: {lo:.2f} -> {hi:.2f}")

    return check


def _counter_positive(name: str, key: str, configs: "List[str] | None" = None
                      ) -> Check:
    """``meta["counters"][cfg][key] > 0`` for every listed config."""

    def check(result: FigureResult) -> CheckResult:
        counters = result.meta.get("counters") or {}
        who = configs if configs is not None else sorted(counters)
        if not who:
            return CheckResult(name, False, "no counters in meta")
        vals = {c: counters.get(c, {}).get(key, 0.0) for c in who}
        bad = [c for c, v in vals.items() if not v > 0]
        return CheckResult(
            name, not bad,
            f"{key} > 0 for all of {who}" if not bad
            else f"{key} not engaged for {bad}: {vals}")

    return check


def _counter_below(name: str, key: str, limit: float,
                   configs: "List[str] | None" = None) -> Check:
    """``meta["counters"][cfg][key] < limit`` for every listed config."""

    def check(result: FigureResult) -> CheckResult:
        counters = result.meta.get("counters") or {}
        who = configs if configs is not None else sorted(counters)
        if not who:
            return CheckResult(name, False, "no counters in meta")
        vals = {c: counters.get(c, {}).get(key, float("inf")) for c in who}
        bad = [c for c, v in vals.items() if not v < limit]
        return CheckResult(
            name, not bad,
            f"{key} < {limit:g} for all of {who}" if not bad
            else f"{key} >= {limit:g} for {bad}: {vals}")

    return check


def _counter_at_least(name: str, key: str, floor: float,
                      configs: "List[str] | None" = None) -> Check:
    """``meta["counters"][cfg][key] >= floor`` for every listed config."""

    def check(result: FigureResult) -> CheckResult:
        counters = result.meta.get("counters") or {}
        who = configs if configs is not None else sorted(counters)
        if not who:
            return CheckResult(name, False, "no counters in meta")
        vals = {c: counters.get(c, {}).get(key, 0.0) for c in who}
        bad = [c for c, v in vals.items() if not v >= floor]
        return CheckResult(
            name, not bad,
            f"{key} >= {floor:g} for all of {who}" if not bad
            else f"{key} < {floor:g} for {bad}: {vals}")

    return check


def _knee_inside_sweep(name: str) -> Check:
    """Every family's saturation knee sits strictly inside the ladder.

    ``meta["knees"][cfg] == 0`` means the family was saturated below the
    lightest load; a knee at the heaviest load means the sweep never
    saturated it — either way the sweep failed to *locate* the knee.
    """

    def check(result: FigureResult) -> CheckResult:
        knees = result.meta.get("knees") or {}
        loads = result.meta.get("loads") or []
        if not knees or not loads:
            return CheckResult(name, False, "no knees/loads in meta")
        bad = {c: k for c, k in knees.items()
               if not loads[0] <= k < loads[-1]}
        return CheckResult(
            name, not bad,
            f"all knees inside [{loads[0]:g}, {loads[-1]:g}): {knees}"
            if not bad else f"knees outside sweep: {bad} (all: {knees})")

    return check


def _knee_ordering(name: str, pairs: "List[tuple[str, str]]") -> Check:
    """``knee[a] > knee[b]`` for every ``(a, b)`` pair."""

    def check(result: FigureResult) -> CheckResult:
        knees = result.meta.get("knees") or {}
        if not knees:
            return CheckResult(name, False, "no knees in meta")
        bad = [f"{a}({knees.get(a, 0.0):g}) <= {b}({knees.get(b, 0.0):g})"
               for a, b in pairs
               if not knees.get(a, 0.0) > knees.get(b, 0.0)]
        return CheckResult(
            name, not bad,
            f"knee ordering holds: {knees}" if not bad
            else "; ".join(bad))

    return check


def _p99_inflects(name: str, factor: float) -> Check:
    """p99 at the top of the ladder >= factor x p99 at the bottom."""

    def check(result: FigureResult) -> CheckResult:
        p99 = result.meta.get("p99_us") or {}
        if not p99:
            return CheckResult(name, False, "no p99_us in meta")
        ratios = {c: (ys[-1] / ys[0] if ys[0] else float("inf"))
                  for c, ys in p99.items()}
        bad = [c for c, r in ratios.items() if not r >= factor]
        return CheckResult(
            name, not bad,
            f"p99 inflates >= {factor:g}x for all: "
            + ", ".join(f"{c}={r:.1f}x" for c, r in sorted(ratios.items()))
            if not bad else f"p99 flat for {bad}: {ratios}")

    return check


#: per-figure shape targets (mirrors EXPERIMENTS.md)
CHECKS: Dict[str, List[Check]] = {
    "fig1": [
        _ratio_check("lci_best_beats_mpi", "lci_psr_cq_pin_i", "mpi", 1.5),
        _ratio_check("lci_best_beats_mpi_i", "lci_psr_cq_pin_i", "mpi_i",
                     2.0),
        _ratio_check("immediate_beats_aggregated_lci", "lci_psr_cq_pin_i",
                     "lci_psr_cq_pin", 1.3),
    ],
    "fig2": [
        _ratio_check("pin_beats_mt", "lci_psr_cq_pin_i",
                     "lci_psr_cq_mt_i", 2.0),
        _ratio_check("put_beats_sendrecv", "lci_psr_cq_pin_i",
                     "lci_sr_cq_pin_i", 1.3),
    ],
    "fig4": [
        _ratio_check("lci_beats_mpi_16k", "lci_psr_cq_pin_i", "mpi",
                     1.5, where="final"),
        _declines_from_peak("mpi_declines", "mpi", 0.8),
        _declines_from_peak("mpi_i_declines", "mpi_i", 0.8),
    ],
    "fig5": [
        _ratio_check("pin_beats_mt_16k", "lci_psr_cq_pin_i",
                     "lci_psr_cq_mt_i", 1.1),
    ],
    "fig7": [
        _latency_below("lci_always_fastest", "lci_psr_cq_pin_i", "mpi_i"),
        _latency_below("lci_below_mpi", "lci_psr_cq_pin_i", "mpi"),
        _latency_below("immediate_helps", "lci_psr_cq_pin_i",
                       "lci_psr_cq_pin"),
    ],
    "fig8": [
        _monotone_rising("latency_grows_lci", "lci_psr_cq_pin_i"),
        _monotone_rising("latency_grows_mpi_i", "mpi_i"),
        _gap_grows("mpi_i_degrades_faster", "mpi_i", "lci_psr_cq_pin_i"),
    ],
    "fig9": [
        _monotone_rising("latency_grows_lci", "lci_psr_cq_pin_i"),
        _gap_grows("mpi_i_degrades_faster", "mpi_i", "lci_psr_cq_pin_i"),
    ],
    "fig10": [
        _monotone_rising("lci_scales", "lci"),
        _gap_grows("speedup_vs_mpi_grows", "lci", "mpi"),
        _ratio_check("mpi_i_collapse", "lci", "mpi_i", 2.0, where="final"),
    ],
    "fig11": [
        _monotone_rising("lci_scales", "lci"),
        _monotone_rising("no_mpi_i_collapse_on_rostam", "mpi_i"),
    ],
    # collectives workload: the incast must engage flow control and the
    # LCI designs must beat the MPI parcelports on the transpose
    "fft_smoke": [
        _ratio_check("lci_beats_mpi", "lci_psr_cq_pin_i", "mpi", 1.2),
        _ratio_check("lci_beats_mpi_i", "lci_psr_cq_pin_i", "mpi_i", 1.2),
        # aggregated mpi coalesces the smoke-size fan-in under the
        # window, so only the immediate-mode configs are required here
        _counter_positive("incast_engages_credits", "credit_stalls",
                          ["lci_psr_cq_pin_i", "lci_sr_cq_pin_i",
                           "mpi_i"]),
    ],
    "fft_sweep": [
        _ratio_check("lci_beats_mpi_i_at_top", "lci_psr_cq_pin_i",
                     "mpi_i", 1.2, where="final"),
        _ratio_check("lci_beats_mpi_orig_at_top", "lci_psr_cq_pin_i",
                     "mpi_orig", 1.2, where="final"),
        _monotone_rising("throughput_grows_lci", "lci_psr_cq_pin_i"),
        _counter_positive("incast_engages_credits_at_top",
                          "credit_stalls"),
        _counter_positive("incast_defers_sends_at_top", "puts_deferred",
                          ["lci_psr_cq_pin_i", "mpi_i"]),
    ],
    # serving workload: below the knee every family meets the SLO; past
    # it goodput collapses, the tail blows through the deadline, and the
    # shed-mode flow control rejects the excess (admission control)
    "serve_smoke": [
        _counter_at_least("light_meets_slo", "slo_attainment", 0.99,
                          [f"{c}@light" for c in SERVE_CONFIGS]),
        _counter_below("heavy_saturates", "slo_attainment", 0.5,
                       [f"{c}@heavy" for c in SERVE_CONFIGS]),
        _counter_positive("heavy_sheds_requests", "shed_requests",
                          [f"{c}@heavy" for c in SERVE_CONFIGS]),
        _counter_positive("heavy_misses_deadlines", "deadline_misses",
                          [f"{c}@heavy" for c in SERVE_CONFIGS]),
        _counter_positive("heavy_engages_credits", "credit_stalls",
                          [f"{c}@heavy" for c in SERVE_CONFIGS]),
    ],
    "serve_sweep": [
        _knee_inside_sweep("knee_located_per_family"),
        _knee_ordering("lci_knees_above_mpi",
                       [("lci_psr_cq_pin_i", "mpi"),
                        ("lci_psr_cq_pin_i", "mpi_i"),
                        ("lci_psr_cq_pin_i", "mpi_orig"),
                        ("lci_sr_cq_pin_i", "mpi"),
                        ("lci_sr_cq_pin_i", "mpi_i"),
                        ("lci_sr_cq_pin_i", "mpi_orig")]),
        _p99_inflects("p99_inflects_past_knee", 3.0),
        # goodput falls off its peak once the open-loop stream overruns
        # the knee — the throughput-plateau half of the knee signature
        _declines_from_peak("goodput_off_peak_lci_psr",
                            "lci_psr_cq_pin_i", 0.95),
        _declines_from_peak("goodput_off_peak_mpi", "mpi", 0.95),
        _declines_from_peak("goodput_off_peak_mpi_orig", "mpi_orig", 0.95),
        # admission control engages at the top of the ladder: the
        # aggregated MPI parcelports coalesce under the parcel-queue
        # bound at these loads, so request shedding is required of the
        # immediate-mode configs and deadline misses of every family
        _counter_positive("top_sheds_requests", "shed_requests",
                          ["lci_psr_cq_pin_i", "lci_sr_cq_pin_i",
                           "mpi_i"]),
        _counter_positive("top_misses_deadlines", "deadline_misses"),
        _counter_positive("top_engages_credits", "credit_stalls"),
    ],
    "adapt_smoke": [
        # the controller actually ran (ticks) and moved knobs (retunes)
        _counter_positive("controller_ticks", "ticks",
                          ["lci_psr_cq_pin+adapt"]),
        _counter_positive("controller_retunes", "retunes",
                          ["lci_psr_cq_pin+adapt"]),
        # adaptation must not hurt the config it rides on
        _ratio_check("adaptation_not_harmful", "lci_psr_cq_pin+adapt",
                     "lci_psr_cq_pin", 0.95),
    ],
}


def checks_for(figure: str) -> List[Check]:
    return CHECKS.get(figure, [])


def validate(result: FigureResult) -> List[CheckResult]:
    """Run all registered shape checks for ``result``'s figure."""
    out = []
    for check in checks_for(result.figure):
        try:
            out.append(check(result))
        except KeyError as e:
            out.append(CheckResult(getattr(check, "__name__", "check"),
                                   False, f"missing series: {e}"))
    return out
