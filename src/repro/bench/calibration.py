"""Calibration self-check: do the tuned constants still hit their anchors?

DESIGN.md §4's cost constants were calibrated against a handful of anchor
measurements (the paper-shape targets).  Anyone touching
:class:`~repro.hpx_rt.platform.CostModel`, :class:`~repro.mpi_sim.params.
MpiParams` or :class:`~repro.lci_sim.params.LciParams` should re-run
:func:`check_calibration` — it reruns fast probes of each anchor and
reports which bands still hold.

The bands are deliberately wide (the anchors are order-of-magnitude and
ordering constraints, not exact values); a failure means a *shape* from
the paper is at risk, not that a number moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .latency import LatencyParams, run_latency
from .message_rate import MessageRateParams, run_message_rate

__all__ = ["Anchor", "ANCHORS", "check_calibration", "format_calibration"]


@dataclass
class Anchor:
    """One calibration target: a measurement and its acceptable band."""

    name: str
    description: str
    measure: Callable[[], float]
    lo: float
    hi: float

    def check(self) -> Tuple[bool, float]:
        value = self.measure()
        return (self.lo <= value <= self.hi), value


def _rate(config: str, size: int = 8, total: int = 2000,
          batch: int = 100) -> float:
    params = MessageRateParams(msg_size=size, batch=batch,
                               total_msgs=total, inject_rate_kps=None,
                               max_events=30_000_000)
    return run_message_rate(config, params).message_rate_kps


def _latency(config: str, size: int = 8) -> float:
    params = LatencyParams(msg_size=size, window=1, steps=15)
    return run_latency(config, params).one_way_latency_us


def _anchors() -> List[Anchor]:
    return [
        Anchor("lci_peak_8b",
               "best LCI 8B rate lands near the paper's ~750 K/s",
               lambda: _rate("lci_psr_cq_pin_i"), 500.0, 1300.0),
        Anchor("mt_band_8b",
               "worker-progress variants near the paper's ~285 K/s",
               lambda: _rate("lci_psr_cq_mt_i"), 150.0, 450.0),
        Anchor("no_immediate_band_8b",
               "aggregation-path ceiling near the paper's ~400 K/s",
               lambda: _rate("lci_psr_cq_pin"), 280.0, 700.0),
        Anchor("pin_over_mt_ratio",
               "dedicated progress thread gap in the paper's 2-3.5x",
               lambda: _rate("lci_psr_cq_pin_i")
               / _rate("lci_psr_cq_mt_i"), 1.8, 4.5),
        Anchor("lci_over_mpi_i_8b",
               "LCI clearly out-rates mpi_i at 8B",
               lambda: _rate("lci_psr_cq_pin_i") / _rate("mpi_i"),
               2.0, 30.0),
        Anchor("lci_16k_band",
               "16 KiB LCI rate near the paper's ~200 K/s",
               lambda: _rate("lci_psr_cq_pin_i", size=16384, total=500,
                             batch=10), 120.0, 400.0),
        Anchor("small_latency_band",
               "8B one-way latency in the low single-digit us",
               lambda: _latency("lci_psr_cq_pin_i"), 2.0, 8.0),
        Anchor("mpi_i_small_latency_close",
               "mpi_i within ~1.5x of LCI below 1KB (paper: 1.3x)",
               lambda: _latency("mpi_i") / _latency("lci_psr_cq_pin_i"),
               0.95, 1.8),
        Anchor("mpi_i_large_latency_worse",
               "mpi_i clearly worse for 64 KiB (paper: 3-5x)",
               lambda: _latency("mpi_i", size=65536)
               / _latency("lci_psr_cq_pin_i", size=65536), 1.2, 8.0),
    ]


#: name -> anchor, built lazily so importing this module costs nothing
ANCHORS: Dict[str, Anchor] = {}


def check_calibration(names: Optional[List[str]] = None
                      ) -> Dict[str, Tuple[bool, float, Anchor]]:
    """Run (a subset of) the anchors; returns name -> (ok, value, anchor)."""
    if not ANCHORS:
        for a in _anchors():
            ANCHORS[a.name] = a
    selected = names if names is not None else list(ANCHORS)
    out: Dict[str, Tuple[bool, float, Anchor]] = {}
    for name in selected:
        anchor = ANCHORS[name]
        ok, value = anchor.check()
        out[name] = (ok, value, anchor)
    return out


def format_calibration(results: Dict[str, Tuple[bool, float, "Anchor"]]
                       ) -> str:
    lines = []
    for name, (ok, value, anchor) in results.items():
        mark = "PASS" if ok else "FAIL"
        lines.append(f"[{mark}] {name}: {value:.2f} "
                     f"(band {anchor.lo:g}..{anchor.hi:g}) — "
                     f"{anchor.description}")
    return "\n".join(lines)
