"""Distributed-FFT benchmark wrapper: the incast workload for the bench layer.

Runs :class:`~repro.apps.fft.FftDriver` on a fresh runtime per point and
flattens the result into the primitive metric dict the sweep engine /
figure drivers consume.  A :class:`~repro.flow.FlowControlPolicy` (with
the reliability layer it rides on) can be switched on per point — that
is what lets the incast sweep show credit stalls and deferred sends at
the top of the size ladder — and ``trace=`` produces the span recorder
the critical-path breakdown is computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..apps.fft import COMPLEX_BYTES, FftConfig, FftDriver
from ..faults import FaultPlan, RetryPolicy
from ..flow import FlowControlPolicy
from ..hpx_rt.platform import EXPANSE, PlatformSpec
from ..parcelport import PPConfig
from .. import make_runtime

__all__ = ["FftBenchParams", "FftBenchResult", "run_fft"]


@dataclass(frozen=True)
class FftBenchParams:
    """One FFT sweep point (quick defaults; see docs/COLLECTIVES.md)."""

    n1: int = 16
    n2: int = 16
    n_localities: int = 4
    iterations: int = 1
    #: per-row-segment messages (the realistic, backlog-deepening mode)
    fragment: bool = True
    platform: PlatformSpec = EXPANSE
    #: >0 switches on credit-based flow control (plus the reliability
    #: layer whose acks carry the credits) with this per-peer window
    credit_window: int = 0
    #: sender backlog bound when flow control is on (0 = unbounded)
    max_backlog: int = 0
    max_events: int = 20_000_000

    def with_(self, **kw) -> "FftBenchParams":
        return replace(self, **kw)

    def flow_policy(self) -> Optional[FlowControlPolicy]:
        if self.credit_window <= 0:
            return None
        return FlowControlPolicy(credit_window=self.credit_window,
                                 max_backlog=self.max_backlog)

    @property
    def transpose_msg_bytes(self) -> int:
        """Wire size of one transpose message at this point."""
        seg = COMPLEX_BYTES * (self.n2 // self.n_localities)
        if self.fragment:
            return seg
        return seg * (self.n1 // self.n_localities)


@dataclass
class FftBenchResult:
    config: str
    params: FftBenchParams
    phase_times_us: Dict[str, float]      #: summed over iterations
    total_time_us: float
    points_per_second: float
    checksum: complex
    #: merged fault/flow counters (empty without faults or flow control)
    faults: Dict[str, int] = field(default_factory=dict)
    #: the run's SpanRecorder when tracing was requested (else None);
    #: excluded from :meth:`as_dict` so traced runs report identically
    obs: Any = None
    metrics: Any = None
    #: AdaptiveController summary (empty without adaptation)
    adapt: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        out = {
            "points_per_second": self.points_per_second,
            "total_time_us": self.total_time_us,
            "row_fft1_us": self.phase_times_us["row_fft1"],
            "transpose_us": self.phase_times_us["transpose"],
            "row_fft2_us": self.phase_times_us["row_fft2"],
        }
        if self.faults:
            for k, v in sorted(self.faults.items()):
                out[f"fault.{k}"] = float(v)
        for k, v in sorted(self.adapt.items()):
            out[f"adapt.{k}"] = float(v)
        return out


def run_fft(config: "PPConfig | str", params: FftBenchParams,
            seed: int = 0xC0FFEE,
            fault_plan: Optional[FaultPlan] = None,
            retry_policy: Optional[RetryPolicy] = None,
            trace: "str | bool | None" = None,
            adapt: Any = None) -> FftBenchResult:
    """One full distributed-FFT run for one configuration."""
    if isinstance(config, str):
        config = PPConfig.parse(config)
    p = params
    flow = p.flow_policy()
    kw: Dict[str, Any] = {}
    if flow is not None:
        # credits ride on the reliability layer's end-to-end acks
        kw["reliable"] = True
    if adapt is not None:
        kw["adapt"] = adapt
    rt = make_runtime(config, platform=p.platform,
                      n_localities=p.n_localities, seed=seed,
                      fault_plan=fault_plan, retry_policy=retry_policy,
                      flow_policy=flow, trace=trace, **kw)
    driver = FftDriver(rt, FftConfig(n1=p.n1, n2=p.n2,
                                     iterations=p.iterations,
                                     fragment=p.fragment))
    res = driver.run(max_events=p.max_events)
    phase_sums = {k: sum(v) for k, v in res.phase_times_us.items()}
    return FftBenchResult(
        config=config.label, params=p,
        phase_times_us=phase_sums,
        total_time_us=res.total_time_us,
        points_per_second=res.points_per_second,
        checksum=res.checksum,
        faults=rt.fault_summary()
        if (fault_plan is not None or flow is not None) else {},
        obs=rt.obs,
        metrics=rt.metrics() if rt.obs is not None else None,
        adapt=rt.adapt.summary() if rt.adapt is not None else {})
