"""Pure-Python Fourier kernels for the distributed-FFT mini-app.

Everything here is deterministic floating point with a fixed operation
order: two runs (any parcelport configuration, any seed for the network
side) produce *bit-identical* complex values, which is what the test
battery asserts when it compares the distributed pipeline across
configurations.  ``naive_dft`` is the O(n²) reference the property
tests check the fast path against.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence

__all__ = ["naive_dft", "fft", "twiddle", "is_pow2"]


def is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def twiddle(n: int, exponent: int) -> complex:
    """``exp(-2πi · exponent / n)`` — the DFT root-of-unity power."""
    return cmath.exp(-2j * math.pi * (exponent % n) / n)


def naive_dft(xs: Sequence[complex]) -> List[complex]:
    """Textbook O(n²) DFT: ``X[k] = Σ_j x[j]·W_n^{jk}`` — the oracle."""
    n = len(xs)
    return [sum(xs[j] * twiddle(n, j * k) for j in range(n))
            for k in range(n)]


def fft(xs: Sequence[complex]) -> List[complex]:
    """Iterative radix-2 Cooley-Tukey FFT (decimation in time).

    Requires ``len(xs)`` to be a power of two.  Fixed butterfly order —
    no data-dependent branching — so results are reproducible to the
    bit across runs and platforms.
    """
    n = len(xs)
    if not is_pow2(n):
        raise ValueError(f"fft length must be a power of 2, got {n}")
    out = list(xs)
    # bit-reversal permutation
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            out[i], out[j] = out[j], out[i]
    # butterflies
    length = 2
    while length <= n:
        ang = -2.0 * math.pi / length
        wlen = complex(math.cos(ang), math.sin(ang))
        half = length // 2
        for start in range(0, n, length):
            w = 1.0 + 0.0j
            for k in range(start, start + half):
                u = out[k]
                v = out[k + half] * w
                out[k] = u + v
                out[k + half] = u - v
                w *= wlen
        length <<= 1
    return out
