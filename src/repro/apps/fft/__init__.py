"""Distributed-FFT mini-app: the all-to-all incast workload (see
docs/COLLECTIVES.md and the HPX FFT benchmark, arXiv 2504.03657)."""

from .dft import fft, is_pow2, naive_dft, twiddle
from .driver import COMPLEX_BYTES, FftConfig, FftDriver, FftResult

__all__ = ["fft", "naive_dft", "twiddle", "is_pow2",
           "FftConfig", "FftDriver", "FftResult", "COMPLEX_BYTES"]
