"""Distributed 1-D FFT mini-app: row FFTs → all-to-all transpose → row FFTs.

The second application workload (after Octo-Tiger), modelled on the HPX
distributed-FFT benchmark that PAPERS.md points at (arXiv 2504.03657):
where Octo-Tiger's ghost-zone exchange is a *neighbour* pattern, the
FFT's transpose step is a full **all-to-all** — every locality ships a
block to every other locality at the same instant, so every receiver
sees a simultaneous ``P-1``-way incast.  That stresses receiver-side
progress engines, packet pools and credit windows in exactly the regime
the paper's aggregation / flow-control analysis cares about.

Algorithm (the classic four-step / transpose FFT, ``N = n1·n2``)::

    A[j1][j2] = x[j1 + n1·j2]            # rows j1 block-distributed
    Y[j1]     = FFT_n2(A[j1])            # phase 1: local row FFTs
    Z[j1][k2] = Y[j1][k2] · W_N^{j1·k2}  #          twiddle scaling
    Zt        = all_to_all transpose      # phase 2: the incast
    B[k2]     = FFT_n1(Zt[k2])           # phase 3: local row FFTs
    X[k2 + n2·k1] = B[k2][k1]            # natural-order output

All floating-point work has a fixed operation order, so the output is
bit-identical across runs, locality counts **and parcelport
configurations** — the property the test battery leans on.  Every
network byte moves through :class:`~repro.hpx_rt.collectives.
Collectives` (barriers delimit the timed phases; the transpose is
``all_to_all``; a final ``allreduce`` checksums the result), so the
whole workload rides the parcelport under study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...hpx_rt.collectives import Collectives
from ...hpx_rt.future import Latch
from ...hpx_rt.runtime import HpxRuntime
from .dft import fft, is_pow2, twiddle

__all__ = ["FftConfig", "FftResult", "FftDriver", "COMPLEX_BYTES"]

#: wire size of one complex sample (two float64)
COMPLEX_BYTES = 16

#: phase keys, in causal order
PHASES = ("row_fft1", "transpose", "row_fft2")


@dataclass(frozen=True)
class FftConfig:
    """Problem shape + cost knobs for one distributed FFT."""

    n1: int = 16              #: first matrix dimension (power of 2)
    n2: int = 16              #: second matrix dimension (power of 2)
    iterations: int = 1       #: back-to-back FFTs (op_ids are reused)
    #: ship each row segment as its own message (True, like real FFT
    #: transposes — deepens per-peer backlogs) or one block per peer
    fragment: bool = True
    #: simulated compute cost per butterfly point (µs, thread-weighted)
    flop_us_per_point: float = 0.02

    @property
    def n_points(self) -> int:
        return self.n1 * self.n2

    def validate(self, n_localities: int) -> None:
        if not (is_pow2(self.n1) and is_pow2(self.n2)):
            raise ValueError(f"n1/n2 must be powers of 2, got "
                             f"{self.n1}x{self.n2}")
        if self.n1 % n_localities or self.n2 % n_localities:
            raise ValueError(
                f"{self.n1}x{self.n2} not divisible across "
                f"{n_localities} localities")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")


@dataclass
class FftResult:
    """Outcome of one distributed FFT run."""

    config: FftConfig
    n_localities: int
    #: final-iteration spectrum in natural order (X[k], k = 0..N-1)
    output: List[complex]
    #: allreduce checksum of the spectrum (same on every locality)
    checksum: complex
    #: per-iteration phase durations, µs (keys: row_fft1/transpose/row_fft2)
    phase_times_us: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def total_time_us(self) -> float:
        return sum(sum(v) for v in self.phase_times_us.values())

    @property
    def transpose_time_us(self) -> float:
        return sum(self.phase_times_us.get("transpose", ()))

    @property
    def points_per_second(self) -> float:
        """Throughput over virtual time: FFT points per second."""
        t_s = self.total_time_us * 1e-6
        n = self.config.n_points * self.config.iterations
        return n / t_s if t_s > 0 else 0.0


class FftDriver:
    """Registers the collective actions and runs the stepped pipeline."""

    def __init__(self, runtime: HpxRuntime,
                 config: Optional[FftConfig] = None):
        self.rt = runtime
        self.cfg = config or FftConfig()
        self.p = len(runtime.localities)
        self.cfg.validate(self.p)
        self.coll = Collectives(runtime, prefix="fft")
        self.r1 = self.cfg.n1 // self.p   #: rows per locality, phase 1
        self.r2 = self.cfg.n2 // self.p   #: rows per locality, phase 3
        self._input = self._make_input()
        #: (iteration, phase-mark) -> lid -> timestamp
        self._marks: Dict[tuple, Dict[int, float]] = {}
        #: lid -> list of (k2, FFT_n1 row) for the final iteration
        self._out: Dict[int, List[tuple]] = {}
        self._checksum: Dict[int, complex] = {}
        self._latch: Optional[Latch] = None
        ctx = runtime.shard_ctx
        if ctx is not None and ctx.n_shards > 1:
            ctx.register_contrib("fft.state", self._collect_state,
                                 self._absorb_state)

    def _collect_state(self):
        return (self._out, self._checksum, self._marks)

    def _absorb_state(self, snap) -> None:
        out, checksums, marks = snap
        self._out.update(out)
        self._checksum.update(checksums)
        for key, per_lid in marks.items():
            self._marks.setdefault(key, {}).update(per_lid)

    # ------------------------------------------------------------------
    # deterministic input (depends on the runtime seed, nothing else)
    # ------------------------------------------------------------------
    def _make_input(self) -> List[complex]:
        rng = self.rt.rng.stream("fft.input")
        n = self.cfg.n_points
        re = rng.uniform(-1.0, 1.0, n)
        im = rng.uniform(-1.0, 1.0, n)
        return [complex(float(a), float(b)) for a, b in zip(re, im)]

    @property
    def input(self) -> List[complex]:
        return list(self._input)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> FftResult:
        # Under the sharded engine each shard runs (and latches on) only
        # the localities it owns; _out/_checksum/_marks are distributed
        # and flow to the root shard as contributions at the collective
        # stop, so _assemble sees the full sequential state.
        mine = [lid for lid in range(self.p) if self.rt.shard_owns(lid)]
        self._latch = Latch(self.rt.sim, len(mine))
        for lid in mine:
            self.rt.locality(lid).spawn(self._make_task(lid),
                                        name=f"fft_L{lid}")
        self.rt.run_until(self._latch, max_events=max_events,
                          shard_mode="all")
        if not self._latch.open:
            raise RuntimeError("FFT run did not complete (event budget "
                               "exhausted or messages permanently lost)")
        return self._assemble()

    # ------------------------------------------------------------------
    # per-locality pipeline
    # ------------------------------------------------------------------
    def _mark(self, it: int, tag: str, lid: int) -> None:
        self._marks.setdefault((it, tag), {})[lid] = self.rt.sim.now

    def _make_task(self, lid: int):
        cfg = self.cfg

        def task(worker):
            for it in range(cfg.iterations):
                yield from self.coll.barrier(worker, "fft_start")
                self._mark(it, "t0", lid)
                z_rows = yield from self._row_fft1(worker, lid)
                self._mark(it, "t1", lid)
                got = yield from self.coll.all_to_all(
                    worker, "fft_transpose", self._chunks(z_rows),
                    size=COMPLEX_BYTES * (self.r2 if cfg.fragment
                                          else self.r1 * self.r2),
                    fragment=cfg.fragment)
                self._mark(it, "t2", lid)
                out = yield from self._row_fft2(worker, lid, got)
                self._mark(it, "t3", lid)
                if it == cfg.iterations - 1:
                    self._out[lid] = out
            local_sum = sum(row[k1] for _, row in self._out[lid]
                            for k1 in range(cfg.n1))
            total = yield from self.coll.allreduce(
                worker, "fft_checksum", local_sum, op="sum", size=16)
            self._checksum[lid] = total
            self._latch.count_down()

        return task

    def _row_cost(self, m: int) -> float:
        return self.cfg.flop_us_per_point * m * max(1.0, math.log2(m))

    def _row_fft1(self, worker, lid: int):
        """Phase 1: FFT + twiddle over this locality's ``r1`` rows."""
        cfg, n1, n2 = self.cfg, self.cfg.n1, self.cfg.n2
        x, big_n = self._input, self.cfg.n_points
        z_rows: List[List[complex]] = []
        for j1 in range(lid * self.r1, (lid + 1) * self.r1):
            yield from worker.compute_granular(self._row_cost(n2))
            y = fft([x[j1 + n1 * j2] for j2 in range(n2)])
            z_rows.append([y[k2] * twiddle(big_n, j1 * k2)
                           for k2 in range(n2)])
        return z_rows

    def _chunks(self, z_rows: List[List[complex]]) -> List[List[List[complex]]]:
        """Per-destination chunks: for peer ``q``, one ``r2``-wide segment
        of every owned row (the unit that travels as one fragment)."""
        return [[row[q * self.r2:(q + 1) * self.r2] for row in z_rows]
                for q in range(self.p)]

    def _row_fft2(self, worker, lid: int, got):
        """Phase 3: reassemble transposed rows, FFT each (length n1)."""
        out: List[tuple] = []
        for k2_local in range(self.r2):
            zt_row = [got[j1 // self.r1][j1 % self.r1][k2_local]
                      for j1 in range(self.cfg.n1)]
            yield from worker.compute_granular(self._row_cost(self.cfg.n1))
            out.append((lid * self.r2 + k2_local, fft(zt_row)))
        return out

    # ------------------------------------------------------------------
    # assembly + timing
    # ------------------------------------------------------------------
    def _assemble(self) -> FftResult:
        cfg = self.cfg
        output = [0j] * cfg.n_points
        for lid in range(self.p):
            for k2, row in self._out[lid]:
                for k1 in range(cfg.n1):
                    output[k2 + cfg.n2 * k1] = row[k1]
        checksums = set(self._checksum.values())
        if len(checksums) != 1:
            raise AssertionError(f"checksum mismatch across localities: "
                                 f"{sorted(self._checksum.items())}")
        phase_times: Dict[str, List[float]] = {k: [] for k in PHASES}
        for it in range(cfg.iterations):
            bounds = [max(self._marks[(it, tag)].values())
                      for tag in ("t0", "t1", "t2", "t3")]
            for k, (a, b) in zip(PHASES, zip(bounds, bounds[1:])):
                phase_times[k].append(b - a)
        return FftResult(config=cfg, n_localities=self.p, output=output,
                         checksum=checksums.pop(),
                         phase_times_us=phase_times)
