"""Application benchmarks built on the simulated HPX runtime."""

from . import graphs, octotiger

__all__ = ["octotiger", "graphs"]
