"""Application benchmarks built on the simulated HPX runtime."""

from . import graphs, octotiger, serve

__all__ = ["octotiger", "graphs", "serve"]
