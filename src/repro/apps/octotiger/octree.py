"""Adaptive octrees for the mini Octo-Tiger.

Octo-Tiger simulates binary star mergers on an adaptive octree (§5); the
tree depth is the knob the paper turns ("a configuration parameter that
determines the maximum level of the adaptive oct-tree, which in turn
determines the total number of tasks").  We reproduce the structure: a
uniformly refined base level plus density-driven adaptive refinement up to
``max_level`` around two off-centre "stars", mirroring the binary-system
geometry that concentrates resolution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["OctreeNode", "Octree", "build_octree", "star_positions"]

Coord = Tuple[int, int, int]


@dataclass
class OctreeNode:
    """One tree node at ``(level, x, y, z)`` in level-local coordinates."""

    level: int
    x: int
    y: int
    z: int
    parent: Optional["OctreeNode"] = None
    children: List["OctreeNode"] = field(default_factory=list)
    nid: int = -1          #: dense node id assigned by the tree
    owner: int = -1        #: locality id (set by the partitioner)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.level, self.x, self.y, self.z)

    def centre(self) -> Tuple[float, float, float]:
        """Node centre in the unit cube."""
        h = 1.0 / (1 << self.level)
        return ((self.x + 0.5) * h, (self.y + 0.5) * h, (self.z + 0.5) * h)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<{kind} L{self.level} ({self.x},{self.y},{self.z})>"


class Octree:
    """Container with id/coordinate indexes over all nodes."""

    def __init__(self, root: OctreeNode):
        self.root = root
        self.nodes: List[OctreeNode] = []
        self.by_key: Dict[Tuple[int, int, int, int], OctreeNode] = {}
        for node in self._walk(root):
            node.nid = len(self.nodes)
            self.nodes.append(node)
            self.by_key[node.key] = node
        self.leaves: List[OctreeNode] = [n for n in self.nodes if n.is_leaf]
        self.interiors: List[OctreeNode] = [
            n for n in self.nodes if not n.is_leaf]
        self.max_level = max(n.level for n in self.nodes)

    @staticmethod
    def _walk(node: OctreeNode) -> Iterator[OctreeNode]:
        stack = [node]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(reversed(n.children))

    def node(self, nid: int) -> OctreeNode:
        return self.nodes[nid]

    def find_containing_leaf(self, level: int, x: int, y: int, z: int
                             ) -> Optional[OctreeNode]:
        """The leaf covering cell ``(x,y,z)`` at ``level`` (None = outside)."""
        top = 1 << level
        if not (0 <= x < top and 0 <= y < top and 0 <= z < top):
            return None
        # Try the deepest ancestor cell that exists.
        for lvl in range(level, -1, -1):
            shift = level - lvl
            key = (lvl, x >> shift, y >> shift, z >> shift)
            node = self.by_key.get(key)
            if node is not None:
                # Descend if this cell was refined below `level`.
                while not node.is_leaf:
                    node = self._child_towards(node, level, x, y, z)
                return node
        return None

    @staticmethod
    def _child_towards(node: OctreeNode, level: int, x: int, y: int, z: int
                       ) -> OctreeNode:
        shift = level - (node.level + 1)
        cx, cy, cz = x >> shift, y >> shift, z >> shift
        for c in node.children:
            if (c.x, c.y, c.z) == (cx, cy, cz):
                return c
        raise RuntimeError("inconsistent octree")  # pragma: no cover

    def __len__(self) -> int:
        return len(self.nodes)


def _split(node: OctreeNode) -> None:
    for dx, dy, dz in itertools.product((0, 1), repeat=3):
        node.children.append(OctreeNode(
            level=node.level + 1,
            x=2 * node.x + dx, y=2 * node.y + dy, z=2 * node.z + dz,
            parent=node))


def star_positions(phase: float = 0.0
                   ) -> Tuple[Tuple[float, float, float], ...]:
    """Centres of the two stars after orbiting by ``phase`` radians.

    The binary orbits the domain centre at radius 0.15 — the motion that
    drives Octo-Tiger's periodic regridding.
    """
    r = 0.15
    c = 0.5
    a = (c + r * np.cos(phase), c + r * np.sin(phase), c)
    b = (c - r * np.cos(phase), c - r * np.sin(phase), c)
    return (tuple(float(v) for v in a), tuple(float(v) for v in b))


def _density(px: float, py: float, pz: float,
             phase: float = 0.0) -> float:
    """Two-star synthetic density field in the unit cube."""
    d = 0.0
    for sx, sy, sz in star_positions(phase):
        r2 = (px - sx) ** 2 + (py - sy) ** 2 + (pz - sz) ** 2
        d += np.exp(-r2 / 0.05)
    return float(d)


def build_octree(max_level: int, base_level: int = 2,
                 refine_threshold: float = 0.35,
                 rng: Optional[np.random.Generator] = None,
                 phase: float = 0.0) -> Octree:
    """Build the adaptive tree: uniform to ``base_level``, then refine
    cells whose star-density exceeds ``refine_threshold`` until
    ``max_level``.

    ``rng`` adds a small refinement jitter so repeated experiment
    repetitions see slightly different (but statistically identical) trees,
    as real AMR steps would.
    """
    if max_level < base_level:
        raise ValueError("max_level must be >= base_level")
    root = OctreeNode(0, 0, 0, 0)
    frontier = [root]
    for _ in range(base_level):
        nxt: List[OctreeNode] = []
        for node in frontier:
            _split(node)
            nxt.extend(node.children)
        frontier = nxt
    # adaptive passes
    for _ in range(max_level - base_level):
        nxt = []
        for node in frontier:
            d = _density(*node.centre(), phase=phase)
            jitter = 0.0 if rng is None else float(rng.normal(0.0, 0.02))
            if d + jitter > refine_threshold:
                _split(node)
                nxt.extend(node.children)
        frontier = nxt
    return Octree(root)
