"""FMM-style task/communication structure of one Octo-Tiger step.

Octo-Tiger advances its hydrodynamics + gravity solve in steps; per step the
fast-multipole method on the octree produces exactly the communication
pattern that stresses the parcelport (§5):

* **P2P / boundary exchange** between same-level face-neighbour leaves
  (ghost-zone data, ~12 KiB — above the zero-copy threshold, so these
  travel as zero-copy chunks);
* **M2M up pass**: every node sends its multipole expansion to its parent
  (~2 KiB, eager-sized);
* **L2L down pass**: local expansions flow from the root back to the
  leaves (~2 KiB).

This module computes the static structure (neighbour lists, per-node
expected-input counts, per-locality ownership); the driver executes it on
the simulated runtime.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .octree import Octree, OctreeNode

__all__ = ["OctoTigerConfig", "FmmModel", "compute_neighbors"]

_FACES = ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1),
          (0, 0, -1))


@dataclass(frozen=True)
class OctoTigerConfig:
    """Workload knobs for the mini Octo-Tiger.

    The paper runs tree level 6 on Expanse / 5 on Rostam; the simulated
    tree is two levels shallower (level = paper_level − 2) so a run stays
    within discrete-event budget while keeping the same
    communication-to-computation regime (documented in DESIGN.md).
    """

    max_level: int = 4
    base_level: int = 3
    refine_threshold: float = 0.35
    n_steps: int = 5
    #: regrid every N steps (0 = static tree).  Octo-Tiger re-adapts the
    #: octree as the stars orbit; regridding rebuilds the tree at the new
    #: orbital phase, repartitions it, and migrates relocated leaves.
    regrid_interval: int = 0
    #: orbital phase advance per step (radians)
    orbit_step_rad: float = 0.15
    #: payload bytes migrated per relocated leaf during a regrid
    migrate_bytes: int = 32768
    #: boundary-exchange rounds per step (Octo-Tiger's RK substeps +
    #: gravity exchanges); raises message density without growing the tree
    substeps: int = 3
    #: distinct boundary fields exchanged per neighbour per substep
    #: (hydro state, gravity multipoles, flux corrections, AMR ghosts) —
    #: each travels as its own HPX message, as in Octo-Tiger
    boundary_fields: int = 4
    #: ghost-zone exchange bytes per field (zero-copy sized)
    boundary_bytes: int = 12288
    #: multipole expansion bytes (eager sized)
    m2m_bytes: int = 2048
    l2l_bytes: int = 2048
    #: per-leaf physics compute, µs of one physical core.  One simulated
    #: leaf stands for the ~100 paper-scale subgrids its tree cell would
    #: contain at the paper's two-levels-deeper trees, so per-leaf costs
    #: are inflated accordingly (see DESIGN.md scaling notes).
    leaf_compute_us: float = 16000.0
    #: per-leaf post-boundary update compute
    update_compute_us: float = 10000.0
    #: per-interior-node aggregation compute
    interior_compute_us: float = 5000.0
    #: per-node down-pass compute
    l2l_compute_us: float = 3000.0

    @classmethod
    def for_paper_level(cls, paper_level: int, **kw) -> "OctoTigerConfig":
        """The paper's level-6 (Expanse) / level-5 (Rostam) configs, scaled.

        Simulated depth is floored at 4 so the smaller Rostam tree still
        provides enough leaves per node for 16-node strong scaling; the
        paper-level difference is carried by the per-leaf compute instead:
        level-5 leaves are made heavier, which lowers the communication
        share — calibrated against Fig 11's mild (<=1.08x) speedups with
        no mpi_i collapse on Rostam.
        """
        max_level = max(4, paper_level - 2)
        kw.setdefault("base_level", max(2, max_level - 1))
        if paper_level < 6:
            kw.setdefault("leaf_compute_us", 32000.0)
            kw.setdefault("update_compute_us", 20000.0)
        return cls(max_level=max_level, **kw)


def compute_neighbors(tree: Octree) -> Dict[int, List[int]]:
    """Face-neighbour leaves of every leaf (symmetric, cross-level).

    Each leaf face is sampled on a grid at (up to) the tree's finest
    resolution; every distinct leaf covering a sample is a neighbour.
    The relation is then symmetrized so coarse leaves also see their finer
    neighbours.
    """
    pairs: Set[Tuple[int, int]] = set()
    finest = tree.max_level
    for leaf in tree.leaves:
        scale = finest - leaf.level
        span = 1 << scale          # leaf edge length in finest-level cells
        fx, fy, fz = leaf.x << scale, leaf.y << scale, leaf.z << scale
        samples = min(span, 4)
        step = max(1, span // samples)
        for dx, dy, dz in _FACES:
            # Coordinates of the adjacent cell layer at finest resolution.
            for u in range(0, span, step):
                for v in range(0, span, step):
                    if dx:
                        px = fx + (span if dx > 0 else -1)
                        py, pz = fy + u, fz + v
                    elif dy:
                        py = fy + (span if dy > 0 else -1)
                        px, pz = fx + u, fz + v
                    else:
                        pz = fz + (span if dz > 0 else -1)
                        px, py = fx + u, fy + v
                    nbr = tree.find_containing_leaf(finest, px, py, pz)
                    if nbr is not None and nbr.nid != leaf.nid:
                        a, b = sorted((leaf.nid, nbr.nid))
                        pairs.add((a, b))
    neighbors: Dict[int, List[int]] = defaultdict(list)
    for a, b in sorted(pairs):
        neighbors[a].append(b)
        neighbors[b].append(a)
    for leaf in tree.leaves:
        neighbors.setdefault(leaf.nid, [])
    return dict(neighbors)


class FmmModel:
    """Static per-step structure: who talks to whom, who waits for what."""

    def __init__(self, tree: Octree, n_localities: int, substeps: int = 1,
                 fields: int = 1):
        self.tree = tree
        self.n_localities = n_localities
        self.substeps = max(1, substeps)
        self.fields = max(1, fields)
        self.neighbors = compute_neighbors(tree)
        self.leaves_of: Dict[int, List[OctreeNode]] = defaultdict(list)
        for leaf in tree.leaves:
            self.leaves_of[leaf.owner].append(leaf)
        #: expected boundary inputs per leaf
        #: (one per neighbour per field per substep)
        self.expected_boundary: Dict[int, int] = {
            nid: len(nbrs) * self.substeps * self.fields
            for nid, nbrs in self.neighbors.items()}
        #: expected child contributions per interior node
        self.expected_children: Dict[int, int] = {
            n.nid: len(n.children) for n in tree.interiors}

    # -- communication census (used by tests and reporting) ---------------
    def remote_boundary_pairs(self) -> int:
        """Directed leaf→leaf boundary messages crossing localities."""
        count = 0
        for nid, nbrs in self.neighbors.items():
            src = self.tree.node(nid).owner
            count += sum(1 for m in nbrs if self.tree.node(m).owner != src)
        return count * self.substeps * self.fields

    def remote_m2m_edges(self) -> int:
        return sum(1 for n in self.tree.nodes
                   if n.parent is not None and n.owner != n.parent.owner)

    def census(self) -> Dict[str, int]:
        return {
            "leaves": len(self.tree.leaves),
            "interiors": len(self.tree.interiors),
            "boundary_msgs_per_step": self.remote_boundary_pairs(),
            "m2m_msgs_per_step": self.remote_m2m_edges(),
            "l2l_msgs_per_step": self.remote_m2m_edges(),
        }
