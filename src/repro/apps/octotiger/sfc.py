"""Space-filling-curve partitioning (§5: "Octo-Tiger uses space-filling
curves to partition the tree nodes into processes").

Leaves are ordered along a Morton (Z-order) curve and cut into contiguous,
equal-work chunks; interior nodes follow their first descendant leaf so
subtrees stay together.
"""

from __future__ import annotations

from typing import Dict, List

from .octree import Octree, OctreeNode

__all__ = ["morton_key", "partition_octree"]


def _spread_bits(v: int) -> int:
    """Interleave the low 21 bits of ``v`` with two zero bits each."""
    v &= (1 << 21) - 1
    v = (v | (v << 32)) & 0x1F00000000FFFF
    v = (v | (v << 16)) & 0x1F0000FF0000FF
    v = (v | (v << 8)) & 0x100F00F00F00F00F
    v = (v | (v << 4)) & 0x10C30C30C30C30C3
    v = (v | (v << 2)) & 0x1249249249249249
    return v


def morton_key(x: int, y: int, z: int, level: int, max_level: int = 21
               ) -> int:
    """Morton code of a cell, normalized so different levels interleave.

    Coordinates are up-scaled to ``max_level`` resolution, so a parent's
    key equals its first child's key and depth-first SFC order emerges
    from a plain sort.
    """
    if level > max_level:
        raise ValueError(f"level {level} exceeds max_level {max_level}")
    shift = max_level - level
    return (_spread_bits(x << shift)
            | (_spread_bits(y << shift) << 1)
            | (_spread_bits(z << shift) << 2))


def node_key(node: OctreeNode) -> int:
    return morton_key(node.x, node.y, node.z, node.level)


def partition_octree(tree: Octree, n_localities: int) -> Dict[int, int]:
    """Assign every node id an owner locality.

    Leaves are split into ``n_localities`` contiguous Morton ranges of
    (approximately) equal leaf count; each interior node goes to the owner
    of its first leaf in Morton order — keeping subtrees local, as
    Octo-Tiger's SFC distribution does.
    """
    if n_localities < 1:
        raise ValueError("need at least one locality")
    leaves = sorted(tree.leaves, key=node_key)
    n = len(leaves)
    owners: Dict[int, int] = {}
    for i, leaf in enumerate(leaves):
        owners[leaf.nid] = min(i * n_localities // n, n_localities - 1)
    # Interior nodes: owner of the Morton-first descendant leaf.
    def first_leaf_owner(node: OctreeNode) -> int:
        while not node.is_leaf:
            node = min(node.children, key=node_key)
        return owners[node.nid]

    for node in tree.interiors:
        owners[node.nid] = first_leaf_owner(node)
    for node in tree.nodes:
        node.owner = owners[node.nid]
    return owners
