"""Mini Octo-Tiger: the paper's application-level benchmark (§5).

An FMM-on-adaptive-octree star-merger proxy with the same communication
structure (ghost-boundary exchange, M2M up pass, L2L down pass over an
SFC-partitioned tree) driven through HPX actions.
"""

from .analysis import (communication_matrix, load_balance,
                       traffic_summary)
from .driver import OctoTigerDriver, OctoTigerResult
from .fmm import FmmModel, OctoTigerConfig, compute_neighbors
from .octree import Octree, OctreeNode, build_octree
from .sfc import morton_key, partition_octree

__all__ = ["OctoTigerDriver", "OctoTigerResult", "OctoTigerConfig",
           "load_balance", "communication_matrix", "traffic_summary",
           "FmmModel", "compute_neighbors",
           "Octree", "OctreeNode", "build_octree",
           "morton_key", "partition_octree"]
