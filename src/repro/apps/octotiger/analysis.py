"""Analysis helpers for Octo-Tiger runs: load balance and traffic matrices.

The paper attributes its strong-scaling setup to the SFC partitioning
("Octo-Tiger uses space-filling curves to partition the tree nodes into
processes") and studies configurations where inter-process communication
dominates.  These helpers quantify both properties for a built model:
per-locality work distribution and the locality-to-locality communication
matrix one step generates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .fmm import FmmModel, OctoTigerConfig

__all__ = ["load_balance", "communication_matrix", "traffic_summary"]


def load_balance(model: FmmModel) -> Dict[str, float]:
    """Leaf-count balance across localities (1.0 = perfect)."""
    counts = [len(model.leaves_of.get(lid, []))
              for lid in range(model.n_localities)]
    total = sum(counts)
    if total == 0:
        raise ValueError("model has no leaves")
    mean = total / model.n_localities
    return {
        "leaves_total": float(total),
        "leaves_min": float(min(counts)),
        "leaves_max": float(max(counts)),
        "imbalance": max(counts) / mean if mean else 0.0,
    }


def communication_matrix(model: FmmModel,
                         config: OctoTigerConfig) -> np.ndarray:
    """Bytes sent from locality i to locality j in one step.

    Counts boundary exchanges (per neighbour per field per substep) and
    the M2M/L2L tree passes.
    """
    n = model.n_localities
    mat = np.zeros((n, n), dtype=np.int64)
    per_pair = config.substeps * config.boundary_fields
    for nid, nbrs in model.neighbors.items():
        src = model.tree.node(nid).owner
        for m in nbrs:
            dst = model.tree.node(m).owner
            if dst != src:
                mat[src, dst] += per_pair * config.boundary_bytes
    for node in model.tree.nodes:
        parent = node.parent
        if parent is None:
            continue
        if node.owner != parent.owner:
            mat[node.owner, parent.owner] += config.m2m_bytes   # up
            mat[parent.owner, node.owner] += config.l2l_bytes   # down
    return mat


def traffic_summary(model: FmmModel, config: OctoTigerConfig
                    ) -> Dict[str, float]:
    """Aggregate communication figures for one step."""
    mat = communication_matrix(model, config)
    off_diag = mat.sum()
    per_loc_out = mat.sum(axis=1)
    local_pairs = sum(
        1 for nid, nbrs in model.neighbors.items()
        for m in nbrs
        if model.tree.node(m).owner == model.tree.node(nid).owner)
    remote_pairs = sum(len(v) for v in model.neighbors.values()) \
        - local_pairs
    total_pairs = local_pairs + remote_pairs
    return {
        "bytes_per_step": float(off_diag),
        "max_locality_out_bytes": float(per_loc_out.max()),
        "mean_locality_out_bytes": float(per_loc_out.mean()),
        "remote_neighbor_fraction":
            remote_pairs / total_pairs if total_pairs else 0.0,
        "messages_per_step": float(
            model.remote_boundary_pairs() + 2 * model.remote_m2m_edges()),
    }
