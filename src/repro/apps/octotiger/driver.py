"""Octo-Tiger driver: executes the FMM step graph on the simulated runtime.

Per step, per leaf: physics compute → ghost-boundary exchange with every
face neighbour → update compute → M2M contribution to the parent; interior
nodes aggregate eight child contributions and pass up; once the root
aggregates, local expansions cascade back down (L2L) and each leaf finishing
its down-pass counts toward the step barrier.  Steps are timed exactly as
the paper reports: steps per second over ``n_steps`` (stop step = 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...hpx_rt.future import Latch
from ...hpx_rt.runtime import HpxRuntime
from .fmm import FmmModel, OctoTigerConfig
from .octree import Octree, build_octree
from .sfc import partition_octree

__all__ = ["OctoTigerDriver", "OctoTigerResult"]


@dataclass
class OctoTigerResult:
    """Outcome of one Octo-Tiger run."""

    config: OctoTigerConfig
    n_localities: int
    step_times_us: List[float]
    census: Dict[str, int]

    @property
    def total_time_us(self) -> float:
        return sum(self.step_times_us)

    @property
    def steps_per_second(self) -> float:
        """The paper's Fig 10/11 metric (virtual seconds)."""
        total_s = self.total_time_us * 1e-6
        return len(self.step_times_us) / total_s if total_s > 0 else 0.0


class OctoTigerDriver:
    """Builds the tree, registers actions, runs the stepped simulation."""

    def __init__(self, runtime: HpxRuntime,
                 config: Optional[OctoTigerConfig] = None):
        self.rt = runtime
        self.config = config or OctoTigerConfig()
        self._phase = 0.0
        self.regrids = 0
        self.migrated_leaves = 0
        self._build_model(self._phase)
        runtime.register_action("ot_migrate", self._act_migrate)
        # Per-step mutable state (reset each step).
        self._boundary_count: Dict[int, int] = {}
        self._child_count: Dict[int, int] = {}
        self._step_latch: Optional[Latch] = None
        self.rt.register_action("ot_boundary", self._act_boundary)
        self.rt.register_action("ot_m2m", self._act_m2m)
        self.rt.register_action("ot_l2l", self._act_l2l)

    def _build_model(self, phase: float) -> None:
        """(Re)build the octree at an orbital phase and repartition it."""
        rng = self.rt.rng.stream(f"octotiger.tree.{self.regrids}")
        self.tree: Octree = build_octree(
            self.config.max_level, self.config.base_level,
            self.config.refine_threshold, rng=rng, phase=phase)
        partition_octree(self.tree, len(self.rt.localities))
        self.model = FmmModel(self.tree, len(self.rt.localities),
                              substeps=self.config.substeps,
                              fields=self.config.boundary_fields)
        # Per-step mutable state (reset each step).
        self._boundary_count: Dict[int, int] = {}
        self._child_count: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> OctoTigerResult:
        """Execute ``n_steps`` steps; returns timing + structure census."""
        done = self.rt.sim.process(self._main(), name="octotiger")
        self.rt.run_until(done, max_events=max_events)
        return done.value

    def _main(self):
        cfg = self.config
        step_times: List[float] = []
        for step in range(cfg.n_steps):
            t0 = self.rt.now
            if cfg.regrid_interval and step > 0 \
                    and step % cfg.regrid_interval == 0:
                yield from self._regrid(step)
            self._boundary_count = {leaf.nid: 0 for leaf in self.tree.leaves}
            self._child_count = {nid: 0
                                 for nid in self.model.expected_children}
            self._step_latch = Latch(self.rt.sim, len(self.tree.leaves))
            for lid, leaves in self.model.leaves_of.items():
                loc = self.rt.locality(lid)
                loc.spawn(self._make_kicker(leaves), name=f"ot_kick{step}")
            yield self._step_latch.wait()
            step_times.append(self.rt.now - t0)
        census = self.model.census()
        census["regrids"] = self.regrids
        census["migrated_leaves"] = self.migrated_leaves
        return OctoTigerResult(config=cfg,
                               n_localities=len(self.rt.localities),
                               step_times_us=step_times,
                               census=census)

    # ------------------------------------------------------------------
    # adaptive regridding (the AMR step real Octo-Tiger performs as the
    # stars orbit): rebuild the tree at the new phase, repartition, and
    # migrate the data of every leaf whose owner changed
    # ------------------------------------------------------------------
    def _regrid(self, step: int):
        cfg = self.config
        old_owner = {n.key: n.owner for n in self.tree.nodes}
        self._phase += cfg.orbit_step_rad * cfg.regrid_interval
        self.regrids += 1
        self._build_model(self._phase)
        # data migration: cells that exist in both trees but moved rank
        moves = []
        for leaf in self.tree.leaves:
            prev = old_owner.get(leaf.key)
            if prev is not None and prev != leaf.owner:
                moves.append((prev, leaf.owner))
        self.migrated_leaves += len(moves)
        if not moves:
            return
        latch = Latch(self.rt.sim, len(moves))

        def make_migration(src, dst):
            def migrate(worker):
                yield from worker.locality.apply(
                    worker, dst, "ot_migrate", (0,),
                    arg_sizes=[cfg.migrate_bytes])
            return migrate

        self._migrate_latch = latch
        for src, dst in moves:
            self.rt.locality(src).spawn(make_migration(src, dst),
                                        name="ot_migrate")
        yield latch.wait()

    def _act_migrate(self, worker, _token: int):
        self._migrate_latch.count_down()
        return None

    # ------------------------------------------------------------------
    # task bodies
    # ------------------------------------------------------------------
    def _make_kicker(self, leaves):
        def kicker(worker):
            for leaf in leaves:
                yield worker.cpu(self.rt.cost.task_spawn_us)
                worker.locality.spawn(self._make_leaf_work(leaf),
                                      name="ot_leaf")
        return kicker

    def _make_leaf_work(self, leaf):
        cfg = self.config

        def leaf_work(worker):
            # Runge-Kutta substeps: compute then exchange ghost zones with
            # every face neighbour, `substeps` times per step.
            for _sub in range(cfg.substeps):
                yield from worker.compute_granular(
                    cfg.leaf_compute_us / cfg.substeps)
                for nbr_nid in self.model.neighbors[leaf.nid]:
                    nbr = self.tree.node(nbr_nid)
                    for _f in range(cfg.boundary_fields):
                        yield from worker.locality.apply(
                            worker, nbr.owner, "ot_boundary", (nbr_nid,),
                            arg_sizes=[cfg.boundary_bytes])
            if not self.model.expected_boundary[leaf.nid]:
                # Degenerate (single-leaf) tree: no inputs to wait for.
                worker.locality.spawn(self._make_update(leaf),
                                      name="ot_update")
        return leaf_work

    def _make_update(self, leaf):
        cfg = self.config

        def update(worker):
            yield from worker.compute_granular(cfg.update_compute_us)
            yield from self._contribute_up(worker, leaf)
        return update

    def _make_interior(self, node):
        cfg = self.config

        def interior(worker):
            yield from worker.compute_granular(cfg.interior_compute_us)
            if node.parent is None:
                # Root aggregated: start the L2L down pass.
                yield from self._push_down(worker, node)
            else:
                yield from self._contribute_up(worker, node)
        return interior

    def _make_down(self, node):
        cfg = self.config

        def down(worker):
            yield from worker.compute_granular(cfg.l2l_compute_us)
            if node.is_leaf:
                self._step_latch.count_down()
            else:
                yield from self._push_down(worker, node)
        return down

    # ------------------------------------------------------------------
    # dataflow plumbing
    # ------------------------------------------------------------------
    def _contribute_up(self, worker, node):
        parent = node.parent
        if parent.owner == worker.locality.lid:
            self._count_m2m(parent.nid)
        else:
            yield from worker.locality.apply(
                worker, parent.owner, "ot_m2m", (parent.nid,),
                arg_sizes=[self.config.m2m_bytes])

    def _push_down(self, worker, node):
        for child in node.children:
            if child.owner == worker.locality.lid:
                self.rt.locality(child.owner).spawn(
                    self._make_down(child), name="ot_down")
            else:
                yield from worker.locality.apply(
                    worker, child.owner, "ot_l2l", (child.nid,),
                    arg_sizes=[self.config.l2l_bytes])

    def _count_boundary(self, nid: int) -> None:
        self._boundary_count[nid] += 1
        if self._boundary_count[nid] == self.model.expected_boundary[nid]:
            leaf = self.tree.node(nid)
            self.rt.locality(leaf.owner).spawn(self._make_update(leaf),
                                               name="ot_update")

    def _count_m2m(self, nid: int) -> None:
        self._child_count[nid] += 1
        if self._child_count[nid] == self.model.expected_children[nid]:
            node = self.tree.node(nid)
            self.rt.locality(node.owner).spawn(self._make_interior(node),
                                               name="ot_interior")

    # ------------------------------------------------------------------
    # actions (remote entry points)
    # ------------------------------------------------------------------
    def _act_boundary(self, worker, nid: int):
        self._count_boundary(nid)
        return None

    def _act_m2m(self, worker, nid: int):
        self._count_m2m(nid)
        return None

    def _act_l2l(self, worker, nid: int):
        node = self.tree.node(nid)
        worker.locality.spawn(self._make_down(node), name="ot_down")
        return None
