"""Open-loop RPC serving workload (see docs/SERVING.md).

The third application workload after Octo-Tiger (neighbour exchange) and
the distributed FFT (all-to-all incast): an open-loop request/response
serving tier modeling millions of logical clients behind a gateway
locality, with heavy-tailed payloads, per-request deadlines, and PR-2
shedding acting as admission control.  The bench layer wraps it in
:mod:`repro.bench.serve_bench`; the ``serve_smoke`` / ``serve_sweep``
figures sweep offered load to locate each parcelport config family's
saturation knee.
"""

from .arrivals import (ARRIVAL_KINDS, bounded_pareto, bounded_pareto_mean,
                       bursty_arrival_times, poisson_arrival_times)
from .driver import (Request, ServeConfig, ServeDriver, ServeResult,
                     STATUS_FAILED, STATUS_OK, STATUS_PENDING,
                     STATUS_SHED_REQ, STATUS_SHED_RESP)

__all__ = [
    "ServeConfig", "ServeDriver", "ServeResult", "Request",
    "STATUS_PENDING", "STATUS_OK", "STATUS_SHED_REQ", "STATUS_SHED_RESP",
    "STATUS_FAILED",
    "poisson_arrival_times", "bursty_arrival_times",
    "bounded_pareto", "bounded_pareto_mean", "ARRIVAL_KINDS",
]
