"""Open-loop RPC serving tier on the HPX runtime: the "millions of users"
workload of ROADMAP.md.

Model
-----

One locality (lid 0) is the **client gateway**: it aggregates the open-loop
request stream of a large logical client population (``n_clients``, default
one million — client identity is an id drawn per request, not per-client
simulated state, so the population scales without cost).  The remaining
localities are **servers**.  Each request:

1. *arrives* at the gateway at a precomputed instant (Poisson or bursty
   ON/OFF process — see :mod:`.arrivals`) with a heavy-tailed payload, a
   service demand and a deadline, all drawn from named seed substreams
   **before the simulation starts** — the offered workload is a pure
   function of ``(config, seed)`` whatever the network later does;
2. travels as a **request parcel** to its server (client-affine routing:
   ``server = 1 + client_id % n_servers``), which executes the configured
   service-time model and replies with a **response parcel**;
3. completes back at the gateway, where end-to-end latency (from the
   *arrival instant*, so client-side queueing counts) and deadline
   attainment are recorded.

Open loop means arrivals never wait for completions: when the stack
saturates, queues — not the arrival process — absorb the excess.  That is
exactly where PR-2 flow control becomes **admission control**: with an
``overflow="shed"`` :class:`~repro.flow.FlowControlPolicy`, requests that
cannot be admitted are dropped at the gateway (and responses, under
extreme incast, at the servers) and surface as
:class:`~repro.flow.ParcelShedError` through ``on_parcel_failure`` —
counted here per category, never lost.

Accounting is exact and closed::

    offered = delivered + shed_requests + shed_responses + failed + in_flight

where ``in_flight`` is whatever the quiesce horizon caught mid-stack
(asserted deterministic and conservation-exact by ``tests/test_serve_app``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...hpx_rt.future import Future
from ...hpx_rt.runtime import HpxRuntime
from ...sim.stats import StatSet, TimeSeries
from .arrivals import (ARRIVAL_KINDS, bounded_pareto, bursty_arrival_times,
                       poisson_arrival_times)

__all__ = ["ServeConfig", "Request", "ServeResult", "ServeDriver",
           "STATUS_PENDING", "STATUS_OK", "STATUS_SHED_REQ",
           "STATUS_SHED_RESP", "STATUS_FAILED"]

#: request lifecycle terminal states
STATUS_PENDING = 0    #: still somewhere in the stack at quiesce
STATUS_OK = 1         #: response delivered to the gateway
STATUS_SHED_REQ = 2   #: request shed by admission control (never served)
STATUS_SHED_RESP = 3  #: served, but the response was shed
STATUS_FAILED = 4     #: a parcel exhausted retries (faulted runs only)


@dataclass(frozen=True)
class ServeConfig:
    """Workload shape + service model for one serving run."""

    #: logical client population behind the gateway (id space only —
    #: per-request ids are drawn from it, no per-client state is kept)
    n_clients: int = 1_000_000
    #: aggregate offered request rate, K requests/s (== requests per ms)
    offered_kps: float = 100.0
    #: arrival window (virtual µs); requests arrive on [0, horizon_us)
    horizon_us: float = 2000.0
    #: "poisson" or "bursty" (heavy-tailed ON/OFF, same long-run rate)
    arrival: str = "poisson"
    #: ON-period time fraction for the bursty process
    burst_on_fraction: float = 0.4
    #: mean ON-period length for the bursty process (µs)
    burst_mean_on_us: float = 150.0
    #: request payload: bounded Pareto [lo, hi] with shape alpha
    req_bytes_min: int = 64
    req_bytes_max: int = 16384
    req_alpha: float = 1.3
    #: response payload: bounded Pareto, typically heavier than requests
    resp_bytes_min: int = 128
    resp_bytes_max: int = 32768
    resp_alpha: float = 1.2
    #: service model: base + per-KiB scan cost, lognormal-ish jitter cv
    service_base_us: float = 1.0
    service_per_kb_us: float = 0.25
    service_cv: float = 0.3
    #: end-to-end deadline per request (µs from its arrival instant)
    slo_us: float = 200.0
    #: post-horizon drain before the run quiesces and counts in-flight
    drain_us: float = 2000.0

    def validate(self, n_localities: int) -> None:
        if n_localities < 2:
            raise ValueError("serving needs >= 2 localities "
                             "(one gateway + servers)")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"arrival must be one of {ARRIVAL_KINDS}, "
                             f"got {self.arrival!r}")
        if self.n_clients < 1:
            raise ValueError("need at least one logical client")
        if self.offered_kps <= 0.0 or self.horizon_us <= 0.0:
            raise ValueError("offered_kps and horizon_us must be positive")
        if self.slo_us <= 0.0:
            raise ValueError("slo_us must be positive")
        if self.drain_us < 0.0:
            raise ValueError("drain_us must be >= 0")


@dataclass(frozen=True)
class Request:
    """One fully-precomputed request (immutable once the schedule exists)."""

    rid: int
    t_arrive: float     #: arrival instant at the gateway (µs)
    client_id: int      #: logical client identity (0 .. n_clients-1)
    server: int         #: destination locality id
    req_bytes: int
    resp_bytes: int
    service_us: float   #: server-side service demand (thread-weighted)
    deadline_us: float  #: absolute completion deadline (µs)


@dataclass
class ServeResult:
    """Outcome of one serving run (all counts are requests)."""

    config: ServeConfig
    n_localities: int
    offered: int
    delivered: int
    shed_requests: int
    shed_responses: int
    failed: int
    in_flight: int
    deadline_misses: int      #: delivered but past their deadline
    #: end-to-end latency samples of delivered requests (completion order)
    latency: TimeSeries = field(default_factory=TimeSeries)
    #: virtual time of the last accounted completion (or quiesce)
    t_end_us: float = 0.0

    @property
    def in_slo(self) -> int:
        """Requests that completed within their deadline (the goodput)."""
        return self.delivered - self.deadline_misses

    @property
    def shed(self) -> int:
        return self.shed_requests + self.shed_responses

    @property
    def offered_kps(self) -> float:
        """Measured offered load over the horizon, K requests/s."""
        return self.offered / self.config.horizon_us * 1e3

    @property
    def achieved_kps(self) -> float:
        """Delivered responses per horizon time, K requests/s."""
        return self.delivered / self.config.horizon_us * 1e3

    @property
    def goodput_kps(self) -> float:
        """In-SLO responses per horizon time, K requests/s."""
        return self.in_slo / self.config.horizon_us * 1e3

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests answered within deadline."""
        return self.in_slo / self.offered if self.offered else 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50_us": self.latency.p50(), "p99_us": self.latency.p99(),
                "p999_us": self.latency.p999()}

    def check_conservation(self) -> None:
        """Assert the accounting identity that closes every request."""
        total = (self.delivered + self.shed_requests + self.shed_responses
                 + self.failed + self.in_flight)
        if total != self.offered:
            raise AssertionError(
                f"serve accounting leak: offered={self.offered} != "
                f"delivered={self.delivered} + shed_req={self.shed_requests}"
                f" + shed_resp={self.shed_responses} + failed={self.failed}"
                f" + in_flight={self.in_flight}")


class ServeDriver:
    """Registers the request/response actions and drives the open loop."""

    def __init__(self, runtime: HpxRuntime,
                 config: Optional[ServeConfig] = None):
        self.rt = runtime
        self.cfg = config or ServeConfig()
        self.p = len(runtime.localities)
        self.cfg.validate(self.p)
        self.n_servers = self.p - 1
        self.stats = StatSet("serve")
        self.requests: List[Request] = self._make_schedule()
        self._status = [STATUS_PENDING] * len(self.requests)
        self._accounted = 0
        self._done: Optional[Future] = None
        self._t_end = 0.0

    # ------------------------------------------------------------------
    # the precomputed schedule (pure function of config + runtime seed)
    # ------------------------------------------------------------------
    def _make_schedule(self) -> List[Request]:
        cfg = self.cfg
        rng = self.rt.rng
        arr = rng.stream("serve.arrivals")
        if cfg.arrival == "poisson":
            times = poisson_arrival_times(arr, cfg.offered_kps,
                                          cfg.horizon_us)
        else:
            times = bursty_arrival_times(
                arr, cfg.offered_kps, cfg.horizon_us,
                on_fraction=cfg.burst_on_fraction,
                mean_on_us=cfg.burst_mean_on_us)
        clients = rng.stream("serve.clients")
        req_sz = rng.stream("serve.req_bytes")
        resp_sz = rng.stream("serve.resp_bytes")
        service = rng.stream("serve.service")
        out: List[Request] = []
        for rid, t in enumerate(times):
            cid = int(clients.integers(0, cfg.n_clients))
            rb = int(bounded_pareto(req_sz, cfg.req_alpha,
                                    cfg.req_bytes_min, cfg.req_bytes_max))
            sb = int(bounded_pareto(resp_sz, cfg.resp_alpha,
                                    cfg.resp_bytes_min, cfg.resp_bytes_max))
            base = (cfg.service_base_us
                    + cfg.service_per_kb_us * (rb + sb) / 1024.0)
            if cfg.service_cv > 0.0:
                jitter = float(service.normal(1.0, cfg.service_cv))
                svc = base * max(jitter, 0.1)
            else:
                svc = base
            out.append(Request(rid=rid, t_arrive=t, client_id=cid,
                               server=1 + cid % self.n_servers,
                               req_bytes=rb, resp_bytes=sb, service_us=svc,
                               deadline_us=t + cfg.slo_us))
        return out

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> ServeResult:
        rt, sim = self.rt, self.rt.sim
        rt.register_action("serve_req", self._on_request)
        rt.register_action("serve_resp", self._on_response)
        if rt.on_parcel_failure is not None:
            raise RuntimeError("ServeDriver needs the runtime's "
                               "on_parcel_failure hook for itself")
        rt.on_parcel_failure = self._on_parcel_failure
        #: exported for MetricsRegistry integration (rt.metrics())
        rt.serve_stats = self.stats
        self._done = Future(sim)
        self._t_quiesce = self.cfg.horizon_us + self.cfg.drain_us
        sim.process(self._injector(), name="serve_injector")
        sim.process(self._quiesce_timer(), name="serve_quiesce")
        rt.run_until(self._done, max_events=max_events)
        if not self._done.done:
            raise RuntimeError("serve run did not complete (event budget "
                               "exhausted before the quiesce horizon)")
        return self._assemble()

    # ------------------------------------------------------------------
    # gateway side
    # ------------------------------------------------------------------
    def _injector(self):
        """Open-loop arrival process: spawns client tasks on schedule,
        never waiting for completions."""
        sim = self.rt.sim
        gateway = self.rt.locality(0)
        for req in self.requests:
            dt = req.t_arrive - sim.now
            if dt > 0.0:
                yield sim.timeout(dt)
            gateway.spawn(self._make_client_task(req), name="serve_client")
            self.stats.inc("requests_offered")
        if False:  # pragma: no cover - keeps this a generator when empty
            yield

    def _make_client_task(self, req: Request):
        def task(worker):
            yield from worker.locality.apply(
                worker, req.server, "serve_req", (req.rid,),
                arg_sizes=[req.req_bytes])
        return task

    def _on_response(self, worker, rid: int):
        req = self.requests[rid]
        if self._status[rid] != STATUS_PENDING:
            # A duplicate (possible only under faults without reliability
            # dedup) must not double-account.
            self.stats.inc("dup_responses")
            return None
        now = self.rt.sim.now
        self._status[rid] = STATUS_OK
        self.stats.inc("responses_delivered")
        self.stats.sample("latency_us", now, now - req.t_arrive)
        if now > req.deadline_us:
            self.stats.inc("deadline_misses")
        self._account(now)
        return None

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _on_request(self, worker, rid: int):
        req = self.requests[rid]
        self.stats.inc("requests_served")
        yield from worker.compute_granular(req.service_us)
        yield from worker.locality.apply(
            worker, 0, "serve_resp", (req.rid,),
            arg_sizes=[req.resp_bytes])

    # ------------------------------------------------------------------
    # overload / fault bookkeeping
    # ------------------------------------------------------------------
    def _on_parcel_failure(self, parcel, exc: Exception) -> None:
        from ...flow import ParcelShedError
        rid = parcel.args[0]
        if self._status[rid] != STATUS_PENDING:
            return
        shed = isinstance(exc, ParcelShedError)
        if parcel.action == "serve_req":
            self._status[rid] = STATUS_SHED_REQ if shed else STATUS_FAILED
            self.stats.inc("requests_shed" if shed else "requests_failed")
        else:
            self._status[rid] = STATUS_SHED_RESP if shed else STATUS_FAILED
            self.stats.inc("responses_shed" if shed else "responses_failed")
        self._account(self.rt.sim.now)

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def _account(self, now: float) -> None:
        self._accounted += 1
        self._t_end = now
        if (self._accounted == len(self.requests)
                and not self._done.done):
            self._done.set_result(now)

    def _quiesce_timer(self):
        sim = self.rt.sim
        yield sim.timeout(self._t_quiesce - sim.now)
        if not self._done.done:
            self._t_end = sim.now
            self._done.set_result(sim.now)

    def _assemble(self) -> ServeResult:
        counts = {STATUS_OK: 0, STATUS_SHED_REQ: 0, STATUS_SHED_RESP: 0,
                  STATUS_FAILED: 0, STATUS_PENDING: 0}
        for st in self._status:
            counts[st] += 1
        self.stats.counters["requests_in_flight"] = counts[STATUS_PENDING]
        lat = self.stats.series.get("latency_us") or TimeSeries()
        res = ServeResult(
            config=self.cfg, n_localities=self.p,
            offered=len(self.requests),
            delivered=counts[STATUS_OK],
            shed_requests=counts[STATUS_SHED_REQ],
            shed_responses=counts[STATUS_SHED_RESP],
            failed=counts[STATUS_FAILED],
            in_flight=counts[STATUS_PENDING],
            deadline_misses=self.stats.get("deadline_misses"),
            latency=lat, t_end_us=self._t_end)
        res.check_conservation()
        return res
