"""Deterministic open-loop arrival and size generators for the serving tier.

Everything here is a pure function of a ``numpy.random.Generator`` (always
a named :class:`~repro.sim.rng.RngPool` substream of the run seed), so the
offered workload — arrival instants, client identities, payload sizes,
service demands — is fixed before the simulation starts and is invariant
under reruns, ``--jobs`` fan-out and cache warm/cold by construction.

Two arrival processes:

* **Poisson** — i.i.d. exponential inter-arrivals at the offered rate; the
  classic open-loop baseline (memoryless, burstiness 1).
* **Bursty (ON/OFF)** — a two-state modulated Poisson process whose ON
  periods are heavy-tailed (bounded Pareto).  Aggregating many such
  sources is the standard self-similar traffic construction (Willinger et
  al.), so this models the "millions of clients behind a gateway whose
  active population flickers" regime: the *long-run* offered rate equals
  ``rate_kps``, but arrivals cluster into bursts that stress queues and
  tail latency far beyond the Poisson case.

Payload sizes are **bounded Pareto**: heavy-tailed like measured RPC/KV
traffic (most requests tiny, rare ones huge) but with a hard cap so a
single draw cannot blow the simulation budget.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

__all__ = ["poisson_arrival_times", "bursty_arrival_times",
           "bounded_pareto", "bounded_pareto_mean", "ARRIVAL_KINDS"]

#: recognised ``arrival=`` values (validated by :class:`..serve.ServeConfig`)
ARRIVAL_KINDS = ("poisson", "bursty")


def poisson_arrival_times(rng: np.random.Generator, rate_kps: float,
                          horizon_us: float) -> List[float]:
    """Arrival instants of a Poisson process on ``[0, horizon_us)``.

    ``rate_kps`` is the aggregate offered rate in K requests per second
    (== requests per millisecond), the same unit the message-rate figures
    use for their x axis.
    """
    if rate_kps <= 0.0 or horizon_us <= 0.0:
        return []
    mean_gap_us = 1e3 / rate_kps
    out: List[float] = []
    t = float(rng.exponential(mean_gap_us))
    while t < horizon_us:
        out.append(t)
        t += float(rng.exponential(mean_gap_us))
    return out


def bursty_arrival_times(rng: np.random.Generator, rate_kps: float,
                         horizon_us: float, on_fraction: float = 0.4,
                         mean_on_us: float = 150.0,
                         alpha: float = 1.5) -> List[float]:
    """Arrival instants of a heavy-tailed ON/OFF modulated Poisson process.

    The source alternates ON periods (bounded-Pareto durations with shape
    ``alpha`` and mean ``mean_on_us``) and OFF periods (exponential, sized
    so ON periods cover ``on_fraction`` of time).  While ON, arrivals are
    Poisson at ``rate_kps / on_fraction``, so the long-run offered rate is
    exactly ``rate_kps`` — an apples-to-apples x axis with the Poisson
    generator, with the variance concentrated into bursts.
    """
    if rate_kps <= 0.0 or horizon_us <= 0.0:
        return []
    if not 0.0 < on_fraction <= 1.0:
        raise ValueError(f"on_fraction must be in (0, 1], got {on_fraction}")
    burst_gap_us = 1e3 * on_fraction / rate_kps
    mean_off_us = mean_on_us * (1.0 - on_fraction) / on_fraction
    # Pareto lo bound giving mean ``mean_on_us`` at shape ``alpha`` (the
    # hi bound caps a single burst at 16x the mean).
    lo = mean_on_us * (alpha - 1.0) / alpha
    hi = mean_on_us * 16.0
    out: List[float] = []
    t = 0.0
    # Stationary-ish start: the first state is ON with prob. on_fraction.
    on = bool(rng.random() < on_fraction)
    while t < horizon_us:
        if on:
            end = t + bounded_pareto(rng, alpha, lo, hi)
            a = t + float(rng.exponential(burst_gap_us))
            while a < min(end, horizon_us):
                out.append(a)
                a += float(rng.exponential(burst_gap_us))
            t = end
        else:
            t += float(rng.exponential(mean_off_us)) if mean_off_us > 0.0 \
                else 0.0
        on = not on
    return out


def bounded_pareto(rng: np.random.Generator, alpha: float, lo: float,
                   hi: float) -> float:
    """One draw from a bounded Pareto(``alpha``) on ``[lo, hi]``.

    Inverse-CDF sampling: heavy-tailed below the cap, never above it.
    ``lo == hi`` degenerates to the constant (handy for fixed-size
    ablations).
    """
    if not (0.0 < lo <= hi):
        raise ValueError(f"need 0 < lo <= hi, got [{lo}, {hi}]")
    if alpha <= 0.0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if lo == hi:
        return float(lo)
    u = float(rng.random())
    la, ha = lo ** alpha, hi ** alpha
    x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return float(min(max(x, lo), hi))


def bounded_pareto_mean(alpha: float, lo: float, hi: float) -> float:
    """Closed-form mean of the bounded Pareto (for capacity estimates)."""
    if lo == hi:
        return float(lo)
    if math.isclose(alpha, 1.0):
        return lo * hi / (hi - lo) * math.log(hi / lo)
    la = lo ** alpha
    frac = la / (1.0 - (lo / hi) ** alpha)
    return frac * alpha / (alpha - 1.0) * (lo ** (1.0 - alpha)
                                           - hi ** (1.0 - alpha))
