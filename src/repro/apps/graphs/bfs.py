"""Level-synchronous distributed BFS over the simulated HPX runtime.

Vertices are hash-partitioned across localities; each BFS level expands
the local frontier, relaxes local edges directly and ships remote edges
as ``bfs_visit`` actions (tiny parcels — the parcel queue's aggregation
and the parcelports' small-message rates are what this stresses).  Levels
are separated by an allreduce over the global frontier size, using the
collectives layer.

Metrics follow graph-benchmark convention: traversed edges per second
(TEPS, in *virtual* time), levels, vertices reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ...hpx_rt.collectives import Collectives
from ...hpx_rt.runtime import HpxRuntime

__all__ = ["make_graph", "DistributedBfs", "BfsResult"]


def make_graph(n_vertices: int, avg_degree: float,
               rng: np.random.Generator) -> List[List[int]]:
    """A synthetic scale-free-ish undirected graph (adjacency lists).

    Preferential attachment by degree-biased sampling: vertex v connects
    to ``avg_degree/2`` earlier vertices chosen proportionally to
    (approximate) current degree — giving the skewed degree distribution
    that makes graph traffic irregular.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    half = max(1, int(round(avg_degree / 2)))
    adj: List[Set[int]] = [set() for _ in range(n_vertices)]
    # seed: a small clique so early draws have targets
    for v in range(1, min(4, n_vertices)):
        adj[v].add(v - 1)
        adj[v - 1].add(v)
    targets: List[int] = list(range(min(4, n_vertices)))
    for v in range(len(targets), n_vertices):
        for _ in range(half):
            u = int(targets[rng.integers(0, len(targets))])
            if u != v:
                adj[v].add(u)
                adj[u].add(v)
                targets.append(u)
        targets.append(v)
    return [sorted(s) for s in adj]


@dataclass
class BfsResult:
    """Outcome of one distributed BFS."""

    root: int
    levels: int
    visited: int
    edges_traversed: int
    time_us: float
    parents: Dict[int, int] = field(default_factory=dict)

    @property
    def teps(self) -> float:
        """Traversed edges per (virtual) second."""
        return self.edges_traversed / (self.time_us * 1e-6) \
            if self.time_us > 0 else 0.0


class DistributedBfs:
    """Runs BFS over a partitioned graph on a (not yet booted) runtime."""

    def __init__(self, runtime: HpxRuntime, adjacency: List[List[int]]):
        self.rt = runtime
        self.adj = adjacency
        self.n = len(adjacency)
        self.n_loc = len(runtime.localities)
        self.coll = Collectives(runtime, prefix="bfs_coll")
        # hash partition (graph-benchmark style)
        self.owner = [v % self.n_loc for v in range(self.n)]
        # per-locality state
        self.parent: Dict[int, int] = {}
        self.frontier: List[Set[int]] = [set() for _ in range(self.n_loc)]
        self.next_frontier: List[Set[int]] = [set()
                                              for _ in range(self.n_loc)]
        self.edges = 0
        #: per-level message accounting for termination detection —
        #: level-synchronous BFS implementations count sent vs received
        #: relaxations because a barrier alone only proves everyone has
        #: *finished sending*, not that the messages have landed
        self._sent = 0
        self._received = 0
        runtime.register_action("bfs_visit", self._act_visit)

    # ------------------------------------------------------------------
    def _discover(self, v: int, parent: int) -> None:
        """Mark v discovered (owner-local call)."""
        if v not in self.parent:
            self.parent[v] = parent
            self.next_frontier[self.owner[v]].add(v)

    def _act_visit(self, worker, v: int, parent: int):
        self._received += 1
        self._discover(v, parent)
        return None

    def _make_level_task(self, lid: int, done_latch):
        """One locality's work for the current level."""
        def level(worker):
            mine = sorted(self.frontier[lid])
            for v in mine:
                for u in self.adj[v]:
                    self.edges += 1
                    dst = self.owner[u]
                    if dst == lid:
                        self._discover(u, v)
                    else:
                        self._sent += 1
                        yield from worker.locality.apply(
                            worker, dst, "bfs_visit", (u, v),
                            arg_sizes=[8, 8])
            done_latch.count_down()
        return level

    # ------------------------------------------------------------------
    def run(self, root: int = 0,
            max_events: Optional[int] = None) -> BfsResult:
        """Execute the BFS; boots the runtime if needed."""
        if not 0 <= root < self.n:
            raise ValueError(f"root {root} out of range")
        driver = self.rt.sim.process(self._main(root), name="bfs")
        self.rt.run_until(driver, max_events=max_events)
        return driver.value

    def _main(self, root: int):
        rt = self.rt
        t0 = rt.now
        self.parent[root] = root
        self.frontier[self.owner[root]].add(root)
        levels = 0
        while True:
            # run one level on every locality
            latch = rt.new_latch(self.n_loc)
            for lid in range(self.n_loc):
                rt.locality(lid).spawn(self._make_level_task(lid, latch),
                                       name=f"bfs_lvl{levels}")
            yield latch.wait()
            # settle: barrier (everyone finished sending), then drain
            # until every sent visit has been received
            yield from self._settle(levels)
            while self._received < self._sent:
                yield rt.sim.timeout(5.0)
            levels += 1
            # promote next frontier; stop when globally empty
            total_next = 0
            for lid in range(self.n_loc):
                self.frontier[lid] = self.next_frontier[lid]
                self.next_frontier[lid] = set()
                total_next += len(self.frontier[lid])
            if total_next == 0:
                break
        return BfsResult(root=root, levels=levels,
                         visited=len(self.parent),
                         edges_traversed=self.edges,
                         time_us=rt.now - t0,
                         parents=dict(self.parent))

    def _settle(self, level: int):
        """Barrier across localities via the collectives layer."""
        rt = self.rt
        latch = rt.new_latch(self.n_loc)

        def make(lid):
            def task(worker):
                yield from self.coll.barrier(worker, f"bfs_lvl{level}")
                latch.count_down()
            return task

        for lid in range(self.n_loc):
            rt.locality(lid).spawn(make(lid))
        yield latch.wait()

    # ------------------------------------------------------------------
    # verification helper
    # ------------------------------------------------------------------
    def reference_bfs(self, root: int) -> Tuple[Dict[int, int], int]:
        """Sequential BFS for validating the distributed run."""
        from collections import deque
        depth = {root: 0}
        q = deque([root])
        while q:
            v = q.popleft()
            for u in self.adj[v]:
                if u not in depth:
                    depth[u] = depth[v] + 1
                    q.append(u)
        return depth, max(depth.values()) + 1 if depth else 0
