"""Distributed graph analytics on the simulated runtime.

The paper's introduction motivates AMTs with "irregular problems such as
graph algorithms and sparse numerical solvers" (and LCI itself was first
used to accelerate distributed graph analytics [11]).  This package
provides that workload class: a synthetic scale-free graph partitioned
across localities and a level-synchronous distributed BFS whose frontier
exchanges are exactly the small, irregular, high-rate messages the
parcelports differ on.
"""

from .bfs import BfsResult, DistributedBfs, make_graph

__all__ = ["make_graph", "DistributedBfs", "BfsResult"]
