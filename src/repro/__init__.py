"""repro — simulation-based reproduction of the SC-W 2023 paper
"Design and Analysis of the Network Software Stack of an Asynchronous
Many-task System — The LCI parcelport of HPX" (Yan, Kaiser, Snir).

Layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event kernel
* :mod:`repro.netsim` — NICs + InfiniBand-like fabric
* :mod:`repro.mpi_sim` / :mod:`repro.lci_sim` — the two communication
  libraries under study
* :mod:`repro.hpx_rt` — the HPX-like asynchronous many-task runtime
* :mod:`repro.parcelport` — the MPI and LCI parcelports (the paper's
  contribution) with every Table-1 variant
* :mod:`repro.apps` — the Octo-Tiger-like application benchmark
* :mod:`repro.bench` — workloads and per-figure drivers

Quick start::

    from repro import make_runtime
    rt = make_runtime("lci_psr_cq_pin_i")   # see examples/quickstart.py
"""

from .faults import FaultInjector, FaultPlan, ParcelSendError, RetryPolicy
from .flow import FlowControlPolicy, ParcelShedError
from .hpx_rt import (EXPANSE, LAPTOP, ROSTAM, CostModel, HpxRuntime,
                     PlatformSpec, platform_by_name)
from .parcelport import (ALL_LCI_VARIANTS, PPConfig, TABLE1,
                         make_parcelport_factory)

__version__ = "1.0.0"

__all__ = [
    "HpxRuntime", "PlatformSpec", "CostModel",
    "EXPANSE", "ROSTAM", "LAPTOP", "platform_by_name",
    "PPConfig", "TABLE1", "ALL_LCI_VARIANTS", "make_parcelport_factory",
    "FaultPlan", "RetryPolicy", "FaultInjector", "ParcelSendError",
    "FlowControlPolicy", "ParcelShedError",
    "make_runtime",
    "__version__",
]


def make_runtime(config: "PPConfig | str", platform=LAPTOP,
                 n_localities: int = 2, **kw) -> HpxRuntime:
    """Convenience constructor: runtime + parcelport from a Table-1 string."""
    if isinstance(config, str):
        config = PPConfig.parse(config)
    factory = make_parcelport_factory(config)
    return HpxRuntime(platform, n_localities, factory,
                      immediate=config.immediate, **kw)
