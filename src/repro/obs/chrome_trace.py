"""Perfetto / Chrome ``trace_event`` exporter and text timeline renderer.

Converts a :class:`~repro.obs.spans.SpanRecorder` into the JSON object
format chrome://tracing and https://ui.perfetto.dev both open:

* each locality becomes a **process** (``pid``), each worker / progress
  thread a **thread** (``tid``), with ``M`` metadata events naming both;
* spans become paired ``B``/``E`` duration events, instants become
  ``i`` events;
* wire legs additionally emit ``s``/``f`` **flow arrows** from the source
  locality's ``net`` row to the destination's, so a message's hop across
  localities is drawn as an arc (keyed by the wire ``msg_id``).

Timestamps are virtual microseconds, which is exactly the unit the
``trace_event`` format expects — no scaling needed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .spans import Span, SpanRecorder

__all__ = ["to_chrome_events", "to_chrome_trace", "to_merged_chrome_trace",
           "write_chrome_trace", "validate_chrome_trace", "render_timeline"]

#: pid used for records with no locality (loc == -1: fabric-global events)
_GLOBAL_PID_OFFSET = 99


class _TidMap:
    """Stable (pid, thread-name) → integer tid mapping + metadata events."""

    def __init__(self) -> None:
        self._map: Dict[Tuple[int, str], int] = {}
        self._next: Dict[int, int] = {}
        self.meta: List[dict] = []

    def tid(self, pid: int, name: str) -> int:
        key = (pid, name or "?")
        tid = self._map.get(key)
        if tid is None:
            tid = self._next.get(pid, 0)
            self._next[pid] = tid + 1
            self._map[key] = tid
            self.meta.append({
                "ph": "M", "name": "thread_name", "ts": 0,
                "pid": pid, "tid": tid,
                "args": {"name": name or "?"}})
        return tid


def _pid_for(loc: int, pid_base: int) -> int:
    return pid_base + (loc if loc >= 0 else _GLOBAL_PID_OFFSET)


def to_chrome_events(recorder: SpanRecorder, pid_base: int = 0,
                     label: str = "") -> List[dict]:
    """The raw ``traceEvents`` list for one recorder.

    ``pid_base`` offsets every pid, so traces from several runs can be
    merged into one file without colliding; ``label`` prefixes the
    process names.
    """
    tids = _TidMap()
    events: List[dict] = []
    seen_pids: Dict[int, int] = {}
    now = recorder.sim.now
    for sp in recorder.spans:
        pid = _pid_for(sp.loc, pid_base)
        if pid not in seen_pids:
            seen_pids[pid] = sp.loc
        tid = tids.tid(pid, sp.tid)
        args = {k: v for k, v in sp.fields.items()
                if isinstance(v, (int, float, str, bool)) or v is None}
        name = f"{sp.cat}:{sp.name}"
        if sp.kind == "instant":
            events.append({"ph": "i", "name": name, "cat": sp.cat,
                           "ts": sp.t0, "pid": pid, "tid": tid, "s": "t",
                           "args": args})
            continue
        t1 = sp.t1 if sp.t1 is not None else now  # still-open span
        events.append({"ph": "B", "name": name, "cat": sp.cat,
                       "ts": sp.t0, "pid": pid, "tid": tid, "args": args})
        events.append({"ph": "E", "name": name, "cat": sp.cat,
                       "ts": t1, "pid": pid, "tid": tid})
        if sp.cat == "wire" and "dst" in sp.fields:
            # Flow arrow: source net row at injection → dest net row at
            # arrival, keyed by the wire-level msg_id.
            dst_pid = _pid_for(int(sp.fields["dst"]), pid_base)
            if dst_pid not in seen_pids:
                seen_pids[dst_pid] = int(sp.fields["dst"])
            flow_id = int(sp.fields.get("msg_id", sp.sid))
            events.append({"ph": "s", "name": "net", "cat": "wire",
                           "id": flow_id, "ts": sp.t0, "pid": pid,
                           "tid": tid})
            events.append({"ph": "f", "bp": "e", "name": "net",
                           "cat": "wire", "id": flow_id, "ts": t1,
                           "pid": dst_pid,
                           "tid": tids.tid(dst_pid, "net")})
    for pid, loc in sorted(seen_pids.items()):
        pname = (f"L{loc}" if loc >= 0 else "fabric")
        if label:
            pname = f"{label}/{pname}"
        events.append({"ph": "M", "name": "process_name", "ts": 0,
                       "pid": pid, "tid": 0, "args": {"name": pname}})
    events.extend(tids.meta)
    events.sort(key=lambda e: (e["ph"] != "M", e["ts"]))
    return events


def to_chrome_trace(recorder: SpanRecorder, pid_base: int = 0,
                    label: str = "") -> dict:
    """The full JSON-object-format document for one recorder."""
    return {
        "traceEvents": to_chrome_events(recorder, pid_base=pid_base,
                                        label=label),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "spec": str(recorder.spec),
            "spans": len(recorder),
            "dropped": recorder.dropped,
            "virtual_time_us": recorder.sim.now,
        },
    }


def to_merged_chrome_trace(runs: List[Tuple[SpanRecorder, str]]) -> dict:
    """Merge several labelled runs into one document.

    Each run's localities get a disjoint pid range (0, 100, 200, …) so,
    e.g., an MPI and an LCI run of the same workload can be compared
    side by side in one Perfetto window.
    """
    events: List[dict] = []
    runs_meta: List[dict] = []
    for i, (rec, label) in enumerate(runs):
        events.extend(to_chrome_events(rec, pid_base=100 * i, label=label))
        runs_meta.append({"label": label, "spec": str(rec.spec),
                          "spans": len(rec), "dropped": rec.dropped,
                          "virtual_time_us": rec.sim.now})
    events.sort(key=lambda e: (e["ph"] != "M", e["ts"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "runs": runs_meta},
    }


def write_chrome_trace(recorder: SpanRecorder, path: str,
                       pid_base: int = 0, label: str = "") -> dict:
    """Export to ``path``; returns the written document."""
    doc = to_chrome_trace(recorder, pid_base=pid_base, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema check of a trace document; returns a list of problems
    (empty list == valid).

    Checks what chrome://tracing actually requires: a ``traceEvents``
    list, ``ph``/``ts``/``pid``/``tid`` on every event, numeric
    timestamps, balanced and properly nested ``B``/``E`` pairs per
    thread, and ``id`` on flow events.
    """
    errors: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a 'traceEvents' key"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    stacks: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event #{i} is not an object")
            continue
        for key in ("ph", "ts", "pid", "tid"):
            if key not in ev:
                errors.append(f"event #{i} missing required key {key!r}")
        ph = ev.get("ph")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"event #{i} has non-numeric ts {ts!r}")
            continue
        row = (ev.get("pid"), ev.get("tid"))
        if ph in ("B", "E"):
            if ts < last_ts.get(row, float("-inf")):
                errors.append(f"event #{i} ts goes backwards on row {row}")
            last_ts[row] = ts
            stack = stacks.setdefault(row, [])
            if ph == "B":
                stack.append((ev.get("name", ""), ts))
            else:
                if not stack:
                    errors.append(f"event #{i}: E with no open B on "
                                  f"row {row}")
                else:
                    bname, bts = stack.pop()
                    if ev.get("name") not in (None, bname):
                        errors.append(
                            f"event #{i}: E name {ev.get('name')!r} does "
                            f"not match open B {bname!r} on row {row}")
        elif ph in ("s", "f", "t"):
            if "id" not in ev:
                errors.append(f"event #{i}: flow event missing 'id'")
    for row, stack in stacks.items():
        if stack:
            errors.append(f"row {row}: {len(stack)} unclosed B event(s): "
                          f"{[n for n, _ in stack[:3]]}")
    return errors


def render_timeline(recorder: SpanRecorder,
                    categories: Optional[List[str]] = None,
                    mid: Optional[int] = None,
                    limit: int = 200) -> str:
    """Human-readable chronological dump (the text analogue of the
    Perfetto view), optionally filtered to some categories or one
    message's lifecycle chain."""
    spans = [sp for sp in recorder.spans
             if (categories is None or sp.cat in categories)
             and (mid is None or sp.fields.get("mid") == mid)]
    spans.sort(key=lambda sp: (sp.t0, sp.sid))
    lines = []
    for sp in spans[:limit]:
        where = f"L{sp.loc}" if sp.loc >= 0 else "--"
        if sp.kind == "instant":
            span_part = "            ·"
        elif sp.t1 is None:
            span_part = "      (open)…"
        else:
            span_part = f"{sp.dur:12.3f}u"
        extra = " ".join(f"{k}={v}" for k, v in sp.fields.items())
        lines.append(f"[{sp.t0:12.3f}] {span_part} {where:<4}"
                     f"{sp.tid:<14} {sp.cat}:{sp.name}"
                     + (f"  {extra}" if extra else ""))
    if len(spans) > limit:
        lines.append(f"... ({len(spans) - limit} more)")
    return "\n".join(lines)
