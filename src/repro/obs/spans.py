"""Span/event recorder: the observability substrate of :mod:`repro.obs`.

A :class:`SpanRecorder` collects **spans** (begin/end intervals of virtual
time) and **instants** (zero-duration events) from every layer of the
stack.  Each record carries:

* a **category** (``parcel``, ``msg``, ``chunk``, ``wire``, ``progress``,
  ``lock``, ``flow``) used for filtering,
* a **locality** id and a **thread** id (worker name, ``"net"`` for wire
  legs, progress-thread names),
* free-form **correlation fields** — most importantly ``mid``, the
  :class:`~repro.hpx_rt.parcel.HpxMessage` id that links every record of
  one message's lifecycle into a causal chain
  (submit → serialize → backlog wait → header/chunks → wire → progress
  poll → delivery → ack).

Recording is pure bookkeeping: no call here ever yields to the simulator
or charges CPU, so an *enabled* recorder adds zero **simulated** time,
and a disabled one (``runtime.obs is None``) leaves every hot path
byte-identical to the seed — the same contract as ``flow_policy=None``.

The trace-spec grammar (the CLI's ``--trace=SPEC``) is a comma-separated
token list: raw category names, the preset ``parcel`` (the full message
lifecycle: everything except raw lock traffic), or ``all``.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..sim.core import Simulator

__all__ = ["Span", "SpanRecorder", "parse_trace_spec", "payload_mid",
           "CATEGORIES", "TRACE_PRESETS"]

#: every category any instrumentation site emits under
CATEGORIES: FrozenSet[str] = frozenset(
    {"parcel", "msg", "chunk", "wire", "progress", "lock", "flow"})

#: spec presets; ``None`` means "everything" (no filtering at all)
TRACE_PRESETS: Dict[str, Optional[FrozenSet[str]]] = {
    "parcel": frozenset({"parcel", "msg", "chunk", "wire", "progress",
                         "flow"}),
    "lifecycle": frozenset({"parcel", "msg", "chunk", "wire", "progress",
                            "flow"}),
    "all": None,
}


def parse_trace_spec(spec: "str | Iterable[str] | bool | None"
                     ) -> Optional[FrozenSet[str]]:
    """Parse a ``--trace`` spec into a category set (None = everything).

    Accepts ``True``/``None`` (everything), a comma-separated string of
    presets and/or raw category names, or an iterable of category names.
    Unknown tokens raise ``ValueError``.
    """
    if spec is None or spec is True:
        return None
    if not isinstance(spec, str):
        cats = frozenset(spec)
        bad = cats - CATEGORIES
        if bad:
            raise ValueError(f"unknown trace categories {sorted(bad)}; "
                             f"known: {sorted(CATEGORIES)}")
        return cats
    tokens = [t.strip() for t in spec.split(",") if t.strip()]
    if not tokens:
        raise ValueError("empty trace spec (use 'parcel' or 'all')")
    out: set = set()
    for tok in tokens:
        if tok in TRACE_PRESETS:
            preset = TRACE_PRESETS[tok]
            if preset is None:
                return None
            out |= preset
        elif tok in CATEGORIES:
            out.add(tok)
        else:
            raise ValueError(
                f"unknown trace token {tok!r}; known presets "
                f"{sorted(TRACE_PRESETS)} and categories "
                f"{sorted(CATEGORIES)}")
    return frozenset(out)


class Span:
    """One recorded interval (or instant) of virtual time."""

    __slots__ = ("sid", "cat", "name", "loc", "tid", "t0", "t1", "kind",
                 "fields")

    def __init__(self, sid: int, cat: str, name: str, loc: int, tid: str,
                 t0: float, t1: Optional[float], kind: str,
                 fields: Dict[str, Any]):
        self.sid = sid
        self.cat = cat
        self.name = name
        self.loc = loc
        self.tid = tid
        self.t0 = t0
        self.t1 = t1          #: None while the span is still open
        self.kind = kind      #: "span" | "instant"
        self.fields = fields

    @property
    def dur(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.t1:.3f}" if self.t1 is not None else "…"
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return (f"<Span#{self.sid} {self.cat}/{self.name} "
                f"L{self.loc}:{self.tid} [{self.t0:.3f},{end}]us {extra}>")


def payload_mid(kind: str, payload: Any) -> Tuple[Optional[int], str]:
    """Decode a :class:`~repro.netsim.message.NetMsg` payload into
    ``(mid, part)`` where ``part`` classifies the wire leg.

    Understands every payload shape the two simulated libraries put on
    the wire; returns ``(None, ...)`` for control traffic that carries no
    HPX-message correlation (CTS, tag releases, acks).
    """
    inner = payload
    if kind in ("lci_medium", "lci_put"):
        # (payload, ctx) / (payload, ctx, size)
        inner = payload[0] if isinstance(payload, tuple) else payload
    elif kind == "lci_rts":
        # an LciOp whose .payload is the library-level payload
        inner = getattr(payload, "payload", None)
    elif kind in ("lci_cts", "lci_data"):
        # (sop, rop): the send op carries the original payload
        sop = payload[0] if isinstance(payload, tuple) else None
        inner = getattr(sop, "payload", None)
        part = "ctl" if kind == "lci_cts" else "data"
        mid, _ = _inner_mid(inner)
        return mid, part
    elif kind == "mpi_rts":
        # (req, size, payload)
        inner = payload[2] if isinstance(payload, tuple) else None
    elif kind == "mpi_cts":
        # (sreq, rreq): the send request's value is the original payload
        sreq = payload[0] if isinstance(payload, tuple) else None
        mid, _ = _inner_mid(getattr(sreq, "value", None))
        return mid, "ctl"
    elif kind == "mpi_data":
        # (payload_or_None, rreq, last)
        inner = payload[0] if isinstance(payload, tuple) else None
        mid, _ = _inner_mid(inner)
        return mid, "data"
    return _inner_mid(inner)


def _inner_mid(inner: Any) -> Tuple[Optional[int], str]:
    """Classify a library-level payload tuple (the parcelports' shapes)."""
    if isinstance(inner, tuple) and inner:
        tag = inner[0]
        if tag == "hdr":
            msg = inner[1]
            return getattr(msg, "mid", None), "hdr"
        if tag == "chunk":
            mid = inner[2] if len(inner) > 2 else None
            return mid, "chunk"
        if tag == "ack":
            return None, "ack"
        if tag == "tag_release":
            return None, "ctl"
    return None, "ctl"


class SpanRecorder:
    """Bounded in-memory span store with category filtering.

    All methods are safe to call from any simulation context (they never
    yield); they return quickly when the category is filtered out.  At
    ``capacity`` further records are counted in :attr:`dropped` instead
    of stored, so a runaway trace degrades instead of exhausting memory.
    """

    def __init__(self, sim: Simulator,
                 spec: "str | Iterable[str] | bool | None" = "all",
                 capacity: int = 1_000_000):
        self.sim = sim
        self.spec = spec
        self.categories = parse_trace_spec(spec)
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._sid = itertools.count()

    # -- recording ---------------------------------------------------------
    def wants(self, cat: str) -> bool:
        return self.categories is None or cat in self.categories

    def begin(self, cat: str, name: str, loc: int = -1, tid: str = "",
              **fields: Any) -> Optional[Span]:
        """Open a span at the current virtual time; returns None if the
        category is filtered (pass the result to :meth:`end` either way)."""
        if not self.wants(cat):
            return None
        sp = Span(next(self._sid), cat, name, loc, tid, self.sim.now, None,
                  "span", fields)
        self._store(sp)
        return sp

    def end(self, span: Optional[Span], **fields: Any) -> None:
        """Close a span opened by :meth:`begin` (None-safe)."""
        if span is None:
            return
        span.t1 = self.sim.now
        if fields:
            span.fields.update(fields)

    def instant(self, cat: str, name: str, loc: int = -1, tid: str = "",
                **fields: Any) -> None:
        """Record a zero-duration event."""
        if not self.wants(cat):
            return
        t = self.sim.now
        self._store(Span(next(self._sid), cat, name, loc, tid, t, t,
                         "instant", fields))

    def complete(self, cat: str, name: str, t0: float, t1: float,
                 loc: int = -1, tid: str = "", **fields: Any) -> None:
        """Record an already-finished span (both endpoints known)."""
        if not self.wants(cat):
            return
        self._store(Span(next(self._sid), cat, name, loc, tid, t0, t1,
                         "span", fields))

    def _store(self, span: Span) -> None:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(span)

    # -- record the wire directly off a NetMsg -----------------------------
    def wire_arrival(self, msg: Any, dst_node: int) -> None:
        """One wire leg completed (called by the NIC at delivery time)."""
        if not self.wants("wire"):
            return
        mid, part = payload_mid(msg.kind, msg.payload)
        self.complete("wire", msg.kind, msg.inject_t, self.sim.now,
                      loc=msg.src, tid="net", msg_id=msg.msg_id, mid=mid,
                      part=part, src=msg.src, dst=dst_node, size=msg.size,
                      corrupted=msg.corrupted)

    def wire_fault(self, msg: Any, verdict: str) -> None:
        """A fault verdict on a wire leg (drop / corrupt)."""
        if not self.wants("wire"):
            return
        mid, part = payload_mid(msg.kind, msg.payload)
        self.instant("wire", verdict, loc=msg.src, tid="net",
                     msg_id=msg.msg_id, mid=mid, part=part, dst=msg.dst,
                     size=msg.size)

    # -- querying ----------------------------------------------------------
    def query(self, cat: Optional[str] = None, name: Optional[str] = None,
              **field_eq: Any) -> List[Span]:
        """All spans matching category/name and field equality filters."""
        out = []
        for sp in self.spans:
            if cat is not None and sp.cat != cat:
                continue
            if name is not None and sp.name != name:
                continue
            if field_eq and any(sp.fields.get(k) != v
                                for k, v in field_eq.items()):
                continue
            out.append(sp)
        return out

    def by_mid(self) -> Dict[int, List[Span]]:
        """Index every mid-correlated span by its HPX-message id."""
        out: Dict[int, List[Span]] = {}
        for sp in self.spans:
            mid = sp.fields.get("mid")
            if mid is not None:
                out.setdefault(mid, []).append(sp)
        return out

    def __len__(self) -> int:
        return len(self.spans)
