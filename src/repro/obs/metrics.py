"""Metrics registry: counters, gauges and histograms behind one namespace.

The runtime's ad-hoc reporting (``fault_summary()``, ``flow_summary()``,
per-component :class:`~repro.sim.stats.StatSet` bags) grew organically;
this registry absorbs them behind a single queryable namespace with
dotted metric names (``fault.retransmits``, ``flow.L0.backlog_peak``,
``pp.header_sends``, ``obs.wire_us`` …).

Histograms reuse :func:`repro.sim.stats.percentile`, so p50/p90/p99 here
agree exactly with :class:`~repro.sim.stats.TimeSeries` percentiles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from ..sim.stats import percentile, summarize

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "build_runtime_metrics"]


class Counter:
    """Monotonic count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def as_dict(self) -> Dict[str, float]:
        return {self.name: self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def as_dict(self) -> Dict[str, float]:
        return {self.name: self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Sample distribution with percentile summaries."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, v: float) -> None:
        self.values.append(float(v))

    def observe_many(self, vs) -> None:
        self.values.extend(float(v) for v in vs)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return summarize(self.values)["mean"]

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p90(self) -> float:
        return self.percentile(90.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def as_dict(self) -> Dict[str, float]:
        return {f"{self.name}.count": float(self.count),
                f"{self.name}.mean": self.mean,
                f"{self.name}.p50": self.p50(),
                f"{self.name}.p90": self.p90(),
                f"{self.name}.p99": self.p99(),
                f"{self.name}.max": self.max}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name} n={self.count} "
                f"p50={self.p50():.3g} p99={self.p99():.3g}>")


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Dotted-namespace registry of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name)
        elif not isinstance(m, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(m).__name__}, not {cls.__name__}")
        return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- querying ----------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def query(self, prefix: str = "") -> Dict[str, Metric]:
        """All metrics whose name starts with ``prefix``."""
        return {k: v for k, v in self._metrics.items()
                if k.startswith(prefix)}

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, float]:
        """Flattened name → value view (histograms expand to summaries)."""
        out: Dict[str, float] = {}
        for m in self._metrics.values():
            out.update(m.as_dict())
        return out

    def render(self, prefix: str = "") -> str:
        flat = {}
        for name, m in sorted(self.query(prefix).items()):
            flat.update(m.as_dict())
        width = max((len(k) for k in flat), default=0)
        return "\n".join(f"{k:<{width}}  {v:g}"
                         for k, v in sorted(flat.items()))

    def __len__(self) -> int:
        return len(self._metrics)


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}", v, out)
    else:
        try:
            out[prefix] = float(value)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            pass


def build_runtime_metrics(rt: Any) -> MetricsRegistry:
    """One registry view over a finished :class:`~repro.hpx_rt.runtime.
    HpxRuntime`: fault counters, flow gauges, parcelport/layer/worker
    stats, plus latency histograms derived from the span recorder when
    tracing was on."""
    reg = MetricsRegistry()
    for k, v in rt.fault_summary().items():
        reg.counter(f"fault.{k}").inc(v)
    flat: Dict[str, float] = {}
    for k, v in rt.flow_summary().items():
        _flatten(f"flow.{k}", v, flat)
    for k, v in flat.items():
        reg.gauge(k).set(v)
    reg.gauge("sim.virtual_time_us").set(rt.now)
    reg.counter("wire.msgs").inc(rt.fabric.stats.counters.get("msgs", 0))
    reg.counter("wire.bytes").inc(rt.fabric.stats.accum.get("bytes", 0.0))
    for loc in rt.localities:
        pp = loc.parcelport
        if pp is not None:
            for k, v in pp.stats.counters.items():
                reg.counter(f"pp.{k}").inc(v)
        if loc.parcel_layer is not None:
            for k, v in loc.parcel_layer.stats.counters.items():
                reg.counter(f"layer.{k}").inc(v)
        for w in loc.workers:
            reg.counter("worker.cpu_us").inc(
                w.stats.accum.get("cpu_us", 0.0))
            reg.counter("worker.compute_us").inc(
                w.stats.accum.get("compute_us", 0.0))
            reg.counter("worker.lock_wait_us").inc(
                w.stats.accum.get("lock_wait_us", 0.0))
    ad = getattr(rt, "adapt", None)
    if ad is not None:
        reg.counter("adapt.ticks").inc(ad.ticks)
        reg.counter("adapt.retunes").inc(sum(ad.retunes.values()))
        for knob, n in sorted(ad.retunes.items()):
            reg.counter(f"adapt.retune.{knob}").inc(n)
        st = ad.state
        reg.gauge("adapt.agg_hold_bytes").set(float(st.agg_hold_bytes))
        reg.gauge("adapt.eager_scale").set(float(st.eager_scale))
        reg.gauge("adapt.progress_pinned").set(
            1.0 if st.progress_pinned else 0.0)
        shares = [dev.progress_wait_share()
                  for loc in rt.localities
                  for dev in getattr(loc.parcelport, "devices", ())]
        if shares:
            reg.gauge("adapt.progress_wait_share").set(max(shares))
    serve = getattr(rt, "serve_stats", None)
    if serve is not None:
        for k, v in serve.counters.items():
            reg.counter(f"serve.{k}").inc(v)
        lat = serve.series.get("latency_us")
        if lat is not None and len(lat):
            h = reg.histogram("serve.latency_us")
            h.observe_many(lat.values())
    obs = getattr(rt, "obs", None)
    if obs is not None:
        reg.counter("obs.spans").inc(len(obs))
        reg.counter("obs.dropped").inc(obs.dropped)
        wire = reg.histogram("obs.wire_us")
        for sp in obs.query(cat="wire"):
            if sp.kind == "span" and sp.t1 is not None:
                wire.observe(sp.dur)
        rx = reg.histogram("obs.rx_wait_us")
        for sp in obs.query(cat="progress", name="poll"):
            w = sp.fields.get("rx_wait")
            if w is not None:
                rx.observe(w)
    return reg
