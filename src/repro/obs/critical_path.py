"""Critical-path analysis: where does a parcel's latency actually go?

Given a traced run, this module reconstructs every delivered message's
lifecycle chain and decomposes its end-to-end latency into the stages
the paper argues about (Fig. 7's runtime breakdown):

``serialize``
    CPU time spent flattening parcels into an :class:`HpxMessage`.
``backlog_wait``
    Time the message sat in the flow-control backlog waiting for credit.
``sender_post``
    Sender-side posting work between serialization and the header hitting
    the wire (connection setup, packet-pool acquisition, tag assignment).
``wire``
    Fabric time of the header leg (injection → arrival at the receiver).
``progress_lock_wait``
    Receiver-window time spent under (or waiting on) the MPI progress
    lock — the paper's "spinning on the blocking lock of ucp_progress"
    pathology.  Computed as the overlap between the receive window
    [header arrival, delivery] and the merged hold∪wait intervals of the
    destination's ``progress/mpi`` spans.
``progress_poll``
    The LCI analogue: overlap with the destination's ``progress/lci``
    spans (lock-free polling of CQs/sync objects).
``rx_other``
    The remainder of the receive window: deserialization, handler
    scheduling, chunk transfers not already covered.

The components of one message sum exactly to its delivery latency
(t_delivered − t_serialize_start), so aggregate totals can never exceed
total virtual time × localities.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .spans import Span, SpanRecorder

__all__ = ["Chain", "CriticalPathReport", "build_chains", "analyze"]

#: decomposition stages, in causal order
STAGES = ("serialize", "backlog_wait", "sender_post", "wire",
          "progress_lock_wait", "progress_poll", "rx_other")


class Chain:
    """One message's causally-ordered lifecycle records + decomposition."""

    __slots__ = ("mid", "spans", "t_ser0", "t_ser1", "t_inject", "t_arrive",
                 "t_delivered", "src", "dst", "parts", "retransmits",
                 "fallback", "components")

    def __init__(self, mid: int, spans: List[Span]):
        self.mid = mid
        self.spans = sorted(spans, key=lambda sp: (sp.t0, sp.sid))
        self.t_ser0: Optional[float] = None
        self.t_ser1: Optional[float] = None
        self.t_inject: Optional[float] = None
        self.t_arrive: Optional[float] = None
        self.t_delivered: Optional[float] = None
        self.src = -1
        self.dst = -1
        self.parts: List[str] = []
        self.retransmits = 0
        self.fallback = False
        self.components: Dict[str, float] = {}

    @property
    def complete(self) -> bool:
        return (self.t_ser0 is not None and self.t_arrive is not None
                and self.t_delivered is not None)

    @property
    def latency(self) -> float:
        if self.t_ser0 is None or self.t_delivered is None:
            return 0.0
        return self.t_delivered - self.t_ser0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Chain mid={self.mid} L{self.src}->L{self.dst} "
                f"lat={self.latency:.3f}us spans={len(self.spans)} "
                f"retx={self.retransmits}>")


def _merge_intervals(ivs: List[Tuple[float, float]]
                     ) -> List[Tuple[float, float]]:
    if not ivs:
        return []
    ivs = sorted(ivs)
    out = [ivs[0]]
    for lo, hi in ivs[1:]:
        plo, phi = out[-1]
        if lo <= phi:
            out[-1] = (plo, max(phi, hi))
        else:
            out.append((lo, hi))
    return out


def _overlap(window: Tuple[float, float],
             ivs: List[Tuple[float, float]]) -> float:
    w0, w1 = window
    total = 0.0
    for lo, hi in ivs:
        if hi <= w0:
            continue
        if lo >= w1:
            break
        total += min(hi, w1) - max(lo, w0)
    return total


def build_chains(recorder: SpanRecorder) -> Dict[int, Chain]:
    """Group mid-correlated spans into per-message lifecycle chains and
    extract the causal anchor timestamps from each."""
    chains: Dict[int, Chain] = {}
    for mid, spans in recorder.by_mid().items():
        ch = Chain(mid, spans)
        for sp in ch.spans:
            key = (sp.cat, sp.name)
            if sp.cat == "parcel" and sp.name == "serialize":
                if ch.t_ser0 is None:
                    ch.t_ser0 = sp.t0
                    ch.t_ser1 = sp.t1 if sp.t1 is not None else sp.t0
                    ch.src = sp.loc
            elif sp.cat == "wire":
                if sp.kind == "span":
                    ch.parts.append(str(sp.fields.get("part", "?")))
                    if sp.fields.get("part") == "hdr" and ch.t_inject is None:
                        ch.t_inject = sp.t0
                        ch.t_arrive = sp.t1
                        ch.dst = int(sp.fields.get("dst", -1))
            elif key == ("msg", "delivered"):
                if ch.t_delivered is None:
                    ch.t_delivered = sp.t0
                    if ch.dst < 0:
                        ch.dst = sp.loc
            elif key == ("msg", "retransmit"):
                ch.retransmits += 1
            elif key == ("msg", "eager_fallback"):
                ch.fallback = True
        chains[mid] = ch
    return chains


def _decompose(ch: Chain, lock_ivs: Dict[int, List[Tuple[float, float]]],
               poll_ivs: Dict[int, List[Tuple[float, float]]],
               backlog: Dict[int, float]) -> None:
    """Fill ``ch.components`` (sums exactly to ``ch.latency``)."""
    comp = {s: 0.0 for s in STAGES}
    if not ch.complete:
        ch.components = comp
        return
    comp["serialize"] = (ch.t_ser1 or ch.t_ser0) - ch.t_ser0
    bl = min(backlog.get(ch.mid, 0.0),
             max(0.0, ch.t_inject - (ch.t_ser1 or ch.t_ser0)))
    comp["backlog_wait"] = bl
    comp["sender_post"] = max(
        0.0, ch.t_inject - (ch.t_ser1 or ch.t_ser0) - bl)
    comp["wire"] = ch.t_arrive - ch.t_inject
    rx = (ch.t_arrive, ch.t_delivered)
    if rx[1] > rx[0]:
        lock = _overlap(rx, lock_ivs.get(ch.dst, []))
        remaining_ivs = poll_ivs.get(ch.dst, [])
        poll = _overlap(rx, remaining_ivs)
        # lock and poll intervals come from disjoint transports, but clamp
        # anyway so the residual can never go negative
        span = rx[1] - rx[0]
        lock = min(lock, span)
        poll = min(poll, span - lock)
        comp["progress_lock_wait"] = lock
        comp["progress_poll"] = poll
        comp["rx_other"] = span - lock - poll
    ch.components = comp


class CriticalPathReport:
    """Aggregate decomposition over every complete chain of a run."""

    def __init__(self, chains: Dict[int, Chain], wall_us: float):
        self.chains = chains
        self.wall_us = wall_us
        done = [c for c in chains.values() if c.complete]
        self.n_complete = len(done)
        self.n_total = len(chains)
        self.totals: Dict[str, float] = {s: 0.0 for s in STAGES}
        self.total_latency = 0.0
        self.retransmits = sum(c.retransmits for c in chains.values())
        for c in done:
            for s in STAGES:
                self.totals[s] += c.components.get(s, 0.0)
            self.total_latency += c.latency

    def shares(self) -> Dict[str, float]:
        """Each stage's share of total delivery latency (0..1)."""
        if self.total_latency <= 0.0:
            return {s: 0.0 for s in STAGES}
        return {s: self.totals[s] / self.total_latency for s in STAGES}

    @property
    def dominant(self) -> str:
        """The stage carrying the most aggregate latency."""
        return max(STAGES, key=lambda s: self.totals[s])

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chains": self.n_total,
            "complete": self.n_complete,
            "retransmits": self.retransmits,
            "wall_us": self.wall_us,
            "total_latency_us": self.total_latency,
            "dominant": self.dominant,
            "totals_us": dict(self.totals),
            "shares": self.shares(),
        }

    def render(self) -> str:
        lines = [f"critical path over {self.n_complete}/{self.n_total} "
                 f"delivered messages "
                 f"(wall {self.wall_us:.1f}us, "
                 f"retransmits {self.retransmits})"]
        shares = self.shares()
        for s in STAGES:
            bar = "#" * int(round(40 * shares[s]))
            lines.append(f"  {s:<18} {self.totals[s]:>12.1f}us "
                         f"{100 * shares[s]:6.2f}%  {bar}")
        lines.append(f"  {'total':<18} {self.total_latency:>12.1f}us "
                     f"(dominant: {self.dominant})")
        return "\n".join(lines)


def analyze(recorder: SpanRecorder) -> CriticalPathReport:
    """Build chains, decompose each, and aggregate into a report."""
    chains = build_chains(recorder)

    # Receiver-side interval indexes, per locality.  MPI hold spans carry
    # the preceding wait in their ``wait_us`` field: the blocked interval
    # [t_acq - wait, t_acq] is part of the same convoy, so hold and wait
    # merge into one "stuck behind the progress lock" interval.
    lock_ivs: Dict[int, List[Tuple[float, float]]] = {}
    for sp in recorder.query(cat="progress", name="mpi"):
        if sp.t1 is None:
            continue
        wait = float(sp.fields.get("wait_us", 0.0) or 0.0)
        lock_ivs.setdefault(sp.loc, []).append((sp.t0 - wait, sp.t1))
    for loc in lock_ivs:
        lock_ivs[loc] = _merge_intervals(lock_ivs[loc])

    poll_ivs: Dict[int, List[Tuple[float, float]]] = {}
    for sp in recorder.query(cat="progress", name="lci"):
        if sp.t1 is not None:
            poll_ivs.setdefault(sp.loc, []).append((sp.t0, sp.t1))
    for loc in poll_ivs:
        poll_ivs[loc] = _merge_intervals(poll_ivs[loc])

    backlog: Dict[int, float] = {}
    for sp in recorder.query(cat="flow", name="backlog_wait"):
        if sp.t1 is not None and sp.fields.get("mid") is not None:
            mid = sp.fields["mid"]
            backlog[mid] = backlog.get(mid, 0.0) + sp.dur

    for ch in chains.values():
        _decompose(ch, lock_ivs, poll_ivs, backlog)
    return CriticalPathReport(chains, recorder.sim.now)
