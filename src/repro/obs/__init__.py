"""repro.obs — span-based observability for the simulated network stack.

Three layers:

* :mod:`repro.obs.spans` — the :class:`SpanRecorder` every component
  reports into (per-parcel lifecycle tracing, correlation by message id);
* :mod:`repro.obs.chrome_trace` — Perfetto/Chrome ``trace_event`` JSON
  export plus a text timeline renderer;
* :mod:`repro.obs.critical_path` — latency decomposition per message
  (serialize / backlog / post / wire / progress-lock wait / poll),
  reproducing the paper's Fig. 7 narrative mechanically;
* :mod:`repro.obs.metrics` — counters/gauges/histograms registry that
  absorbs ``fault_summary()`` / ``flow_summary()`` behind one namespace.

Recording is opt-in (``make_runtime(..., trace="parcel")``); a disabled
recorder leaves the simulation byte-identical to the seed, an enabled
one adds zero *simulated* time.
"""

from .spans import (CATEGORIES, TRACE_PRESETS, Span, SpanRecorder,
                    parse_trace_spec, payload_mid)
from .chrome_trace import (render_timeline, to_chrome_events,
                           to_chrome_trace, to_merged_chrome_trace,
                           validate_chrome_trace, write_chrome_trace)
from .critical_path import (Chain, CriticalPathReport, analyze,
                            build_chains)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      build_runtime_metrics)

__all__ = [
    "CATEGORIES", "TRACE_PRESETS", "Span", "SpanRecorder",
    "parse_trace_spec", "payload_mid",
    "render_timeline", "to_chrome_events", "to_chrome_trace",
    "to_merged_chrome_trace", "validate_chrome_trace", "write_chrome_trace",
    "Chain", "CriticalPathReport", "analyze", "build_chains",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "build_runtime_metrics",
]
