"""End-to-end flow control and overload protection for the simulated stack.

The paper's central LCI design point is *explicit control of communication
resources* (§2.1): eager sends draw from a bounded registered packet pool
and fail with a retry status on exhaustion — the user decides when to
retry.  This module supplies the policy knobs the layers above use to
react sensibly instead of retrying blindly with unbounded queues:

* **credit-based receiver flow control** — per-peer credit windows kept
  by :class:`~repro.parcelport.reliability.ReliabilityLayer` and
  replenished by the end-to-end acks of the PR-1 reliability protocol,
  so a slow receiver throttles its senders instead of accumulating
  unbounded in-flight state;
* **bounded sender backlogs** — parcelports queue at most
  ``max_backlog`` deferred messages per destination and report
  ``would_block`` upward when full;
* **backpressure in the parcel layer** — ``put_parcel`` either *defers*
  (the producing task is throttled, driving background progress until
  capacity returns) or *sheds* (the parcel is dropped, counted, sampled,
  and reported through ``on_parcel_failure``), per the configured
  overflow policy;
* **adaptive pool-exhaustion reaction** — exponential-backoff retry of
  eager sends and automatic eager→rendezvous fallback when the packet
  pool stays dry (the rendezvous path needs no pool packet).

A ``None`` policy (the default everywhere) adds zero simulated cost and
zero behavioral change: flow-control-free runs are byte-identical to a
build without this module, mirroring the :mod:`repro.faults` contract.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowControlPolicy", "ParcelShedError",
           "SEND_OK", "SEND_QUEUED", "SEND_WOULD_BLOCK",
           "OVERFLOW_DEFER", "OVERFLOW_SHED"]

#: statuses returned by :meth:`~repro.parcelport.base.Parcelport.submit_message`
SEND_OK = "sent"                 #: chain initiated immediately
SEND_QUEUED = "queued"           #: parked in the sender backlog
SEND_WOULD_BLOCK = "would_block"  #: backlog full — caller must defer/shed

#: overflow policies for a full backlog / parcel queue
OVERFLOW_DEFER = "defer"
OVERFLOW_SHED = "shed"


class ParcelShedError(Exception):
    """A parcel was shed by the overload-protection layer (never sent)."""


@dataclass(frozen=True)
class FlowControlPolicy:
    """Every knob of the end-to-end backpressure machinery.

    All limits of 0 mean "unbounded" (that aspect disabled).  The credit
    window is only enforced when the reliability layer is active (the
    acks it rides on do not exist otherwise); the backlog, queue bound
    and pool-backoff knobs work with or without reliability.
    """

    #: max unacked HPX messages per destination (0 = unlimited); consumed
    #: at submit, replenished when the end-to-end ack arrives
    credit_window: int = 64
    #: max messages parked per destination in the parcelport backlog
    #: waiting for credit (0 = unbounded)
    max_backlog: int = 128
    #: max parcels queued per destination in the parcel layer before
    #: ``put_parcel`` defers or sheds (0 = unbounded)
    max_queued_parcels: int = 1024
    #: what to do when a bound is hit: "defer" throttles the producer
    #: until capacity returns; "shed" drops the parcel (counted,
    #: sampled, reported through ``on_parcel_failure``)
    overflow: str = OVERFLOW_DEFER
    #: how many shed parcels to keep for diagnostics
    shed_sample: int = 64
    #: first retry wait after a packet-pool exhaustion (µs)
    pool_retry_base_us: float = 1.0
    #: multiplicative backoff per consecutive exhaustion
    pool_retry_backoff: float = 2.0
    #: backoff ceiling (µs)
    pool_retry_max_us: float = 64.0
    #: eager chunk sends fall back to the rendezvous path (which needs no
    #: pool packet) after this many consecutive pool failures; must be
    #: >= 1 so the fallback can never fire on an un-squeezed pool
    rendezvous_fallback_after: int = 4

    def __post_init__(self) -> None:
        if self.credit_window < 0:
            raise ValueError("credit_window must be >= 0")
        if self.max_backlog < 0:
            raise ValueError("max_backlog must be >= 0")
        if self.max_queued_parcels < 0:
            raise ValueError("max_queued_parcels must be >= 0")
        if self.overflow not in (OVERFLOW_DEFER, OVERFLOW_SHED):
            raise ValueError(
                f"overflow must be 'defer' or 'shed', not {self.overflow!r}")
        if self.shed_sample < 0:
            raise ValueError("shed_sample must be >= 0")
        if self.pool_retry_base_us <= 0.0:
            raise ValueError("pool_retry_base_us must be positive")
        if self.pool_retry_backoff < 1.0:
            raise ValueError("pool_retry_backoff must be >= 1")
        if self.pool_retry_max_us < self.pool_retry_base_us:
            raise ValueError("pool_retry_max_us must be >= pool_retry_base_us")
        if self.rendezvous_fallback_after < 1:
            raise ValueError("rendezvous_fallback_after must be >= 1")

    def pool_wait_us(self, attempt: int) -> float:
        """Backoff wait after the ``attempt``-th consecutive exhaustion."""
        return min(self.pool_retry_base_us
                   * self.pool_retry_backoff ** attempt,
                   self.pool_retry_max_us)
