"""Tuning constants of the simulated LCI library."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["LciParams", "DEFAULT_LCI_PARAMS"]


@dataclass(frozen=True)
class LciParams:
    """Cost/threshold model of the LCI layer (µs / bytes).

    Contrast with :class:`repro.mpi_sim.params.MpiParams`: matching is a
    hash table (O(1) per lookup, no linear scans), the progress engine uses
    a **try lock** (contenders fail fast instead of convoying), and
    completion can go to queues, synchronizers or handlers.

    The multithreading penalties (``caller_switch_penalty_us``,
    ``contention_factor``) model what the paper's profiling found for the
    ``mt`` configurations: thread contention and cache misses in the
    progress engine when many worker threads call it, versus a single
    pinned progress thread that keeps its state cache-hot.
    """

    #: medium (eager) vs long (rendezvous) switch — LCI packet size class
    eager_threshold: int = 8192
    #: number of LCI devices per process (the paper uses 1 and names
    #: replicating them as future work, §7.2); each device gets its own
    #: packet pool, matching table, progress engine and RX channel
    num_devices: int = 1
    #: sender-side pre-registered packet pool size
    packet_count: int = 4096
    #: packet pool fetch/return (one atomic op)
    pool_op_us: float = 0.03
    #: completion-queue push (progress side) and pop (consumer side)
    cq_push_us: float = 0.15
    cq_pop_us: float = 0.05
    #: synchronizer signal (progress side) / test (consumer side)
    sync_signal_us: float = 0.25
    sync_test_us: float = 0.25
    #: matching-table ops (hashed buckets, O(1))
    match_insert_us: float = 0.06
    match_lookup_us: float = 0.06
    #: one progress invocation's fixed overhead
    progress_base_us: float = 0.10
    #: max RX messages drained per progress call
    progress_batch: int = 16
    #: wasted CPU when the progress try-lock is already held
    trylock_fail_us: float = 0.04
    #: dynamic-put target buffer allocation
    alloc_us: float = 0.15
    #: per-kind progress dispatch costs
    put_dispatch_us: float = 0.55
    medium_dispatch_us: float = 0.30
    rndv_dispatch_us: float = 0.25
    #: progress-side cost of stashing an unexpected medium message
    #: (packet retention + queue maintenance) — the "additional load on the
    #: progress engine" the paper blames for sendrecv's lower rates (§4.1)
    unexpected_handling_us: float = 1.30
    #: matching-table contention: worker-side posts (recvm/recvl reposts)
    #: inflate progress-side matching costs by this factor per unit of
    #: recent-post pressure
    match_contention_factor: float = 0.80
    #: sliding window for matching-table pressure (µs)
    match_window_us: float = 10.0
    #: extra handling-cost multiplier added when the progress caller changes
    #: (cold caches: the paper's "thread contention and cache misses")
    caller_switch_penalty: float = 0.8
    #: handling-cost multiplier per unit of concurrent-caller pressure
    contention_factor: float = 0.25
    #: cap on the total contention multiplier — calibrated so a dedicated
    #: progress thread beats worker-thread progress by the paper's ~2.6x
    max_contention_mult: float = 3.2
    #: window for counting distinct recent progress callers (µs)
    caller_window_us: float = 8.0
    memcpy_per_byte_us: float = 0.0001
    wire_header_bytes: int = 32

    def with_(self, **kw) -> "LciParams":
        return replace(self, **kw)


DEFAULT_LCI_PARAMS = LciParams()
