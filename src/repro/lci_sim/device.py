"""The LCI device: endpoint, hashed matching table, try-lock progress engine.

One device per locality (the paper's future-work section notes exactly this
"one LCI device per process" design and its contention consequences).

Communication primitives (all non-blocking generators, worker context):

* :meth:`LciDevice.sendm` / :meth:`LciDevice.recvm` — two-sided medium
  (eager) messages through the packet pool;
* :meth:`LciDevice.sendl` / :meth:`LciDevice.recvl` — two-sided long
  messages via an RTS/CTS rendezvous, zero-copy;
* :meth:`LciDevice.putva` — one-sided dynamic put: the target buffer is
  allocated by the LCI runtime on arrival and an entry is pushed to the
  device's pre-configured completion queue (``put_target_cq``).

The progress engine (:meth:`progress`) uses a try lock — concurrent callers
fail fast — and its per-message handling cost inflates with the number of
*distinct recent callers* (cache-cold progress state) and concurrent-caller
pressure, per the paper's profiling of the ``mt`` configurations.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from typing import Any, Deque, Dict, Optional

from ..netsim.message import NetMsg
from ..netsim.nic import Nic
from ..obs.spans import payload_mid
from ..sim.core import Simulator
from ..sim.primitives import ContentionMeter, TryLock
from ..sim.stats import StatSet
from .completion import CompletionQueue, Synchronizer
from .packet_pool import PacketPool
from .params import DEFAULT_LCI_PARAMS, LciParams

__all__ = ["LciDevice", "LciOp"]

_op_ids = itertools.count()


class LciOp:
    """State of one pending LCI operation (send or receive)."""

    __slots__ = ("kind", "peer", "size", "tag", "comp", "ctx", "oid",
                 "payload")

    def __init__(self, kind: str, peer: int, size: int, tag: int,
                 comp, ctx: Any = None, payload: Any = None):
        self.kind = kind        # "sendm"|"sendl"|"recvm"|"recvl"
        self.peer = peer
        self.size = size
        self.tag = tag
        self.comp = comp
        self.ctx = ctx
        self.payload = payload
        self.oid = next(_op_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LciOp#{self.oid} {self.kind} tag={self.tag} {self.size}B>"


class _CallerMeter:
    """Counts distinct progress callers seen within a sliding window."""

    __slots__ = ("window_us", "_last_seen")

    def __init__(self, window_us: float):
        self.window_us = window_us
        self._last_seen: Dict[Any, float] = {}

    def touch(self, caller: Any, now: float) -> int:
        """Record a call; return the number of distinct recent callers
        (including this one)."""
        last_seen = self._last_seen
        last_seen[caller] = now
        if len(last_seen) == 1:
            # Single caller (the pinned-progress-thread case): it was
            # just touched, so it is trivially within the window.
            return 1
        horizon = now - self.window_us
        if len(last_seen) > 64:  # prune stale entries
            self._last_seen = last_seen = {
                c: t for c, t in last_seen.items() if t >= horizon}
        # C-level count of entries within the window (t >= horizon); this
        # runs on every progress call, so no Python-level loop here.
        return sum(map(horizon.__le__, last_seen.values()))


class LciDevice:
    """One locality's LCI endpoint."""

    def __init__(self, sim: Simulator, nic: Nic, rank: int,
                 params: LciParams = DEFAULT_LCI_PARAMS, vchan: int = 0):
        self.sim = sim
        self.nic = nic
        self.rank = rank
        self.params = params
        #: virtual channel: one per device, so multi-device endpoints
        #: (§7.2 future work) get independent RX queues and progress state
        self.vchan = vchan
        nic.ensure_vchans(vchan + 1)
        # The pool consults the fault injector (if any) for pool-squeeze
        # windows — registered-memory pressure is a per-node fault.
        injector = nic.fabric.injector if nic.fabric is not None else None
        self.pool = PacketPool(sim, params, name=f"lci{rank}.d{vchan}.pool",
                               injector=injector, node=rank)
        self.progress_lock = TryLock(sim, f"lci{rank}.d{vchan}.progress",
                                     fail_cost=params.trylock_fail_us)
        #: hashed matching table: tag -> posted receive ops (FIFO)
        self._posted: Dict[int, Deque[LciOp]] = defaultdict(deque)
        #: hashed unexpected store: tag -> arrived-but-unmatched messages
        self._unexpected: Dict[int, Deque[NetMsg]] = defaultdict(deque)
        #: completion queue for incoming dynamic puts (pre-configured —
        #: the paper notes puts can currently *only* complete into a CQ)
        self.put_target_cq: Optional[CompletionQueue] = None
        self._callers = _CallerMeter(params.caller_window_us)
        self._last_caller: Any = None
        #: matching-table pressure: worker threads posting receives contend
        #: with the progress engine on the match buckets (§4.1's "overhead
        #: of posting receives and matching sends to receives")
        self._match_meter = ContentionMeter(tau_us=params.match_window_us)
        self.stats = StatSet(f"lci{rank}")
        #: optional callable invoked after timer-driven completion signals
        #: (long-send local completions) so idle consumers wake promptly.
        self.notify = None
        #: span recorder (None => tracing off, zero overhead)
        self.obs = None
        #: adaptive state (repro.adapt); None keeps the configured
        #: thresholds — set by the AdaptiveController when adaptation is on
        self.adapt = None

    def progress_wait_share(self) -> float:
        """Fraction of progress attempts that found the engine lock held.

        The adaptive controller's progress-contention signal: a high share
        means workers convoy on the trylock and a pinned progress thread
        would serve them better; ~0 means the engine is mostly idle.
        """
        calls = self.stats.get("progress_calls")
        contended = self.stats.get("progress_contended")
        attempts = calls + contended
        return contended / attempts if attempts else 0.0

    # ------------------------------------------------------------------
    # send-side primitives (generators, worker context)
    # ------------------------------------------------------------------
    def sendm(self, worker, dst: int, size: int, tag: int, comp,
              ctx: Any = None, payload: Any = None):
        """Generator → bool. Medium eager send; False = pool empty, retry.

        Completes *locally* at injection: the data was copied into a
        registered packet, so the user buffer is immediately reusable.
        """
        p = self.params
        yield worker.cpu(p.pool_op_us)
        if not self.pool.try_acquire():
            return False
        yield worker.cpu(size * p.memcpy_per_byte_us)  # copy into packet
        post_cost = self.nic.post_send(NetMsg(
            src=self.rank, dst=dst, size=size + p.wire_header_bytes,
            kind="lci_medium", tag=tag, payload=(payload, ctx),
            vchan=self.vchan))
        yield worker.cpu(post_cost)
        self.pool.release_at(self.nic.tx.busy_until - self.sim.now)
        if comp is not None:
            yield worker.cpu(comp.signal_cost_us)
            comp.signal(("send", ctx))
        self.stats.inc("sendm")
        return True

    def putva(self, worker, dst: int, size: int, ctx: Any = None,
              payload: Any = None, assembled_in_place: bool = False):
        """Generator → bool. One-sided dynamic put (the ``psr`` header path).

        With ``assembled_in_place`` the caller built the message directly
        in the LCI packet (the parcelport's trick in §3.2.1), skipping the
        copy that :meth:`sendm` pays.
        """
        p = self.params
        yield worker.cpu(p.pool_op_us)
        if not self.pool.try_acquire():
            return False
        if not assembled_in_place:
            yield worker.cpu(size * p.memcpy_per_byte_us)
        post_cost = self.nic.post_send(NetMsg(
            src=self.rank, dst=dst, size=size + p.wire_header_bytes,
            kind="lci_put", tag=None, payload=(payload, ctx, size),
            vchan=self.vchan))
        yield worker.cpu(post_cost)
        self.pool.release_at(self.nic.tx.busy_until - self.sim.now)
        self.stats.inc("putva")
        return True

    def sendl(self, worker, dst: int, size: int, tag: int, comp,
              ctx: Any = None, payload: Any = None):
        """Generator → True. Long (rendezvous) send, zero-copy.

        ``comp`` signals once the target has pulled the data and the
        source buffer is reusable.
        """
        p = self.params
        op = LciOp("sendl", dst, size, tag, comp, ctx, payload)
        post_cost = self.nic.post_send(NetMsg(
            src=self.rank, dst=dst, size=p.wire_header_bytes,
            kind="lci_rts", tag=tag, payload=op, vchan=self.vchan))
        yield worker.cpu(post_cost)
        self.stats.inc("sendl")
        return True

    # ------------------------------------------------------------------
    # receive-side primitives
    # ------------------------------------------------------------------
    def _pop_unexpected(self, tag: int) -> Optional[NetMsg]:
        bucket = self._unexpected.get(tag)
        if not bucket:
            return None
        msg = bucket.popleft()
        if not bucket:
            del self._unexpected[tag]
        return msg

    def recvm(self, worker, tag: int, size: int, comp, ctx: Any = None):
        """Generator. Post a medium receive (hash-bucket matching).

        The check-unexpected / insert-posted step mutates the matching
        table *atomically* (at one simulation instant, before any cost is
        charged) — the bucket lock in real LCI guarantees exactly this, and
        yielding in between would let a concurrent progress call miss the
        receive both ways.
        """
        p = self.params
        self._match_meter.touch(self.sim.now)
        msg = self._pop_unexpected(tag)
        if msg is None:
            op = LciOp("recvm", -1, size, tag, comp, ctx)
            self._posted[tag].append(op)
            self.stats.inc("recvm_posted")
            yield worker.cpu(p.match_lookup_us + p.match_insert_us)
            return
        if msg.kind == "lci_rts":
            # An eager→rendezvous fallback sender (pool exhaustion) beat
            # this receive post: answer the buffered RTS with a CTS, the
            # data then completes this op exactly like a matched medium.
            op = LciOp("recvm", -1, size, tag, comp, ctx)
            self.stats.inc("recvm_rndv_matched")
            yield worker.cpu(p.match_lookup_us)
            yield from self._send_cts(worker, msg.src, msg.payload, op)
            return
        self.stats.inc("recvm_unexpected")
        # copy from the retained packet into the user buffer, free packet
        yield worker.cpu(p.match_lookup_us + p.unexpected_handling_us * 0.5)
        yield worker.cpu(msg.size * p.memcpy_per_byte_us)
        yield worker.cpu(comp.signal_cost_us)
        payload, sctx = msg.payload
        comp.signal(("recv", ctx, payload))

    def recvl(self, worker, tag: int, size: int, comp, ctx: Any = None):
        """Generator. Post a long receive; answers a buffered RTS if any.

        Same atomic check+insert discipline as :meth:`recvm`.
        """
        p = self.params
        self._match_meter.touch(self.sim.now)
        op = LciOp("recvl", -1, size, tag, comp, ctx)
        msg = self._pop_unexpected(tag)
        if msg is None:
            self._posted[tag].append(op)
            self.stats.inc("recvl_posted")
            yield worker.cpu(p.match_lookup_us + p.match_insert_us)
            return
        self.stats.inc("recvl_unexpected")
        yield worker.cpu(p.match_lookup_us)
        yield from self._send_cts(worker, msg.src, msg.payload, op)

    # ------------------------------------------------------------------
    # progress engine
    # ------------------------------------------------------------------
    def progress(self, worker, caller: Any):
        """Generator → int: messages handled, or -1 if the try-lock failed.

        ``caller`` identifies the calling thread for the cache-locality
        model: a pinned progress thread keeps a constant caller id and
        stays cache-hot; alternating worker threads pay the switch
        penalty and contention inflation.
        """
        ok, val = self.try_begin_progress(caller)
        if not ok:
            yield worker.cpu(val)
            return -1
        return (yield from self._progress_body(worker, val))

    def try_begin_progress(self, caller: Any):
        """Non-generator head of :meth:`progress`: cache-model touch plus
        the engine try-lock.  Returns ``(False, trylock_fail_us)`` when
        contended — the caller charges that and moves on without ever
        building a progress generator (the mt-mode event storm) — or
        ``(True, mult)`` with the lock HELD, in which case the caller must
        drive :meth:`_progress_body` to completion."""
        p = self.params
        pressure = self._callers.touch(caller, self.sim.now)
        if not self.progress_lock.try_acquire():
            self.stats.inc("progress_contended")
            return False, p.trylock_fail_us
        mult = 1.0 + p.contention_factor * max(0, pressure - 1)
        if caller != self._last_caller:
            mult += p.caller_switch_penalty
            self._last_caller = caller
        return True, min(mult, p.max_contention_mult)

    def _progress_body(self, worker, mult: float):
        """Generator → int: the locked section of :meth:`progress`."""
        p = self.params
        self.stats.inc("progress_calls")
        t0 = self.sim.now
        yield worker.cpu(p.progress_base_us * mult)
        handled = 0
        try:
            for _ in range(p.progress_batch):
                msg = self.nic.poll_rx(self.vchan)
                if msg is None:
                    break
                yield worker.cpu(self.nic.params.rx_overhead_us * mult)
                if self.obs is not None:
                    mid, part = payload_mid(msg.kind, msg.payload)
                    self.obs.instant("progress", "poll", loc=self.rank,
                                     tid=worker.name, msg_id=msg.msg_id,
                                     mid=mid, part=part, kind=msg.kind,
                                     rx_wait=self.sim.now - msg.arrive_t)
                yield from self._dispatch(worker, msg, mult)
                handled += 1
        finally:
            self.progress_lock.release()
        if self.obs is not None:
            self.obs.complete("progress", "lci", t0, self.sim.now,
                              loc=self.rank, tid=worker.name,
                              handled=handled, vchan=self.vchan)
        if handled:
            self.stats.inc("msgs_progressed", handled)
        return handled

    def _dispatch(self, worker, msg: NetMsg, mult: float):
        p = self.params
        kind = msg.kind
        if msg.corrupted:
            yield from self._dispatch_corrupted(worker, msg, mult)
            return
        # Two-sided traffic contends with worker-side receive posts on the
        # matching table; one-sided puts bypass it entirely.
        match_mult = mult * (1.0 + p.match_contention_factor
                             * self._match_meter.pressure(self.sim.now))
        if kind == "lci_medium":
            # Match-or-stash is atomic (one sim instant); costs follow.
            op = self._pop_posted(msg.tag)
            if op is None:
                self._unexpected[msg.tag].append(msg)
                self.stats.inc("medium_unexpected")
            yield worker.cpu((p.medium_dispatch_us + p.match_lookup_us)
                             * match_mult)
            if op is not None:
                yield worker.cpu(msg.size * p.memcpy_per_byte_us)
                yield worker.cpu(op.comp.signal_cost_us * mult)
                payload, sctx = msg.payload
                op.comp.signal(("recv", op.ctx, payload))
                self.stats.inc("medium_matched")
            else:
                yield worker.cpu(p.unexpected_handling_us * match_mult)
        elif kind == "lci_put":
            yield worker.cpu(p.put_dispatch_us * mult)
            yield worker.cpu(p.alloc_us * mult)   # dynamic target buffer
            cq = self.put_target_cq
            if cq is None:
                raise RuntimeError(
                    f"lci{self.rank}: dynamic put arrived but no "
                    "pre-configured completion queue is set")
            payload, ctx, size = msg.payload
            yield worker.cpu(cq.signal_cost_us * mult)
            cq.signal(("put", ctx, payload, size))
            self.stats.inc("puts_delivered")
        elif kind == "lci_rts":
            # Match-or-stash is atomic (one sim instant); costs follow.
            # Any posted-receive kind matches: a recvm is a legitimate
            # partner when the sender fell back from eager to rendezvous
            # on pool exhaustion (its completion shape is identical).
            op = self._pop_posted(msg.tag)
            if op is None:
                self._unexpected[msg.tag].append(msg)
                self.stats.inc("rts_unexpected")
            yield worker.cpu((p.rndv_dispatch_us + p.match_lookup_us)
                             * match_mult)
            if op is not None:
                yield from self._send_cts(worker, msg.src, msg.payload, op)
            else:
                yield worker.cpu(p.unexpected_handling_us * 0.5 * match_mult)
        elif kind == "lci_cts":
            # At the sender: stream the long data, zero-copy.
            yield worker.cpu(p.rndv_dispatch_us * mult)
            sop, rop = msg.payload
            post_cost = self.nic.post_send(NetMsg(
                src=self.rank, dst=msg.src,
                size=sop.size + p.wire_header_bytes, kind="lci_data",
                tag=sop.tag, payload=(sop, rop), vchan=self.vchan))
            yield worker.cpu(post_cost)
            if sop.comp is not None:
                # Source buffer reusable once the NIC drained it.
                delay = max(0.0, self.nic.tx.busy_until - self.sim.now)
                self.sim.schedule_call1(delay, self._signal_send_done, sop)
            self.stats.inc("cts_handled")
        elif kind == "lci_data":
            yield worker.cpu(p.rndv_dispatch_us * mult)
            sop, rop = msg.payload
            yield worker.cpu(rop.comp.signal_cost_us * mult)
            rop.comp.signal(("recv", rop.ctx, sop.payload))
            self.stats.inc("long_recvs")
        else:  # pragma: no cover - guarded by construction
            raise ValueError(f"unknown LCI wire message {kind!r}")

    def _dispatch_corrupted(self, worker, msg: NetMsg, mult: float):
        """A message whose payload failed its (modelled) integrity check.

        Matched two-sided operations complete with an ``("error", ctx,
        reason)`` status so the layer above can react; control messages
        (puts, RTS, CTS) and unmatched arrivals are discarded — recovery
        is the sender's retransmission layer's job.  Corrupted messages
        are never stashed in the unexpected store.
        """
        p = self.params
        kind = msg.kind
        yield worker.cpu(p.medium_dispatch_us * mult)  # checksum verify
        if kind == "lci_medium":
            op = self._pop_posted(msg.tag)
            if op is not None:
                yield worker.cpu(op.comp.signal_cost_us * mult)
                op.comp.signal(("error", op.ctx, "corrupt"))
                self.stats.inc("corrupt_errored")
                return
        elif kind == "lci_data":
            _sop, rop = msg.payload
            yield worker.cpu(rop.comp.signal_cost_us * mult)
            rop.comp.signal(("error", rop.ctx, "corrupt"))
            self.stats.inc("corrupt_errored")
            return
        self.stats.inc("corrupt_discarded")

    def cancel_recv(self, tag: int, comp=None) -> int:
        """Remove posted receives on ``tag`` (all, or only those completing
        into ``comp``); returns how many were cancelled.

        Used by the parcelport's reliability layer to reap receiver
        chains whose sender gave up — otherwise every abandoned chain
        leaks one posted op into the matching table forever.
        """
        bucket = self._posted.get(tag)
        if not bucket:
            return 0
        if comp is None:
            removed = len(bucket)
            bucket.clear()
        else:
            keep = [op for op in bucket if op.comp is not comp]
            removed = len(bucket) - len(keep)
            bucket.clear()
            bucket.extend(keep)
        if not bucket:
            del self._posted[tag]
        if removed:
            self.stats.inc("recvs_cancelled", removed)
        return removed

    def _signal_send_done(self, sop: LciOp) -> None:
        """Timer-driven long-send local completion (was a per-CTS closure)."""
        sop.comp.signal(("send", sop.ctx))
        if self.notify is not None:
            self.notify()

    def _send_cts(self, worker, dst: int, sop: LciOp, rop: LciOp):
        p = self.params
        yield worker.cpu(self.nic.params.rndv_handshake_us)
        post_cost = self.nic.post_send(NetMsg(
            src=self.rank, dst=dst, size=p.wire_header_bytes,
            kind="lci_cts", tag=sop.tag, payload=(sop, rop),
            vchan=self.vchan))
        yield worker.cpu(post_cost)
        self.stats.inc("cts_sent")

    def _pop_posted(self, tag: int, kind: Optional[str] = None
                    ) -> Optional[LciOp]:
        bucket = self._posted.get(tag)
        if not bucket:
            return None
        if kind is not None and bucket[0].kind != kind:
            return None
        op = bucket.popleft()
        if not bucket:
            del self._posted[tag]
        return op

    # -- introspection ---------------------------------------------------
    @property
    def posted_count(self) -> int:
        return sum(len(b) for b in self._posted.values())

    @property
    def unexpected_count(self) -> int:
        return sum(len(b) for b in self._unexpected.values())
