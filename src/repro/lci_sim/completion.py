"""LCI completion mechanisms: completion queues, synchronizers, handlers.

The paper's §2.1 'versatile communication interface': any communication
primitive can complete into any of these.  The cost asymmetry between
:class:`CompletionQueue` (one pop drains any completion) and
:class:`Synchronizer` (each must be polled individually) is what produces
the 25–30 % peak-rate gap and the oscillations of the ``sy`` variants in
Figs 5 and 6.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from ..sim.core import Simulator
from ..sim.stats import StatSet
from .params import LciParams

__all__ = ["CompletionQueue", "Synchronizer", "HandlerCompletion"]

_cq_ids = itertools.count()


class CompletionQueue:
    """MPSC completion queue (``LCI_queue_*`` semantics).

    ``signal`` is called from progress-engine context (its CPU cost is
    charged there via :attr:`LciParams.cq_push_us`); ``pop`` returns
    ``(entry | None, cpu_cost_us)`` for the consumer to charge itself.
    """

    __slots__ = ("sim", "name", "params", "_items", "stats", "max_depth")

    def __init__(self, sim: Simulator, params: LciParams, name: str = ""):
        self.sim = sim
        self.params = params
        self.name = name or f"lci_cq{next(_cq_ids)}"
        self._items: Deque[Any] = deque()
        self.stats = StatSet(self.name)
        self.max_depth = 0

    @property
    def signal_cost_us(self) -> float:
        return self.params.cq_push_us

    def signal(self, value: Any) -> None:
        self._items.append(value)
        self.stats.inc("signals")
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)

    def pop(self) -> Tuple[Optional[Any], float]:
        self.stats.inc("pops")
        if self._items:
            return self._items.popleft(), self.params.cq_pop_us
        self.stats.inc("empty_pops")
        return None, self.params.cq_pop_us * 0.5

    def __len__(self) -> int:
        return len(self._items)


class Synchronizer:
    """Single-operation completion object (MPI-request-like, §2.1).

    Each pending synchronizer must be polled individually (``test``),
    which is exactly the per-object overhead completion queues avoid.

    ``cancelled`` marks a synchronizer whose operation was aborted (a
    timed-out chain under fault injection): pending-list scans discard it
    instead of testing forever — without the flag, every aborted op leaks
    one permanently-pending synchronizer into the scan list.
    """

    __slots__ = ("signaled", "value", "cancelled")

    def __init__(self) -> None:
        self.signaled = False
        self.value: Any = None
        self.cancelled = False

    @property
    def signal_cost_us(self) -> float:
        # Synchronizers support multiple producers (§2.1), so a signal is
        # an atomic exchange + waker check — pricier than a CQ push.
        return 0.25

    def signal(self, value: Any) -> None:
        self.signaled = True
        self.value = value

    def test(self) -> bool:
        return self.signaled


class HandlerCompletion:
    """Function-handler completion: progress invokes ``fn(value)`` inline."""

    __slots__ = ("fn", "cost_us")

    def __init__(self, fn: Callable[[Any], None], cost_us: float = 0.10):
        self.fn = fn
        self.cost_us = cost_us

    @property
    def signal_cost_us(self) -> float:
        return self.cost_us

    def signal(self, value: Any) -> None:
        self.fn(value)
