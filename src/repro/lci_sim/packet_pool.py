"""Pre-registered eager packet pool.

LCI exposes its internal registered buffers (§2.1 'explicit control of
communication behaviors and resources'); eager sends take a packet from this
bounded pool and all LCI operations are non-blocking: on exhaustion the call
fails with a retry status and *the user decides when to retry*.
"""

from __future__ import annotations

from ..sim.core import Simulator
from ..sim.stats import StatSet
from .params import LciParams

__all__ = ["PacketPool"]


class PacketPool:
    """Bounded counter of free registered packets.

    With a fault ``injector``, active pool-squeeze windows shrink the
    effective capacity: acquires fail (the normal retry status) while
    ``in_use`` would exceed the squeezed cap, modelling registered-memory
    pressure without touching packets already in flight.
    """

    def __init__(self, sim: Simulator, params: LciParams, name: str = "pool",
                 injector=None, node: int = 0):
        self.sim = sim
        self.params = params
        self.name = name
        self.capacity = params.packet_count
        self.free = params.packet_count
        self.injector = injector
        self.node = node
        self.stats = StatSet(name)

    @property
    def op_cost_us(self) -> float:
        return self.params.pool_op_us

    def try_acquire(self) -> bool:
        """Take one packet; False (retry later) if the pool is empty."""
        self.stats.inc("acquires")
        if self.injector is not None:
            cap = self.injector.pool_cap(self.node, self.sim.now)
            if cap is not None and self.in_use >= cap:
                self.stats.inc("exhaustions")
                self.stats.inc("squeezed")
                return False
        if self.free <= 0:
            self.stats.inc("exhaustions")
            return False
        self.free -= 1
        return True

    def release(self) -> None:
        if self.free >= self.capacity:
            raise RuntimeError(f"{self.name}: double release")
        self.free += 1

    def release_at(self, delay_us: float) -> None:
        """Return a packet after ``delay_us`` (e.g. once NIC TX drained it)."""
        self.sim.schedule_call(max(0.0, delay_us), self.release)

    @property
    def in_use(self) -> int:
        return self.capacity - self.free
