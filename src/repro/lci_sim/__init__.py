"""Simulated LCI (Lightweight Communication Interface) library."""

from .completion import CompletionQueue, HandlerCompletion, Synchronizer
from .device import LciDevice, LciOp
from .packet_pool import PacketPool
from .params import DEFAULT_LCI_PARAMS, LciParams

__all__ = ["LciDevice", "LciOp", "CompletionQueue", "Synchronizer",
           "HandlerCompletion", "PacketPool", "LciParams",
           "DEFAULT_LCI_PARAMS"]
