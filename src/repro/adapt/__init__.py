"""Adaptive parcelport policies and the metrics-driven config auto-tuner.

``AdaptiveSpec`` configures a controller that retunes the aggregation
threshold, the eager/rendezvous cutoff and the LCI progress mode mid-run
from simulated runtime signals (``docs/TUNING.md``).  ``run_tune`` drives
a successive-halving search over ``PPConfig`` x adaptive-parameter space
through the cached parallel sweep engine (``repro-fig tune``).
"""

from .policy import AdaptiveController, AdaptiveSpec, AdaptiveState

__all__ = ["AdaptiveController", "AdaptiveSpec", "AdaptiveState"]
