"""Adaptive parcelport policies.

The LCI-parcelport paper freezes the aggregation threshold, the
eager/rendezvous cutoff and the progress-engine choice at construction
time (``PPConfig``); its analysis sections show each knob's best value is
workload-dependent.  This module makes the three knobs respond to runtime
feedback: an :class:`AdaptiveController` samples the stack's counters on a
fixed *simulated-time* cadence and retunes a shared :class:`AdaptiveState`
that the parcelports, the parcel layer and the network backends consult.

Design constraints (see ``docs/TUNING.md``):

* **Determinism** — the controller is an ordinary simulation process; its
  inputs are counters of the simulated machine and its outputs are state
  transitions at simulated timestamps.  Rerunning the same configuration
  reproduces the exact decision trace.  No wall-clock, no randomness.
* **Byte-identity when off** — every hook in the hot path is gated on
  ``adapt is not None``; a runtime built without ``adapt=`` executes the
  exact event schedule it executed before this module existed.
* **Hysteresis + bounded steps** — a knob moves only after a signal has
  been out of band for ``dwell_ticks`` consecutive ticks, moves by at most
  a factor of ``step``, and then rests for ``cooldown_ticks``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional

__all__ = ["AdaptiveSpec", "AdaptiveState", "AdaptiveController"]


@dataclass(frozen=True)
class AdaptiveSpec:
    """Controller parameters.  Frozen and hashable so tuner search points

    can embed a spec in a content-addressed cache key.
    """

    #: Controller cadence in simulated microseconds.
    interval_us: float = 50.0

    #: Initial aggregation hold (bytes).  0 = start with holding disabled;
    #: the controller raises it under backlog pressure.  A tuned config can
    #: pin a static hold by setting this > 0.
    agg_hold_init: int = 0
    #: Smallest non-zero hold the controller will set.
    agg_hold_start: int = 256
    #: Upper bound on the hold (bytes).
    agg_hold_max: int = 8192

    #: Initial multiplier on the backend eager/rendezvous threshold.
    eager_scale_init: float = 1.0
    eager_scale_min: float = 0.25
    eager_scale_max: float = 4.0

    #: Hysteresis bands (per-tick deltas unless noted).
    backlog_high: int = 8       # queued parcels across the runtime (gauge)
    backlog_low: int = 1
    stall_high: int = 1         # credit stalls per tick
    exhaust_high: int = 1       # packet-pool exhaustions per tick
    contention_high: float = 0.5  # progress-lock wait share
    contention_low: float = 0.05
    #: wire messages per tick at or below which the system counts as
    #: quiet (unpinning is considered only then — backlog gauges read 0
    #: for immediate-mode configs, so queue depth alone can't mean idle)
    quiet_wire_msgs: int = 2

    #: Consecutive out-of-band ticks required before a knob moves.
    dwell_ticks: int = 2
    #: Ticks a knob rests after moving.
    cooldown_ticks: int = 4
    #: Multiplicative step applied when a knob moves.
    step: float = 2.0
    #: Allow the controller to flip LCI progress between pin and worker.
    switch_progress: bool = True
    #: Cap on the recorded decision log (counters keep exact totals).
    max_decisions: int = 256

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ValueError("interval_us must be > 0")
        if self.agg_hold_init < 0 or self.agg_hold_start <= 0:
            raise ValueError("aggregation holds must be non-negative")
        if self.agg_hold_max < self.agg_hold_start:
            raise ValueError("agg_hold_max must be >= agg_hold_start")
        if not (0 < self.eager_scale_min <= self.eager_scale_max):
            raise ValueError("eager scale bounds must satisfy 0 < min <= max")
        if not (self.eager_scale_min <= self.eager_scale_init
                <= self.eager_scale_max):
            raise ValueError("eager_scale_init outside [min, max]")
        if self.backlog_low > self.backlog_high:
            raise ValueError("backlog_low must be <= backlog_high")
        if not (0.0 <= self.contention_low <= self.contention_high <= 1.0):
            raise ValueError("contention bands must satisfy 0 <= low <= high <= 1")
        if self.dwell_ticks < 1 or self.cooldown_ticks < 0:
            raise ValueError("dwell_ticks >= 1 and cooldown_ticks >= 0 required")
        if self.step <= 1.0:
            raise ValueError("step must be > 1")

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AdaptiveSpec":
        known = {f.name for f in fields(cls)}
        bad = sorted(set(d) - known)
        if bad:
            raise ValueError(f"unknown AdaptiveSpec fields: {bad}")
        return cls(**d)

    def with_(self, **kw: Any) -> "AdaptiveSpec":
        return replace(self, **kw)


class AdaptiveState:
    """The mutable knob values, shared by every locality's stack.

    One instance per runtime; parcelports, parcel layers, LCI devices and
    the MPI comm each hold a reference and read it on their hot paths.
    """

    __slots__ = ("spec", "agg_hold_bytes", "eager_scale", "progress_pinned")

    def __init__(self, spec: AdaptiveSpec, progress_pinned: bool):
        self.spec = spec
        self.agg_hold_bytes = spec.agg_hold_init
        self.eager_scale = spec.eager_scale_init
        self.progress_pinned = progress_pinned

    def eager_cutoff(self, base: int) -> int:
        """The effective eager/rendezvous threshold for a backend whose

        configured threshold is ``base`` bytes.
        """
        return int(base * self.eager_scale)


class AdaptiveController:
    """Samples runtime signals on a simulated cadence and retunes the

    shared :class:`AdaptiveState`.  Built by ``HpxRuntime.boot`` after the
    parcelports and parcel layers exist but before they start.
    """

    def __init__(self, runtime: Any, spec: AdaptiveSpec):
        self.rt = runtime
        self.spec = spec
        pinned = any(
            getattr(loc.parcelport, "reserves_progress_core", False)
            for loc in runtime.localities)
        self.state = AdaptiveState(spec, pinned)
        self.ticks = 0
        self.retunes: Dict[str, int] = {}
        self.decisions: List[Dict[str, Any]] = []
        self._has_lci = False
        # Last-seen cumulative counters; per-tick signals are deltas.
        self._seen = {"stalls": 0, "exhaust": 0, "contended": 0, "calls": 0,
                      "wire": 0}
        self._dwell = {"agg_up": 0, "agg_down": 0, "eager_down": 0,
                       "eager_up": 0, "pin": 0, "unpin": 0}
        self._cool = {"agg": 0, "eager": 0, "progress": 0}
        for loc in runtime.localities:
            pp = loc.parcelport
            pp.adapt = self.state
            if loc.parcel_layer is not None:
                loc.parcel_layer.adapt = self.state
            mpi = getattr(pp, "mpi", None)
            if mpi is not None:
                mpi.adapt = self.state
            for dev in getattr(pp, "devices", ()):
                dev.adapt = self.state
                self._has_lci = True
        runtime.sim.process(self._run(), name="adapt_controller")

    # ------------------------------------------------------------------
    # sampling

    def _signals(self) -> Dict[str, float]:
        rt = self.rt
        backlog = 0
        stalls = exhaust = contended = calls = 0
        parcels = 0
        bytes_total = 0
        for loc in rt.localities:
            pp = loc.parcelport
            backlog += pp._backlog_total
            stalls += pp.stats.get("credit_stalls")
            for dev in getattr(pp, "devices", ()):
                exhaust += dev.pool.stats.get("exhaustions")
                contended += dev.stats.get("progress_contended")
                calls += dev.stats.get("progress_calls")
            pl = loc.parcel_layer
            if pl is not None:
                backlog += pl.queued_parcels()
                parcels += pl.stats.get("adapt_parcels")
                bytes_total += pl.stats.get("adapt_bytes")
        wire = rt.fabric.stats.get("msgs")
        rx = sum(loc.nic.rx_pending() for loc in rt.localities)
        seen = self._seen
        d_stalls = stalls - seen["stalls"]
        d_exhaust = exhaust - seen["exhaust"]
        d_cont = contended - seen["contended"]
        d_calls = calls - seen["calls"]
        d_wire = wire - seen["wire"]
        seen.update(stalls=stalls, exhaust=exhaust,
                    contended=contended, calls=calls, wire=wire)
        attempts = d_cont + d_calls
        return {
            "backlog": float(backlog),
            "stalls": float(d_stalls),
            "exhaust": float(d_exhaust),
            "wait_share": (d_cont / attempts) if attempts else 0.0,
            "wire": float(d_wire),
            "rx": float(rx),
            "mean_size": (bytes_total / parcels) if parcels else 0.0,
        }

    # ------------------------------------------------------------------
    # decisions

    def _retune(self, knob: str, old: Any, new: Any) -> None:
        self.retunes[knob] = self.retunes.get(knob, 0) + 1
        if len(self.decisions) < self.spec.max_decisions:
            self.decisions.append({
                "t_us": float(self.rt.sim.now),
                "knob": knob, "old": old, "new": new,
            })

    def _bump(self, key: str, active: bool) -> None:
        self._dwell[key] = self._dwell[key] + 1 if active else 0

    def _tick(self) -> None:
        sp, st = self.spec, self.state
        self.ticks += 1
        sig = self._signals()
        for k in self._cool:
            if self._cool[k]:
                self._cool[k] -= 1

        # Aggregation hold: grow under backlog pressure or credit stalls
        # (batch harder, amortize per-message costs); shrink back toward
        # zero when the runtime drains freely.
        pressure = (sig["backlog"] >= sp.backlog_high
                    or sig["stalls"] >= sp.stall_high)
        relaxed = sig["backlog"] <= sp.backlog_low and sig["stalls"] == 0
        self._bump("agg_up", pressure)
        self._bump("agg_down", relaxed)
        if not self._cool["agg"]:
            if self._dwell["agg_up"] >= sp.dwell_ticks:
                # The first step is sized from the observed mean parcel
                # size (hold a few parcels' worth), later steps double.
                floor = max(sp.agg_hold_start, int(4 * sig["mean_size"]))
                new = (floor if st.agg_hold_bytes == 0
                       else int(st.agg_hold_bytes * sp.step))
                new = min(sp.agg_hold_max, new)
                if new != st.agg_hold_bytes:
                    self._retune("agg_hold_bytes", st.agg_hold_bytes, new)
                    st.agg_hold_bytes = new
                    self._cool["agg"] = sp.cooldown_ticks
                self._dwell["agg_up"] = 0
            elif self._dwell["agg_down"] >= sp.dwell_ticks and st.agg_hold_bytes:
                new = int(st.agg_hold_bytes / sp.step)
                if new < sp.agg_hold_start:
                    new = 0
                self._retune("agg_hold_bytes", st.agg_hold_bytes, new)
                st.agg_hold_bytes = new
                self._cool["agg"] = sp.cooldown_ticks
                self._dwell["agg_down"] = 0

        # Eager/rendezvous cutoff: packet-pool exhaustion means eager
        # sends are starving the pool -- push traffic to rendezvous by
        # shrinking the cutoff; drift back up when the pool is quiet.
        self._bump("eager_down", sig["exhaust"] >= sp.exhaust_high)
        self._bump("eager_up", sig["exhaust"] == 0)
        if not self._cool["eager"]:
            if self._dwell["eager_down"] >= sp.dwell_ticks:
                new = max(sp.eager_scale_min, st.eager_scale / sp.step)
                if new != st.eager_scale:
                    self._retune("eager_scale", st.eager_scale, new)
                    st.eager_scale = new
                    self._cool["eager"] = sp.cooldown_ticks
                self._dwell["eager_down"] = 0
            elif (self._dwell["eager_up"] >= sp.dwell_ticks
                  and st.eager_scale < sp.eager_scale_init):
                new = min(sp.eager_scale_init, st.eager_scale * sp.step)
                self._retune("eager_scale", st.eager_scale, new)
                st.eager_scale = new
                self._cool["eager"] = sp.cooldown_ticks
                self._dwell["eager_up"] = 0

        # Progress mode (LCI only; the MPI parcelport has no pinned
        # progress thread): pin when workers fight over the progress lock,
        # hand progress back to workers only when the whole system is
        # quiet.  A pinned engine shows ~zero lock contention *because*
        # the pinned thread absorbs it, so low wait-share alone must not
        # unpin — that reads success as uselessness and flaps.
        if sp.switch_progress and self._has_lci:
            self._bump("pin", sig["wait_share"] >= sp.contention_high)
            # Quiet = no new wire traffic AND nothing undrained at any
            # NIC: the rx queue is the work the pinned engine exists to
            # drain, and it keeps filling long after senders go silent.
            self._bump("unpin", sig["wait_share"] <= sp.contention_low
                       and relaxed and sig["rx"] == 0
                       and sig["wire"] <= sp.quiet_wire_msgs)
            if not self._cool["progress"]:
                if self._dwell["pin"] >= sp.dwell_ticks and not st.progress_pinned:
                    self._retune("progress_pinned", False, True)
                    st.progress_pinned = True
                    self._cool["progress"] = sp.cooldown_ticks
                    self._dwell["pin"] = 0
                elif (self._dwell["unpin"] >= sp.dwell_ticks
                      and st.progress_pinned):
                    self._retune("progress_pinned", True, False)
                    st.progress_pinned = False
                    self._cool["progress"] = sp.cooldown_ticks
                    self._dwell["unpin"] = 0

        # Flush destinations whose parcels are being held below the
        # aggregation threshold: bounds the extra latency the hold can add
        # to one controller interval.
        for loc in self.rt.localities:
            pl = loc.parcel_layer
            if pl is None:
                continue
            for dest in pl.take_held():
                pl.spawn_flush(dest)

    def _run(self):
        rt = self.rt
        sim = rt.sim
        interval = self.spec.interval_us
        while rt.running:
            yield sim.timeout(interval)
            if not rt.running:
                break
            self._tick()

    # ------------------------------------------------------------------
    # reporting

    def summary(self) -> Dict[str, float]:
        """Flat numeric summary, merged into bench result dicts."""
        st = self.state
        out = {
            "ticks": float(self.ticks),
            "retunes": float(sum(self.retunes.values())),
            "agg_hold_final": float(st.agg_hold_bytes),
            "eager_scale_final": float(st.eager_scale),
            "progress_pinned_final": 1.0 if st.progress_pinned else 0.0,
        }
        for knob, n in sorted(self.retunes.items()):
            out[f"retune.{knob}"] = float(n)
        return out
