"""The ``repro-fig tune`` auto-tuner: successive halving over

``PPConfig`` x adaptive-parameter space.

Every search point is an ordinary sweep point evaluated through
:func:`repro.bench.parallel.run_points`, so the search inherits the
engine's whole contract: points fan out across ``--jobs`` processes,
results are deterministic functions of ``(kind, config, params, seed)``,
and repeated points — within a search, across searches, or shared with a
figure regeneration — are content-addressed cache hits.

The search itself is classic successive halving: all candidates run at
the smallest budget, the top half advances to a doubled budget, and so on
until one rung remains at full budget.  The trajectory (every rung's
scores and survivors) is emitted as ``BENCH_tune.json`` (schema kind
``tune``, validated by :func:`repro.bench.perfbench.validate_bench`), and
the winner is compared against the paper's best static configuration
``lci_psr_cq_pin_i`` at the full budget.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .policy import AdaptiveSpec

__all__ = ["run_tune", "BASELINE_CONFIG", "ADAPT_VARIANTS", "WORKLOADS"]

#: the static config the tuned result must beat (the paper's overall winner)
BASELINE_CONFIG = "lci_psr_cq_pin_i"

#: named adaptive-parameter variants searched against every config;
#: ``None`` = adaptation off (the static config itself is a candidate)
ADAPT_VARIANTS: Dict[str, Optional[AdaptiveSpec]] = {
    "static": None,
    # Fixed aggregation window from t=0; controller may still retune it.
    "hold256": AdaptiveSpec(agg_hold_init=256),
    "hold1k": AdaptiveSpec(agg_hold_init=1024, agg_hold_max=16384),
    # Purely reactive: all knobs start at the config's values.
    "auto": AdaptiveSpec(),
    # Rendezvous-leaning: halve the eager cutoff from the start.
    "rndv": AdaptiveSpec(eager_scale_init=0.5),
}

#: configs crossed with the adaptive variants (the baseline is always
#: searched too, so "no change" is a reachable answer)
SEARCH_CONFIGS = ["lci_psr_cq_pin_i", "lci_psr_cq_pin", "lci_sr_cq_pin"]


def _mr_task(config: str, adapt: Optional[Dict[str, Any]], budget: int,
             seed: int):
    from ..bench.parallel import message_rate_task
    from ..hpx_rt.platform import EXPANSE
    return message_rate_task(config, msg_size=8, batch=100,
                             total_msgs=budget, inject_rate_kps=None,
                             platform=EXPANSE, seed=seed, adapt=adapt)


def _fft_task(config: str, adapt: Optional[Dict[str, Any]], budget: int,
              seed: int):
    from ..bench.parallel import fft_task
    from ..hpx_rt.platform import EXPANSE
    return fft_task(config, n1=budget, n2=budget, n_localities=4,
                    platform=EXPANSE, seed=seed, adapt=adapt)


def _serve_task(config: str, adapt: Optional[Dict[str, Any]], budget: float,
                seed: int):
    from ..bench.parallel import serve_task
    from ..hpx_rt.platform import EXPANSE
    return serve_task(config, offered_kps=400.0, horizon_us=float(budget),
                      n_localities=4, platform=EXPANSE, seed=seed,
                      adapt=adapt)


#: workload name -> (task factory, metric key, quick budgets, full budgets)
WORKLOADS = {
    "message_rate": (_mr_task, "message_rate_kps",
                     [1000, 2000, 4000], [5000, 10000, 20000]),
    "fft": (_fft_task, "points_per_second",
            [8, 16, 32], [16, 32, 64]),
    "serve": (_serve_task, "goodput_kps",
              [500.0, 1000.0, 2000.0], [1000.0, 2000.0, 4000.0]),
}


def _candidates(configs: Sequence[str],
                variants: Dict[str, Optional[AdaptiveSpec]]
                ) -> List[Tuple[str, str, Optional[Dict[str, Any]]]]:
    """(name, config, adapt-dict) triples, deterministic order."""
    out = []
    for config in configs:
        for vname, spec in variants.items():
            name = config if spec is None else f"{config}+{vname}"
            out.append((name, config,
                        None if spec is None else spec.as_dict()))
    return out


def _score(task_factory, name_cfg_adapt, budget, seeds
           ) -> List[Dict[str, Any]]:
    """Build one rung's tasks for all candidates x seeds (flat list)."""
    tasks = []
    for name, config, adapt in name_cfg_adapt:
        for seed in seeds:
            tasks.append(task_factory(config, adapt, budget, seed))
    return tasks


def run_tune(workload: Optional[str] = None, full: bool = False,
             out_dir: str = ".", repeats: Optional[int] = None,
             configs: Optional[Sequence[str]] = None,
             adapt_variants: Optional[Dict[str, Optional[AdaptiveSpec]]]
             = None,
             budgets: Optional[Sequence[Any]] = None) -> int:
    """Run the search, print the trajectory, write ``BENCH_tune.json``.

    Returns 0 when the emitted document validates (the *smoke* contract;
    whether the winner actually beats the baseline is recorded in
    ``winner.improvement_pct`` and asserted by CI on the committed
    artifact, not on every quick rerun).
    """
    from ..bench.figures import _seeds
    from ..bench.parallel import policy, run_points
    from ..bench.perfbench import _doc_header, validate_bench

    workload = workload or "serve"
    if workload not in WORKLOADS:
        raise ValueError(f"unknown tune workload {workload!r} "
                         f"(choose from {sorted(WORKLOADS)})")
    task_factory, metric, quick_budgets, full_budgets = WORKLOADS[workload]
    if budgets is None:
        budgets = full_budgets if full else quick_budgets
    repeats = repeats or (3 if full else 1)
    seeds = _seeds(repeats)
    cands = _candidates(configs or SEARCH_CONFIGS,
                        adapt_variants or ADAPT_VARIANTS)

    t0 = time.perf_counter()
    doc = _doc_header("tune", repeats)
    doc["scale"] = "full" if full else "smoke"
    doc["workload"] = workload
    doc["metric"] = metric
    rungs_doc: List[Dict[str, Any]] = []
    print(f"== auto-tune {workload} (metric {metric}, "
          f"{len(cands)} candidates, budgets {list(budgets)}) ==")

    survivors = list(cands)
    scored: List[Dict[str, Any]] = []
    for r, budget in enumerate(budgets):
        tasks = _score(task_factory, survivors, budget, seeds)
        results = iter(run_points(tasks))
        scored = []
        for name, config, adapt in survivors:
            vals = [next(results)[metric] for _ in seeds]
            entry = {"name": name, "config": config, "adapt": adapt,
                     "score": sum(vals) / len(vals)}
            scored.append(entry)
        # Deterministic ranking: score descending, name as tie-break.
        scored.sort(key=lambda c: (-c["score"], c["name"]))
        last = r == len(budgets) - 1
        n_keep = len(scored) if last else max(2, math.ceil(len(scored) / 2))
        kept = [c["name"] for c in scored[:n_keep]]
        rungs_doc.append({"budget": budget, "candidates": scored,
                          "kept": kept})
        print(f"  rung {r} (budget {budget}): "
              f"best {scored[0]['name']} = {scored[0]['score']:.1f}, "
              f"kept {len(kept)}/{len(scored)}")
        by_name = {name: (name, config, adapt)
                   for name, config, adapt in survivors}
        survivors = [by_name[n] for n in kept]

    # Baseline at full budget (a cache hit if it survived the search).
    base_tasks = _score(task_factory, [(BASELINE_CONFIG, BASELINE_CONFIG,
                                        None)], budgets[-1], seeds)
    base_vals = [res[metric] for res in run_points(base_tasks)]
    base_score = sum(base_vals) / len(base_vals)
    winner = scored[0]
    improvement = (winner["score"] / base_score - 1.0) * 100.0
    doc["baseline"] = {"config": BASELINE_CONFIG, "score": base_score}
    doc["rungs"] = rungs_doc
    doc["winner"] = {"name": winner["name"], "config": winner["config"],
                     "adapt": winner["adapt"], "score": winner["score"],
                     "improvement_pct": improvement}
    cache = policy().cache
    doc["cache"] = cache.stats() if cache is not None else {}
    print(f"  baseline {BASELINE_CONFIG} = {base_score:.1f}")
    print(f"  winner   {winner['name']} = {winner['score']:.1f} "
          f"({improvement:+.1f}%)")

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    errors = validate_bench(doc)
    for e in errors:
        print(f"  INVALID BENCH_tune.json: {e}")
    path = out / "BENCH_tune.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {path}")
    print(f"[tune done in {time.perf_counter() - t0:.1f}s wall]")
    return 1 if errors else 0
