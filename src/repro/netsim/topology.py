"""Fat-tree topology: multi-switch fabrics with shared up-links.

The default :class:`~repro.netsim.fabric.Fabric` is a non-blocking
crossbar, which is accurate for the paper's 2–32 node InfiniBand runs.
:class:`FatTreeFabric` adds the next level of fidelity: nodes hang off
leaf switches, and traffic between leaves traverses shared up/down links
that can be oversubscribed — letting experiments probe what the paper's
results look like when the *fabric*, not the software stack, starts to
contend.

Only the two-level (leaf/spine) case is modelled: at the paper's scales
fat trees behave as leaf switches + a non-blocking core, and the shared
resource that matters is the leaf up-link group.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.core import Simulator
from ..sim.primitives import SerialResource
from .fabric import Fabric
from .message import NetMsg
from .params import NetworkParams

__all__ = ["FatTreeFabric"]


class FatTreeFabric(Fabric):
    """Two-level fat tree with per-leaf-switch shared up-links.

    Parameters
    ----------
    nodes_per_switch:
        How many nodes share one leaf switch.
    oversubscription:
        Ratio of total downstream bandwidth to up-link bandwidth per leaf
        switch.  1.0 = fully provisioned (non-blocking); 2.0 means the
        up-links carry at most half the downstream aggregate.
    switch_hop_us:
        Extra one-way latency per additional switch traversed (cross-leaf
        traffic crosses two more switches than same-leaf traffic).
    """

    def __init__(self, sim: Simulator, params: NetworkParams,
                 nodes_per_switch: int = 4,
                 oversubscription: float = 1.0,
                 switch_hop_us: float = 0.15):
        super().__init__(sim, params)
        if nodes_per_switch < 1:
            raise ValueError("nodes_per_switch must be >= 1")
        if oversubscription <= 0:
            raise ValueError("oversubscription must be positive")
        self.nodes_per_switch = nodes_per_switch
        self.oversubscription = oversubscription
        self.switch_hop_us = switch_hop_us
        #: per-leaf-switch up-link and down-link pipes (lazily created)
        self._uplinks: Dict[int, SerialResource] = {}
        self._downlinks: Dict[int, SerialResource] = {}
        # Up-link group bandwidth: nodes_per_switch links' worth divided
        # by the oversubscription factor.
        self._uplink_bytes_per_us = (params.bytes_per_us * nodes_per_switch
                                     / oversubscription)

    # ------------------------------------------------------------------
    def switch_of(self, node_id: int) -> int:
        return node_id // self.nodes_per_switch

    def _pipe(self, table: Dict[int, SerialResource], switch: int,
              kind: str) -> SerialResource:
        pipe = table.get(switch)
        if pipe is None:
            pipe = SerialResource(self.sim, f"sw{switch}.{kind}")
            table[switch] = pipe
        return pipe

    def transmit(self, msg: NetMsg, tx_done_t: float) -> None:
        dst = self.nics.get(msg.dst)
        if dst is None:
            raise KeyError(f"no NIC for destination node {msg.dst}")
        self.stats.inc("msgs")
        self.stats.add("bytes", msg.size)
        if msg.dst == msg.src:
            self.sim.schedule_call(tx_done_t - self.sim.now,
                                   lambda: dst.deliver(msg))
            return
        src_sw = self.switch_of(msg.src)
        dst_sw = self.switch_of(msg.dst)
        if src_sw == dst_sw:
            # one switch: plain wire latency, no shared links
            arrive_t = tx_done_t + self.params.wire_latency_us
            self.sim.schedule_call(arrive_t - self.sim.now,
                                   lambda: dst.deliver(msg))
            return
        # Cross-leaf: serialize through the source up-link group and the
        # destination down-link group, plus two extra switch hops.
        self.stats.inc("cross_switch_msgs")
        service = msg.size / self._uplink_bytes_per_us
        up = self._pipe(self._uplinks, src_sw, "up")
        down = self._pipe(self._downlinks, dst_sw, "down")

        base_wait = max(0.0, tx_done_t - self.sim.now)
        sim = self.sim

        def after_up(_ev=None, msg=msg):
            done = down.finish_time(service)
            arrive = done + self.params.wire_latency_us \
                + 2 * self.switch_hop_us
            sim.schedule_call(arrive - sim.now, lambda: dst.deliver(msg))

        def enter_up():
            up.request(service).add_callback(after_up)

        if base_wait > 0:
            sim.schedule_call(base_wait, enter_up)
        else:
            enter_up()

    # -- introspection ---------------------------------------------------
    def uplink_utilization(self, switch: int) -> float:
        pipe = self._uplinks.get(switch)
        return pipe.utilization() if pipe else 0.0
