"""NIC model: TX pipeline, RX ring, arrival notification.

The TX side is a serializing pipeline (:class:`~repro.sim.primitives.
SerialResource`): each message occupies it for ``tx_overhead + size/BW`` µs,
which yields both a per-message rate ceiling and bandwidth sharing between
concurrent senders on the same node — the two first-order NIC effects the
paper's workloads exercise.

The RX side is a ring of delivered descriptors.  Hardware deposits messages
into the ring; *software* (a progress engine) must drain it, paying
``rx_overhead_us`` per message.  ``arrival_event`` lets a dedicated progress
thread sleep until traffic arrives instead of burning simulated polls.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..sim.core import Event, Simulator
from ..sim.primitives import SerialResource
from ..sim.stats import StatSet
from .message import NetMsg
from .params import NetworkParams

if TYPE_CHECKING:  # pragma: no cover
    from .fabric import Fabric

__all__ = ["Nic"]


class Nic:
    """One network interface attached to a node."""

    __slots__ = ("sim", "node_id", "params", "fabric", "tx", "rx_rings",
                 "_arrival_waiters", "stats", "on_deliver", "obs")

    def __init__(self, sim: Simulator, node_id: int, params: NetworkParams):
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.fabric: Optional["Fabric"] = None
        self.tx = SerialResource(sim, f"nic{node_id}.tx")
        #: one RX ring per virtual channel (grown on demand); single-device
        #: endpoints only ever touch ring 0 via the ``rx_ring`` alias
        self.rx_rings: list = [deque()]
        self._arrival_waiters: Deque[Event] = deque()
        self.stats = StatSet(f"nic{node_id}")
        #: optional synchronous hook invoked on each delivery (used by the
        #: locality scheduler to wake an idle worker — models HPX's polling
        #: noticing traffic without simulating every idle spin).
        self.on_deliver = None
        #: span recorder (None => tracing off, zero overhead)
        self.obs = None

    # -- send side ---------------------------------------------------------
    def post_send(self, msg: NetMsg) -> float:
        """Post ``msg`` for transmission; returns the CPU cost (µs) the
        *calling thread* must charge itself for the doorbell.

        The message leaves the NIC after queueing + TX service, then arrives
        at the destination RX ring one wire latency later.  Fire-and-forget:
        local completion semantics are the communication library's business.
        """
        assert self.fabric is not None, "NIC not attached to a fabric"
        msg.inject_t = self.sim.now
        self.stats.inc("tx_msgs")
        self.stats.add("tx_bytes", msg.size)
        done_t = self.tx.finish_time(self.params.tx_time(msg.size))
        self.fabric.transmit(msg, done_t)
        return self.params.post_cost_us

    def tx_complete_event(self, msg: NetMsg) -> Event:
        """Event firing when ``msg``'s TX (local DMA read) would complete.

        Used for rendezvous data where the sender buffer is reusable only
        after the NIC has read it.
        """
        # The TX resource watermark already includes msg; fire then.
        return self.sim.timeout(max(0.0, self.tx.busy_until - self.sim.now))

    # -- receive side --------------------------------------------------------
    @property
    def rx_ring(self) -> Deque[NetMsg]:
        """Ring 0 (the only ring for single-device endpoints)."""
        return self.rx_rings[0]

    def ensure_vchans(self, n: int) -> None:
        """Grow to at least ``n`` RX rings (multi-device endpoints)."""
        while len(self.rx_rings) < n:
            self.rx_rings.append(deque())

    def deliver(self, msg: NetMsg, redelivery: bool = False) -> None:
        """Called by the fabric when ``msg`` lands in our RX ring.

        ``redelivery`` marks a message re-entering after a deferral, so
        per-message holds (slow-receiver delays) never compound.
        """
        if self.fabric is not None and self.fabric.injector is not None:
            inj = self.fabric.injector
            until = inj.deferred_until(msg, self.node_id, self.sim.now,
                                       redelivery=redelivery)
            if until > self.sim.now:
                # Deferred (NIC stall, slow receiver or ack starvation):
                # the descriptor sits in hardware until the hold ends
                # (ordering preserved — deferred events re-enter the
                # schedule in original sequence).
                self.sim.schedule_call(
                    until - self.sim.now,
                    lambda: self.deliver(msg, redelivery=True))
                return
        msg.arrive_t = self.sim.now
        if self.obs is not None:
            self.obs.wire_arrival(msg, self.node_id)
        self.ensure_vchans(msg.vchan + 1)
        self.rx_rings[msg.vchan].append(msg)
        self.stats.inc("rx_msgs")
        self.stats.add("rx_bytes", msg.size)
        while self._arrival_waiters:
            self._arrival_waiters.popleft().succeed()
        if self.on_deliver is not None:
            self.on_deliver()

    def poll_rx(self, vchan: int = 0) -> Optional[NetMsg]:
        """Drain one descriptor (caller charges itself ``rx_overhead_us``)."""
        if vchan >= len(self.rx_rings):
            return None
        ring = self.rx_rings[vchan]
        return ring.popleft() if ring else None

    def rx_pending(self, vchan: Optional[int] = None) -> int:
        if vchan is not None:
            return len(self.rx_rings[vchan]) \
                if vchan < len(self.rx_rings) else 0
        return sum(len(r) for r in self.rx_rings)

    def arrival_event(self) -> Event:
        """Event that fires at the next message arrival (or now if pending)."""
        ev = Event(self.sim)
        if self.rx_pending():
            ev.succeed()
        else:
            self._arrival_waiters.append(ev)
        return ev
