"""The interconnect: moves messages between NICs with wire latency.

The fabric is a full crossbar (non-blocking switch, as both Expanse's and
Rostam's fat-tree InfiniBand effectively are at the 2–32 node scale of the
paper's runs): the only shared bottlenecks are the per-node NICs themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..sim.core import Simulator
from ..sim.stats import StatSet
from .message import NetMsg
from .nic import Nic
from .params import NetworkParams

if TYPE_CHECKING:  # pragma: no cover
    from ..faults import FaultInjector

__all__ = ["Fabric"]


class Fabric:
    """A set of NICs joined by constant-latency links."""

    def __init__(self, sim: Simulator, params: NetworkParams):
        self.sim = sim
        self.params = params
        self.nics: Dict[int, Nic] = {}
        self.stats = StatSet("fabric")
        #: optional fault injector consulted on every transmit; None (the
        #: default) keeps the fabric byte-identical to a fault-free build
        self.injector: Optional["FaultInjector"] = None
        #: span recorder (None => tracing off, zero overhead)
        self.obs = None
        #: per-source delivery sequence counters: the intrinsic half of the
        #: (time, src, per-src seq) delivery tie-break key (see
        #: :data:`repro.sim.core.DELIVERY`)
        self._dseq: Dict[int, int] = {}
        #: shard context when running under the sharded engine (None in the
        #: sequential engine); deliveries to unowned localities are exported
        #: at the window barrier instead of scheduled locally
        self.shard_ctx = None

    def add_node(self, node_id: int) -> Nic:
        """Create and attach the NIC for ``node_id``."""
        if node_id in self.nics:
            raise ValueError(f"node {node_id} already attached")
        nic = Nic(self.sim, node_id, self.params)
        nic.fabric = self
        self.nics[node_id] = nic
        return nic

    def nic(self, node_id: int) -> Nic:
        return self.nics[node_id]

    def transmit(self, msg: NetMsg, tx_done_t: float) -> None:
        """Schedule delivery of ``msg`` at the destination NIC.

        ``tx_done_t`` is the absolute time the source NIC finishes serializing
        the message; the wire adds ``wire_latency_us`` (loopback messages skip
        the wire but still pay TX serialization).
        """
        dst = self.nics.get(msg.dst)
        if dst is None:
            raise KeyError(f"no NIC for destination node {msg.dst}")
        self.stats.inc("msgs")
        self.stats.add("bytes", msg.size)
        src = msg.src
        dseq = self._dseq
        n = dseq.get(src, 0)
        dseq[src] = n + 1
        key = (src, n)
        if self.injector is not None:
            verdict = self.injector.on_transmit(msg, key)
            if verdict == "drop":
                self.stats.inc("dropped_msgs")
                if self.obs is not None:
                    self.obs.wire_fault(msg, "drop")
                return
            if verdict == "corrupt":
                msg.corrupted = True
                self.stats.inc("corrupted_msgs")
                if self.obs is not None:
                    self.obs.wire_fault(msg, "corrupt")
        wire = 0.0 if msg.dst == msg.src else self.params.wire_latency_us
        arrive_t = tx_done_t + wire
        ctx = self.shard_ctx
        if ctx is not None and msg.dst not in ctx.owned:
            ctx.export_msg(arrive_t, key, msg)
            return
        self.sim.schedule_delivery(arrive_t - self.sim.now, dst.deliver,
                                   msg, key)

    def node_ids(self) -> List[int]:
        return sorted(self.nics)
