"""Network substrate: NICs, fabric, wire-level messages, hardware presets."""

from .fabric import Fabric
from .message import NetMsg
from .nic import Nic
from .params import FDR_IB, HDR_IB, TESTNET, NetworkParams
from .topology import FatTreeFabric

__all__ = ["Fabric", "FatTreeFabric", "NetMsg", "Nic", "NetworkParams",
           "HDR_IB", "FDR_IB", "TESTNET"]
