"""Network hardware parameter sets.

The two clusters from the paper (Tables 2 and 3):

* **SDSC Expanse** — HDR InfiniBand (2×50 Gbps), Mellanox ConnectX-6.
* **Rostam** — FDR InfiniBand (4×14 Gbps), Mellanox ConnectX-3.

Values are calibrated so the *software* stack above is the bottleneck at
small message sizes, as in the paper (modern NICs sustain >100 M msgs/s while
the parcelports peak below 1 M/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["NetworkParams", "HDR_IB", "FDR_IB", "TESTNET"]


@dataclass(frozen=True)
class NetworkParams:
    """Fabric + NIC timing model (all times µs, sizes bytes).

    Attributes
    ----------
    name:
        Human-readable fabric name.
    wire_latency_us:
        One-way propagation + switch traversal latency.
    bytes_per_us:
        Link bandwidth (bytes per µs; 12500 B/µs == 100 Gb/s).
    tx_overhead_us:
        Per-message NIC TX pipeline occupancy (descriptor fetch, DMA setup).
        Sets the hardware message-rate ceiling (1/tx_overhead).
    rx_overhead_us:
        Software cost to drain one message descriptor from the RX ring
        (paid by whichever thread runs the progress engine).
    post_cost_us:
        CPU cost of posting one descriptor + doorbell (paid by the sender
        thread).
    rndv_handshake_us:
        Extra target-side cost to process a rendezvous control message.
    """

    name: str = "net"
    wire_latency_us: float = 1.0
    bytes_per_us: float = 12500.0
    tx_overhead_us: float = 0.01
    rx_overhead_us: float = 0.05
    post_cost_us: float = 0.08
    rndv_handshake_us: float = 0.15

    def tx_time(self, size: int) -> float:
        """NIC TX pipeline occupancy for one message of ``size`` bytes."""
        return self.tx_overhead_us + size / self.bytes_per_us

    def with_(self, **kw) -> "NetworkParams":
        """A copy with some fields replaced."""
        return replace(self, **kw)


#: SDSC Expanse: HDR InfiniBand 2x50 Gbps (100 Gb/s = 12.5 GB/s).
#: ``rx_overhead_us`` is the software descriptor-drain cost; calibrated so
#: the best parcelport peaks below 1 M msg/s as in the paper (software,
#: not the NIC, is the bottleneck).
HDR_IB = NetworkParams(
    name="hdr-ib",
    wire_latency_us=0.9,
    bytes_per_us=12500.0,
    tx_overhead_us=0.01,
    rx_overhead_us=0.30,
    post_cost_us=0.08,
)

#: Rostam: FDR InfiniBand 4x14 Gbps (56 Gb/s = 7 GB/s), older ConnectX-3.
FDR_IB = NetworkParams(
    name="fdr-ib",
    wire_latency_us=1.3,
    bytes_per_us=7000.0,
    tx_overhead_us=0.02,
    rx_overhead_us=0.40,
    post_cost_us=0.10,
)

#: Fast, forgiving parameters for unit tests.
TESTNET = NetworkParams(
    name="testnet",
    wire_latency_us=0.5,
    bytes_per_us=10000.0,
    tx_overhead_us=0.01,
    rx_overhead_us=0.02,
    post_cost_us=0.02,
)
