"""Wire-level message descriptors.

A :class:`NetMsg` is what a NIC actually moves: an opaque payload plus the
handful of header fields the communication libraries above need (kind, tag,
size).  Payload *content* is carried by reference — only sizes cost time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["NetMsg"]

_msg_ids = itertools.count()


@dataclass
class NetMsg:
    """One message in flight on the fabric.

    Attributes
    ----------
    src, dst:
        Node ids (== NIC ids; one NIC per node in this model).
    size:
        Bytes on the wire (headers included).
    kind:
        Library-level discriminator (e.g. ``"eager"``, ``"rts"``, ``"cts"``,
        ``"rdma"``, ``"put"``); interpreted by the receiving library.
    tag:
        Matching tag for two-sided traffic (None for one-sided).
    payload:
        Arbitrary reference-carried data (never copied; copies are costed
        explicitly by the layers that perform them).
    """

    src: int
    dst: int
    size: int
    kind: str
    tag: Optional[int] = None
    payload: Any = None
    #: virtual channel / hardware queue pair: multi-device endpoints
    #: (the paper's §7.2 future work) keep their traffic separated here
    vchan: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    inject_t: float = 0.0
    arrive_t: float = 0.0
    #: set by the fault injector: the message arrives, but its payload is
    #: garbage — the receiving library surfaces an error status instead of
    #: completing the matched operation normally
    corrupted: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CORRUPT" if self.corrupted else ""
        return (f"<NetMsg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B tag={self.tag}{flag}>")
