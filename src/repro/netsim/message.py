"""Wire-level message descriptors.

A :class:`NetMsg` is what a NIC actually moves: an opaque payload plus the
handful of header fields the communication libraries above need (kind, tag,
size).  Payload *content* is carried by reference — only sizes cost time.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["NetMsg"]

_msg_ids = itertools.count()


class NetMsg:
    """One message in flight on the fabric.

    A hand-slotted record (two NetMsg constructions per simulated wire
    message make this a hot allocation site; ``__slots__`` plus a plain
    ``__init__`` beat the seed's dataclass with its ``default_factory``).
    Messages compare by identity — every construction gets a fresh
    ``msg_id``, so field equality never held between distinct messages
    anyway.

    Attributes
    ----------
    src, dst:
        Node ids (== NIC ids; one NIC per node in this model).
    size:
        Bytes on the wire (headers included).
    kind:
        Library-level discriminator (e.g. ``"eager"``, ``"rts"``, ``"cts"``,
        ``"rdma"``, ``"put"``); interpreted by the receiving library.
    tag:
        Matching tag for two-sided traffic (None for one-sided).
    payload:
        Arbitrary reference-carried data (never copied; copies are costed
        explicitly by the layers that perform them).
    vchan:
        Virtual channel / hardware queue pair: multi-device endpoints
        (the paper's §7.2 future work) keep their traffic separated here.
    corrupted:
        Set by the fault injector: the message arrives, but its payload is
        garbage — the receiving library surfaces an error status instead
        of completing the matched operation normally.
    """

    __slots__ = ("src", "dst", "size", "kind", "tag", "payload", "vchan",
                 "msg_id", "inject_t", "arrive_t", "corrupted")

    def __init__(self, src: int, dst: int, size: int, kind: str,
                 tag: Optional[int] = None, payload: Any = None,
                 vchan: int = 0, msg_id: Optional[int] = None,
                 inject_t: float = 0.0, arrive_t: float = 0.0,
                 corrupted: bool = False):
        self.src = src
        self.dst = dst
        self.size = size
        self.kind = kind
        self.tag = tag
        self.payload = payload
        self.vchan = vchan
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        self.inject_t = inject_t
        self.arrive_t = arrive_t
        self.corrupted = corrupted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CORRUPT" if self.corrupted else ""
        return (f"<NetMsg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.size}B tag={self.tag}{flag}>")
