"""Parcel (de)serialization with the zero-copy threshold.

Implements the chunking rules of §2.2: arguments smaller than the zero-copy
serialization threshold are *copied* into the non-zero-copy chunk; arguments
at or above the threshold become zero-copy chunks (transferred in place,
never copied by the serializer) and are indexed by the transmission chunk.

The returned costs are what the serializing/deserializing *thread* must pay;
zero-copy chunks contribute nothing to them, which is the entire point of
the mechanism.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .parcel import (HpxMessage, Parcel, PARCEL_METADATA_BYTES,
                     TRANSMISSION_ENTRY_BYTES)
from .platform import CostModel

__all__ = ["serialize_parcels", "serialize_cost", "deserialize_cost",
           "split_args"]


def split_args(parcel: Parcel, threshold: int) -> Tuple[int, List[int]]:
    """Partition one parcel's arguments by the zero-copy threshold.

    Returns ``(small_bytes, zc_sizes)``: the bytes that land in the
    non-zero-copy chunk (metadata + small args) and the per-argument sizes
    that become zero-copy chunks.
    """
    small = PARCEL_METADATA_BYTES
    zc: List[int] = []
    for size in parcel.arg_sizes:
        if size >= threshold:
            zc.append(size)
        else:
            small += size
    return small, zc


def serialize_parcels(parcels: Sequence[Parcel], cost: CostModel,
                      ) -> HpxMessage:
    """Serialize a batch of same-destination parcels into one HPX message."""
    if not parcels:
        raise ValueError("cannot serialize an empty parcel batch")
    dest = parcels[0].dest
    src = parcels[0].src
    for p in parcels:
        if p.dest != dest:
            raise ValueError("parcels in one message must share destination")
    non_zc = 0
    zc_sizes: List[int] = []
    for p in parcels:
        small, zc = split_args(p, cost.zero_copy_threshold)
        non_zc += small
        zc_sizes.extend(zc)
    trans = TRANSMISSION_ENTRY_BYTES * len(zc_sizes) if zc_sizes else 0
    return HpxMessage(dest=dest, src=src, parcels=list(parcels),
                      non_zc_size=non_zc, zc_sizes=zc_sizes,
                      trans_size=trans)


def serialize_cost(msg: HpxMessage, cost: CostModel) -> float:
    """CPU µs to serialize ``msg`` (zero-copy chunks are free by design)."""
    return cost.serialize_cost(msg.non_zc_size + msg.trans_size)


def deserialize_cost(msg: HpxMessage, cost: CostModel) -> float:
    """CPU µs to deserialize ``msg`` at the destination."""
    return cost.deserialize_cost(msg.non_zc_size + msg.trans_size)
