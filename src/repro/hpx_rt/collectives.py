"""Collective operations over HPX actions (barrier, broadcast, reduce).

HPX provides collectives as library constructs on top of actions and
LCOs; applications built on this simulated runtime (and the Octo-Tiger
driver's step barrier) need the same.  These are naive root-based
implementations — every collective is a fan-in to a root locality plus a
fan-out — which is faithful to how small-scale HPX collectives behave and
keeps all traffic on the parcelport under study.

Usage (from any task, on every participating locality)::

    coll = Collectives(rt)           # once, before boot
    ...
    def task(worker):
        value = yield from coll.allreduce(worker, "phase1", my_value)

Each logical operation is identified by a user-chosen ``op_id``; an
``op_id`` may be reused once the previous operation with that id has
completed everywhere (generation counters disambiguate back-to-back use).
"""

from __future__ import annotations

import operator
from functools import reduce as _functools_reduce
from typing import Any, Callable, Dict, List, Optional, Tuple

from .future import Future
from .runtime import HpxRuntime

__all__ = ["Collectives", "REDUCTIONS"]

#: named reduction operators accepted by :meth:`Collectives.reduce`
REDUCTIONS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": operator.add,
    "min": min,
    "max": max,
    "prod": operator.mul,
}


class Collectives:
    """Root-based collectives for a booted (or about-to-boot) runtime."""

    def __init__(self, runtime: HpxRuntime, root: int = 0,
                 prefix: str = "coll"):
        self.rt = runtime
        self.root = root
        self.prefix = prefix
        self.n = len(runtime.localities)
        #: (op_id, generation) -> root-side accumulation state
        self._gather: Dict[Tuple[str, int], List[Any]] = {}
        #: (op_id, generation, lid) -> completion future
        self._futures: Dict[Tuple[str, int, int], Future] = {}
        #: op_id -> per-locality generation counters
        self._gen: Dict[Tuple[str, int], int] = {}
        runtime.register_action(f"{prefix}_arrive", self._act_arrive)
        runtime.register_action(f"{prefix}_release", self._act_release)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _next_gen(self, op_id: str, lid: int) -> int:
        key = (op_id, lid)
        gen = self._gen.get(key, 0)
        self._gen[key] = gen + 1
        return gen

    def _future_for(self, op_id: str, gen: int, lid: int) -> Future:
        key = (op_id, gen, lid)
        fut = self._futures.get(key)
        if fut is None:
            fut = Future(self.rt.sim)
            self._futures[key] = fut
        return fut

    def _act_arrive(self, worker, op_id: str, gen: int, src: int,
                    value: Any, combine: Optional[str]):
        """Root-side action: collect one participant's contribution."""
        key = (op_id, gen)
        bucket = self._gather.setdefault(key, [])
        bucket.append((src, value))
        if len(bucket) < self.n:
            return None
        del self._gather[key]
        # everyone arrived: fold and release
        if combine is not None:
            fn = REDUCTIONS[combine]
            result = _functools_reduce(fn, (v for _, v in bucket))
        else:
            # broadcast: take the root's own contribution
            result = next(v for s, v in bucket if s == self.root)

        def fanout(w, result=result):
            for lid in range(self.n):
                if lid == self.root:
                    self._future_for(op_id, gen, lid).set_result(result)
                else:
                    yield from w.locality.apply(
                        w, lid, f"{self.prefix}_release",
                        (op_id, gen, result))

        worker.locality.spawn(fanout, name=f"{op_id}_fanout")
        return None

    def _act_release(self, worker, op_id: str, gen: int, result: Any):
        lid = worker.locality.lid
        self._future_for(op_id, gen, lid).set_result(result)
        return None

    def _participate(self, worker, op_id: str, value: Any,
                     combine: Optional[str], size: int):
        lid = worker.locality.lid
        gen = self._next_gen(op_id, lid)
        fut = self._future_for(op_id, gen, lid)
        if lid == self.root:
            # run the arrive logic locally (no self-message)
            self._act_arrive(worker, op_id, gen, lid, value, combine)
        else:
            yield from worker.locality.apply(
                worker, self.root, f"{self.prefix}_arrive",
                (op_id, gen, lid, value, combine),
                arg_sizes=[8, 8, 8, size, 8])
        result = yield fut.wait()
        return result

    # ------------------------------------------------------------------
    # public collectives (generators; call from a task on EVERY locality)
    # ------------------------------------------------------------------
    def barrier(self, worker, op_id: str):
        """Generator: block until all localities entered this barrier."""
        yield from self._participate(worker, op_id, None, None, size=8)

    def broadcast(self, worker, op_id: str, value: Any = None,
                  size: int = 8):
        """Generator → the root's ``value`` on every locality.

        Non-root callers pass ``value=None``; only the root's survives.
        """
        result = yield from self._participate(worker, op_id, value, None,
                                              size=size)
        return result

    def reduce(self, worker, op_id: str, value: Any, op: str = "sum",
               size: int = 8):
        """Generator → the reduction of all contributions (delivered to
        every participant, i.e. allreduce semantics)."""
        if op not in REDUCTIONS:
            raise KeyError(f"unknown reduction {op!r}; have "
                           f"{sorted(REDUCTIONS)}")
        result = yield from self._participate(worker, op_id, value, op,
                                              size=size)
        return result

    # alias with the conventional name
    allreduce = reduce
