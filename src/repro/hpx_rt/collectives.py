"""Collective operations over HPX actions.

HPX provides collectives as library constructs on top of actions and
LCOs; applications built on this simulated runtime (the Octo-Tiger
driver's step barrier, the distributed-FFT mini-app's transpose) need
the same.  Two communication shapes are implemented, both keeping all
traffic on the parcelport under study:

* **root-based** (barrier, broadcast, reduce, scatter, gather,
  all_gather) — every participant fans in to a root locality, which
  folds / slices the contributions and fans the per-participant result
  back out.  Faithful to how small-scale HPX collectives behave.
* **direct exchange** (all_to_all) — every participant sends its
  per-destination chunk straight to that destination, so all ``n·(n-1)``
  messages race on the fabric at once.  This is the transpose primitive
  of distributed FFTs and the canonical *incast* workload: every
  receiver sees a simultaneous fan-in from all peers, which exercises
  credit-based flow control and receiver backlogs very differently
  from a fan-in tree.

Usage (from any task, on every participating locality)::

    coll = Collectives(rt)           # once, before boot
    ...
    def task(worker):
        value = yield from coll.allreduce(worker, "phase1", my_value)
        rows  = yield from coll.all_to_all(worker, "transpose", chunks,
                                           size=chunk_bytes)

Each logical operation is identified by a user-chosen ``op_id``; an
``op_id`` may be reused immediately (including in a loop, with arrivals
landing out of order across localities) — per-locality generation
counters disambiguate the instances, and all root / exchange state is
keyed by ``(op_id, generation)`` so concurrent generations never
cross-talk.
"""

from __future__ import annotations

import operator
from functools import reduce as _functools_reduce
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .future import Future
from .runtime import HpxRuntime

__all__ = ["Collectives", "REDUCTIONS"]

#: named reduction operators accepted by :meth:`Collectives.reduce`
REDUCTIONS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": operator.add,
    "min": min,
    "max": max,
    "prod": operator.mul,
}

#: root-based operation modes (the ``mode`` field of arrive messages);
#: reductions travel as ``"reduce:<op>"``
_BARRIER = "barrier"
_BCAST = "bcast"
_SCATTER = "scatter"
_GATHER = "gather"
_ALL_GATHER = "all_gather"


class _Incoming:
    """One source's in-progress all_to_all contribution at a destination.

    ``total < 0`` marks an unfragmented single chunk (stored under part
    ``-1``); otherwise ``total`` fragments are reassembled in index
    order, whatever order the messages arrived in.
    """

    __slots__ = ("total", "items")

    def __init__(self, total: int):
        self.total = total
        self.items: Dict[int, Any] = {}

    def add(self, part: int, item: Any) -> None:
        self.items[part] = item

    @property
    def complete(self) -> bool:
        return len(self.items) == (1 if self.total < 0 else self.total)

    def value(self) -> Any:
        if self.total < 0:
            return self.items[-1]
        return [self.items[i] for i in range(self.total)]


class Collectives:
    """Collectives for a booted (or about-to-boot) runtime."""

    def __init__(self, runtime: HpxRuntime, root: int = 0,
                 prefix: str = "coll"):
        self.rt = runtime
        self.root = root
        self.prefix = prefix
        self.n = len(runtime.localities)
        #: (op_id, generation) -> root-side accumulation state
        self._gather: Dict[Tuple[str, int], List[Tuple[int, Any]]] = {}
        #: (op_id, generation, lid) -> completion future
        self._futures: Dict[Tuple[str, int, int], Future] = {}
        #: (op_id, lid) -> per-locality generation counters
        self._gen: Dict[Tuple[str, int], int] = {}
        #: (op_id, generation, dest) -> per-source exchange state
        self._xchg: Dict[Tuple[str, int, int], Dict[int, _Incoming]] = {}
        runtime.register_action(f"{prefix}_arrive", self._act_arrive)
        runtime.register_action(f"{prefix}_release", self._act_release)
        runtime.register_action(f"{prefix}_xchg", self._act_xchg)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _next_gen(self, op_id: str, lid: int) -> int:
        key = (op_id, lid)
        gen = self._gen.get(key, 0)
        self._gen[key] = gen + 1
        return gen

    def _future_for(self, op_id: str, gen: int, lid: int) -> Future:
        key = (op_id, gen, lid)
        fut = self._futures.get(key)
        if fut is None:
            fut = Future(self.rt.sim)
            self._futures[key] = fut
        return fut

    def _await(self, op_id: str, gen: int, lid: int, fut: Future):
        """Generator: wait for this participant's result, then drop the
        bookkeeping entry (the resolver may run before *or* after the
        waiter registers, so cleanup belongs to the waiter)."""
        result = yield fut.wait()
        self._futures.pop((op_id, gen, lid), None)
        return result

    # ------------------------------------------------------------------
    # root-based fan-in / fan-out
    # ------------------------------------------------------------------
    def _fold(self, op_id: str, mode: str,
              bucket: List[Tuple[int, Any]]) -> List[Any]:
        """Per-destination results (indexed by lid) for one completed op.

        Contributions are ordered by source locality before folding, so
        results never depend on network arrival order.
        """
        by_src = dict(bucket)
        ordered = [by_src[lid] for lid in range(self.n)]
        if mode == _BARRIER:
            return [None] * self.n
        if mode == _BCAST:
            return [ordered[self.root]] * self.n
        if mode == _SCATTER:
            values = ordered[self.root]
            return list(values)
        if mode == _GATHER:
            return [ordered if lid == self.root else None
                    for lid in range(self.n)]
        if mode == _ALL_GATHER:
            return [ordered] * self.n
        if mode.startswith("reduce:"):
            fn = REDUCTIONS[mode.split(":", 1)[1]]
            return [_functools_reduce(fn, ordered)] * self.n
        raise ValueError(f"{op_id!r}: unknown collective mode {mode!r}")

    def _act_arrive(self, worker, op_id: str, gen: int, src: int,
                    value: Any, mode: str, size: int):
        """Root-side action: collect one participant's contribution."""
        key = (op_id, gen)
        bucket = self._gather.setdefault(key, [])
        bucket.append((src, value))
        if len(bucket) < self.n:
            return None
        del self._gather[key]
        results = self._fold(op_id, mode, bucket)
        out_size = _result_size(mode, size, self.n)

        def fanout(w, results=results):
            for lid in range(self.n):
                if lid == self.root:
                    self._future_for(op_id, gen, lid).set_result(
                        results[lid])
                else:
                    yield from w.locality.apply(
                        w, lid, f"{self.prefix}_release",
                        (op_id, gen, results[lid]),
                        arg_sizes=[8, 8, out_size])

        worker.locality.spawn(fanout, name=f"{op_id}_fanout")
        return None

    def _act_release(self, worker, op_id: str, gen: int, result: Any):
        self._future_for(op_id, gen, worker.locality.lid).set_result(result)
        return None

    def _participate(self, worker, op_id: str, value: Any, mode: str,
                     size: int):
        lid = worker.locality.lid
        gen = self._next_gen(op_id, lid)
        fut = self._future_for(op_id, gen, lid)
        if lid == self.root:
            # run the arrive logic locally (no self-message)
            self._act_arrive(worker, op_id, gen, lid, value, mode, size)
        else:
            yield from worker.locality.apply(
                worker, self.root, f"{self.prefix}_arrive",
                (op_id, gen, lid, value, mode, size),
                arg_sizes=[8, 8, 8, size, 8, 8])
        result = yield from self._await(op_id, gen, lid, fut)
        return result

    # ------------------------------------------------------------------
    # public collectives (generators; call from a task on EVERY locality)
    # ------------------------------------------------------------------
    def barrier(self, worker, op_id: str):
        """Generator: block until all localities entered this barrier."""
        yield from self._participate(worker, op_id, None, _BARRIER, size=8)

    def broadcast(self, worker, op_id: str, value: Any = None,
                  size: int = 8):
        """Generator → the root's ``value`` on every locality.

        Non-root callers pass ``value=None``; only the root's survives.
        """
        result = yield from self._participate(worker, op_id, value, _BCAST,
                                              size=size)
        return result

    def reduce(self, worker, op_id: str, value: Any, op: str = "sum",
               size: int = 8):
        """Generator → the reduction of all contributions (delivered to
        every participant, i.e. allreduce semantics)."""
        if op not in REDUCTIONS:
            raise KeyError(f"unknown reduction {op!r}; have "
                           f"{sorted(REDUCTIONS)}")
        result = yield from self._participate(worker, op_id, value,
                                              f"reduce:{op}", size=size)
        return result

    # alias with the conventional name
    allreduce = reduce

    def scatter(self, worker, op_id: str,
                values: Optional[Sequence[Any]] = None, size: int = 8):
        """Generator → ``values[lid]`` from the root's length-``n`` list.

        Non-root callers pass ``values=None``; ``size`` is the wire size
        of one scattered element.
        """
        if worker.locality.lid == self.root and (
                values is None or len(values) != self.n):
            raise ValueError(f"scatter {op_id!r}: root must supply exactly "
                             f"{self.n} values")
        result = yield from self._participate(worker, op_id, values,
                                              _SCATTER, size=size)
        return result

    def gather(self, worker, op_id: str, value: Any, size: int = 8):
        """Generator → on the root, the list of all contributions in
        locality order; ``None`` everywhere else (all callers still
        synchronize on completion)."""
        result = yield from self._participate(worker, op_id, value,
                                              _GATHER, size=size)
        return result

    def all_gather(self, worker, op_id: str, value: Any, size: int = 8):
        """Generator → the list of all contributions (locality order) on
        every participant."""
        result = yield from self._participate(worker, op_id, value,
                                              _ALL_GATHER, size=size)
        return result

    # ------------------------------------------------------------------
    # all-to-all: the transpose primitive (direct exchange, incast)
    # ------------------------------------------------------------------
    def _xchg_deposit(self, op_id: str, gen: int, dest: int, src: int,
                      part: int, total: int, chunk: Any) -> None:
        """Record one arrived chunk (or fragment); resolve the
        destination's future once all ``n`` sources are complete."""
        state = self._xchg.setdefault((op_id, gen, dest), {})
        inc = state.get(src)
        if inc is None:
            inc = state[src] = _Incoming(total if part >= 0 else -1)
        inc.add(part, chunk)
        if len(state) == self.n and all(i.complete
                                        for i in state.values()):
            result = [state[s].value() for s in range(self.n)]
            del self._xchg[(op_id, gen, dest)]
            self._future_for(op_id, gen, dest).set_result(result)

    def _act_xchg(self, worker, op_id: str, gen: int, src: int, part: int,
                  total: int, chunk: Any):
        self._xchg_deposit(op_id, gen, worker.locality.lid, src, part,
                           total, chunk)
        return None

    def all_to_all(self, worker, op_id: str, values: Sequence[Any],
                   size: int = 8, fragment: bool = False):
        """Generator → the transpose of the participants' contributions.

        Every locality supplies ``values``, a length-``n`` list whose
        ``j``-th entry is destined for locality ``j``; the call returns,
        on locality ``j``, the list ``[values_i[j] for i in range(n)]``
        (locality order).  Chunks travel **directly** source→destination
        — no root in the middle — so the op puts ``n·(n-1)`` simultaneous
        messages on the fabric: the incast pattern of an FFT transpose.

        ``size`` is the wire size of one chunk (or of one fragment when
        ``fragment=True``).  With ``fragment=True`` each ``values[j]``
        must be a non-empty sequence; its items are sent as *separate*
        messages and reassembled in index order at the destination — how
        real FFT transposes ship row segments, and the knob that deepens
        per-peer in-flight backlogs enough to engage credit windows.

        Destinations are walked in rotated order (``lid+1, lid+2, …``)
        so the instantaneous fan-in spreads over all receivers instead
        of dog-piling locality 0 first.
        """
        lid = worker.locality.lid
        if len(values) != self.n:
            raise ValueError(f"all_to_all {op_id!r}: need exactly {self.n} "
                             f"chunks, got {len(values)}")
        if fragment and any(len(v) == 0 for v in values):
            raise ValueError(f"all_to_all {op_id!r}: fragmented chunks "
                             f"must be non-empty")
        gen = self._next_gen(op_id, lid)
        fut = self._future_for(op_id, gen, lid)
        # own chunk: no self-message (HPX short-circuits local parcels)
        if fragment:
            own = values[lid]
            for part, item in enumerate(own):
                self._xchg_deposit(op_id, gen, lid, lid, part, len(own),
                                   item)
        else:
            self._xchg_deposit(op_id, gen, lid, lid, -1, 1, values[lid])
        for offset in range(1, self.n):
            dest = (lid + offset) % self.n
            chunk = values[dest]
            if fragment:
                for part, item in enumerate(chunk):
                    yield from worker.locality.apply(
                        worker, dest, f"{self.prefix}_xchg",
                        (op_id, gen, lid, part, len(chunk), item),
                        arg_sizes=[8, 8, 8, 8, 8, size])
            else:
                yield from worker.locality.apply(
                    worker, dest, f"{self.prefix}_xchg",
                    (op_id, gen, lid, -1, 1, chunk),
                    arg_sizes=[8, 8, 8, 8, 8, size])
        result = yield from self._await(op_id, gen, lid, fut)
        return result


def _result_size(mode: str, size: int, n: int) -> int:
    """Wire size of one fan-out result for a root-based collective."""
    if mode in (_BARRIER, _GATHER):
        return 8
    if mode == _ALL_GATHER:
        return max(8, size * n)
    return max(8, size)
