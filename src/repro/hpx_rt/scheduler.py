"""Worker threads and the per-locality task scheduler.

Mirrors the execution model the paper describes for HPX:

* one worker thread per core (all cores, unless the parcelport reserves
  core 0 for a pinned progress thread — the ``rp``/``pin`` configurations);
* workers run application tasks; **when idle they call the parcelport's
  ``background_work``** (§3.1 "Threads and background work");
* still-idle workers back off exponentially and are woken by task arrivals
  or NIC activity.

Thread-weight scaling (see :mod:`repro.hpx_rt.platform`): ``worker.compute``
divides by ``thread_weight`` so one simulated core provides the throughput
of ``weight`` physical cores, while ``worker.cpu`` (communication-path
cycles) is unscaled.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..sim.core import AnyOf, Event, Simulator
from ..sim.primitives import SpinLock
from ..sim.stats import StatSet
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Locality

__all__ = ["Scheduler", "Worker"]


class Scheduler:
    """Shared FIFO task queue + sleeping-worker wake list for one locality."""

    def __init__(self, sim: Simulator, name: str = "sched"):
        self.sim = sim
        self.name = name
        self._queue: Deque[Task] = deque()
        self._sleepers: Deque[Event] = deque()
        #: lazily tombstoned sleeper events: unregistering is O(1) set-add
        #: instead of deque.remove's O(n); entries are reclaimed at the
        #: next notify or by compaction
        self._stale: set = set()
        self.stats = StatSet(name)

    # -- task queue -------------------------------------------------------
    def push(self, task: Task) -> None:
        self._queue.append(task)
        self.stats.inc("tasks_pushed")
        self.notify()

    def try_pop(self) -> Optional[Task]:
        if self._queue:
            self.stats.inc("tasks_popped")
            return self._queue.popleft()
        return None

    def pending(self) -> int:
        return len(self._queue)

    # -- sleep/wake -------------------------------------------------------------
    def register_sleeper(self, ev: Event) -> None:
        self._sleepers.append(ev)

    def unregister_sleeper(self, ev: Event) -> None:
        if ev.triggered:
            # Already popped (and woken) by notify — nothing to reclaim.
            return
        self._stale.add(ev)
        if len(self._stale) > 8 and 2 * len(self._stale) >= len(self._sleepers):
            stale = self._stale
            self._sleepers = deque(
                e for e in self._sleepers if e not in stale)
            stale.clear()

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` sleeping workers (skipping stale entries)."""
        woken = 0
        sleepers = self._sleepers
        stale = self._stale
        while sleepers and woken < n:
            ev = sleepers.popleft()
            if stale and ev in stale:
                stale.discard(ev)
                continue
            if not ev.triggered:
                ev.succeed()
                woken += 1

    def notify_all(self) -> None:
        self.notify(n=len(self._sleepers))


class Worker:
    """One worker thread pinned to one core of a locality."""

    def __init__(self, locality: "Locality", core_id: int):
        self.locality = locality
        self.core_id = core_id
        self.sim = locality.sim
        self.cost = locality.cost
        self._weight = locality.platform.thread_weight
        self.stats = StatSet(f"L{locality.lid}.w{core_id}")
        self.name = f"L{locality.lid}/w{core_id}"
        #: span recorder (None => tracing off, zero overhead)
        self.obs = getattr(locality.runtime, "obs", None)

    # -- time helpers used by task bodies ------------------------------------
    def cpu(self, us: float) -> float:
        """Unscaled CPU time: communication-path / per-message cycles.

        Returns the bare charge; yielding it takes the kernel's float
        fast path — the same heap record ``yield sim.timeout(us)`` would
        schedule, without the Timeout allocation.  This is the single
        hottest call in the stack (every poll, copy and post charges
        through it).
        """
        self.stats.add("cpu_us", us)
        return us

    def compute(self, us: float) -> float:
        """Application compute, scaled by the platform thread weight."""
        scaled = us / self._weight
        self.stats.add("compute_us", scaled)
        return scaled

    def compute_granular(self, us: float):
        """Generator: compute that stands for a *batch* of fine-grained
        HPX tasks.

        Real HPX applications express big computations as many small
        tasks, so the scheduler (and with it the parcelport's background
        work) runs between them.  A monolithic ``compute`` would starve
        communication for its whole duration; this slices the work at the
        platform task granularity and gives the parcelport one background
        slice per boundary — on the MPI parcelport that is exactly where
        worker threads queue up on the big progress lock.
        """
        remaining = us / self._weight
        slice_us = self.cost.task_slice_us
        self.stats.add("compute_us", remaining)
        while remaining > 0.0:
            dt = min(slice_us, remaining)
            remaining -= dt
            yield dt
            if remaining > 0.0:
                yield from self.locality.parcelport.background_work(self)

    def lock(self, lk: SpinLock):
        """Generator: blockingly acquire a spin lock (FIFO)."""
        t0 = self.sim.now
        yield lk.acquire()
        self.lock_acquired(lk, t0)

    def lock_acquired(self, lk: SpinLock, t0: float) -> None:
        """Post-acquire bookkeeping for hot call sites that inline
        :meth:`lock` as a bare ``yield lk.acquire()`` (same event, same
        stats — minus one generator per acquisition)."""
        now = self.sim.now
        self.stats.add("lock_wait_us", now - t0)
        if self.obs is not None and now > t0:
            self.obs.complete("lock", "wait", t0, now,
                              loc=self.locality.lid, tid=self.name,
                              lock=lk.name)

    # -- main loop ----------------------------------------------------------
    def start(self) -> None:
        self.sim.process(self._run(), name=self.name)

    def _run(self):
        sched = self.locality.sched
        cost = self.cost
        rt = self.locality.runtime
        backoff = cost.idle_poll_min_us
        since_bg = 0
        while rt.running:
            task = sched.try_pop()
            if task is not None:
                yield self.cpu(cost.task_dispatch_us)
                self.stats.inc("tasks_run")
                body = task.fn(self)
                if body is not None:
                    yield from body
                backoff = cost.idle_poll_min_us
                # HPX interleaves background work with task scheduling:
                # even a saturated worker gives the parcelport one slice
                # every few tasks, else in-flight sends would starve.
                since_bg += 1
                if since_bg >= 2:
                    since_bg = 0
                    yield from self.locality.parcelport.background_work(self)
                continue

            did = yield from self.locality.parcelport.background_work(self)
            self.stats.inc("background_calls")
            if did:
                self.stats.inc("background_useful")
                backoff = cost.idle_poll_min_us
                continue

            # Nothing to do: sleep until woken or poll timer expires.
            wake = Event(self.sim)
            sched.register_sleeper(wake)
            yield AnyOf(self.sim, [wake, self.sim.timeout(backoff)])
            sched.unregister_sleeper(wake)
            backoff = min(backoff * 2.0, cost.idle_poll_max_us)
