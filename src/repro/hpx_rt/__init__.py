"""Simulated HPX asynchronous many-task runtime (the paper's §2.2 stack)."""

from .collectives import Collectives, REDUCTIONS
from .future import Future, Latch
from .parcel import HpxMessage, Parcel
from .parcel_layer import ParcelLayer
from .platform import (CostModel, EXPANSE, LAPTOP, PlatformSpec, ROSTAM,
                       platform_by_name)
from .runtime import HpxRuntime, Locality
from .scheduler import Scheduler, Worker
from .serialization import (deserialize_cost, serialize_cost,
                            serialize_parcels, split_args)
from .task import Task

__all__ = [
    "HpxRuntime", "Locality", "Worker", "Scheduler", "Task",
    "Future", "Latch", "Collectives", "REDUCTIONS",
    "Parcel", "HpxMessage", "ParcelLayer",
    "serialize_parcels", "serialize_cost", "deserialize_cost", "split_args",
    "CostModel", "PlatformSpec", "EXPANSE", "ROSTAM", "LAPTOP",
    "platform_by_name",
]
