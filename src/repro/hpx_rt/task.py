"""Task objects for the simulated HPX scheduler.

A task body is a callable ``fn(worker) -> generator | None``.  If it returns
a generator, the worker drives it (the body can ``yield`` simulator events,
e.g. ``worker.cpu(...)`` or a future's ``wait()``); a plain callable models
a zero-internal-wait task.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

__all__ = ["Task"]

_task_ids = itertools.count()


class Task:
    """One unit of work for a worker thread."""

    __slots__ = ("fn", "name", "tid")

    def __init__(self, fn: Callable, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "task")
        self.tid = next(_task_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task#{self.tid} {self.name}>"
