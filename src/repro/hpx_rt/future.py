"""Futures and lightweight control objects (LCOs) for the simulated runtime.

HPX applications coordinate through futures and LCOs; our benchmarks and the
mini Octo-Tiger use these to express dependencies without touching the
simulator kernel directly.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.core import Event, Simulator

__all__ = ["Future", "Latch"]


class Future:
    """Single-assignment value; tasks wait by yielding :meth:`wait`."""

    __slots__ = ("sim", "_event", "_done", "_value")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._event: Optional[Event] = None
        self._done = False
        self._value: Any = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("future not ready")
        return self._value

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise RuntimeError("future already set")
        self._done = True
        self._value = value
        if self._event is not None:
            self._event.succeed(value)

    def wait(self) -> Event:
        """An event that fires (with the value) when the future resolves."""
        ev = Event(self.sim)
        if self._done:
            ev.succeed(self._value)
        elif self._event is None:
            self._event = ev
        else:
            # fan-out: chain onto the existing event
            self._event.add_callback(lambda e: ev.succeed(e.value))
        return ev


class Latch:
    """Count-down latch: fires once :meth:`count_down` was called ``n`` times."""

    __slots__ = ("sim", "remaining", "_future")

    def __init__(self, sim: Simulator, n: int):
        if n < 0:
            raise ValueError("negative latch count")
        self.sim = sim
        self.remaining = n
        self._future = Future(sim)
        if n == 0:
            self._future.set_result()

    def count_down(self, n: int = 1) -> None:
        if self.remaining <= 0:
            raise RuntimeError("latch already open")
        self.remaining -= n
        if self.remaining < 0:
            raise RuntimeError("latch overshot")
        if self.remaining == 0:
            self._future.set_result()

    @property
    def open(self) -> bool:
        return self.remaining == 0

    def wait(self) -> Event:
        return self._future.wait()
