"""Parcels and serialized HPX messages.

Terminology follows §2.2 of the paper exactly:

* a **parcel** is one action invocation (action id + arguments + metadata);
* an **HPX message** is the serialized form of one *or more* parcels headed
  to the same destination locality, consisting of

  - one **non-zero-copy chunk** (all small arguments + parcel metadata),
  - zero or more **zero-copy chunks** (each one large argument, i.e. an
    argument of at least the zero-copy serialization threshold), and
  - a **transmission chunk** (argument index/length table), present only
    when there is at least one zero-copy chunk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

__all__ = ["Parcel", "HpxMessage", "PARCEL_METADATA_BYTES",
           "TRANSMISSION_ENTRY_BYTES"]

#: Serialized per-parcel metadata overhead (action id, destination, counts).
PARCEL_METADATA_BYTES = 64
#: Bytes per zero-copy chunk entry in the transmission chunk.
TRANSMISSION_ENTRY_BYTES = 16

_parcel_ids = itertools.count()
_msg_ids = itertools.count()


@dataclass
class Parcel:
    """One action invocation in flight.

    ``args`` is carried by reference (Python objects); ``arg_sizes`` gives
    the serialized size in bytes of each argument, which is what the cost
    model and chunking logic consume.
    """

    action: str
    dest: int
    src: int
    args: Tuple[Any, ...] = ()
    arg_sizes: Tuple[int, ...] = ()
    pid: int = field(default_factory=lambda: next(_parcel_ids))

    def __post_init__(self) -> None:
        if not self.arg_sizes and self.args:
            # Default: tiny scalar arguments of 8 bytes each.
            self.arg_sizes = tuple(8 for _ in self.args)
        elif len(self.arg_sizes) != len(self.args):
            raise ValueError(
                f"arg_sizes ({len(self.arg_sizes)}) does not match args "
                f"({len(self.args)})")
        if any(s < 0 for s in self.arg_sizes):
            raise ValueError("negative argument size")

    @property
    def payload_bytes(self) -> int:
        return sum(self.arg_sizes)

    @property
    def serialized_bytes(self) -> int:
        return PARCEL_METADATA_BYTES + self.payload_bytes


@dataclass
class HpxMessage:
    """A serialized batch of parcels: what the parcelport layer transfers."""

    dest: int
    src: int
    parcels: List[Parcel]
    non_zc_size: int          #: bytes in the non-zero-copy chunk
    zc_sizes: List[int]       #: one entry per zero-copy chunk
    trans_size: int           #: transmission-chunk bytes (0 if no zc chunks)
    #: end-to-end sequence number, assigned by the parcelport's
    #: reliability layer on first transmission (None when reliability is
    #: off); retransmissions reuse it so the receiver can dedup replays
    seq: Optional[int] = None
    #: True while this message holds one flow-control credit (set by the
    #: parcelport submit path, transferred to the in-flight entry and
    #: released exactly once — on ack or terminal failure)
    credited: bool = False
    #: process-global message id: the correlation key that links every
    #: observability record of this message's lifecycle into one chain
    mid: int = field(default_factory=lambda: next(_msg_ids))

    @property
    def has_zero_copy(self) -> bool:
        return bool(self.zc_sizes)

    @property
    def total_bytes(self) -> int:
        return self.non_zc_size + sum(self.zc_sizes) + self.trans_size

    @property
    def num_parcels(self) -> int:
        return len(self.parcels)

    def chunk_plan(self) -> List[Tuple[str, int]]:
        """The ordered (kind, size) list of follow-up chunks to transfer
        after the header — the 'chain of messages' of §3.1/§3.2.

        The header message itself (and whatever piggybacks on it) is the
        parcelport's business; this lists every chunk that *may* need its
        own message: the non-zero-copy chunk, the transmission chunk (iff
        any zero-copy chunk exists), then each zero-copy chunk.
        """
        plan: List[Tuple[str, int]] = [("non_zc", self.non_zc_size)]
        if self.has_zero_copy:
            plan.append(("trans", self.trans_size))
            plan.extend(("zc", s) for s in self.zc_sizes)
        return plan
