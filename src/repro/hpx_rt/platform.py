"""Platform descriptions and the CPU cost model.

Reproduces the paper's Tables 2 and 3 as machine presets, plus the knobs of
the calibrated software cost model (see DESIGN.md §4).

Core-count scaling
------------------
Simulating every one of Expanse's 128 cores as an always-polling process
would make discrete-event runs intractable, so a platform has
``sim_cores_per_node`` simulated cores and a ``thread_weight`` such that
``sim_cores × thread_weight == physical cores``.  The scaling rules:

* **compute** task costs are divided by ``thread_weight`` (one simulated
  core has the compute throughput of ``thread_weight`` physical cores);
* **communication-path** costs (serialization, lock holds, NIC posts) are
  *not* scaled — they are per-message costs on a single thread;
* an idle worker performs ``thread_weight`` progress attempts per background
  call, so aggregate pressure on progress locks matches the physical
  machine.  This is what lets the ``mpi_i``-on-Expanse collapse (Fig. 10)
  reproduce with 16 simulated cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..netsim.params import FDR_IB, HDR_IB, TESTNET, NetworkParams

__all__ = ["CostModel", "PlatformSpec", "EXPANSE", "ROSTAM", "LAPTOP",
           "platform_by_name"]


@dataclass(frozen=True)
class CostModel:
    """CPU-side software costs (µs unless noted).

    These are the calibrated constants behind every figure; they are chosen
    to land the simulated stack in the paper's regime (peak LCI parcel rate
    under 1 M/s with software, not the NIC, as the bottleneck).
    """

    # -- tasking -----------------------------------------------------------
    task_spawn_us: float = 0.25       #: create + enqueue one task
    task_dispatch_us: float = 0.15    #: scheduler pop + context setup
    #: one round of idle background work bookkeeping
    background_call_us: float = 0.05

    # -- serialization / memory -------------------------------------------
    serialize_base_us: float = 0.30
    serialize_per_byte_us: float = 0.00025   # ~4 GB/s archiving
    deserialize_base_us: float = 0.30
    deserialize_per_byte_us: float = 0.00025
    memcpy_per_byte_us: float = 0.0001       # ~10 GB/s copy
    alloc_us: float = 0.08                   #: dynamic buffer allocation

    # -- parcel layer --------------------------------------------------------
    parcel_create_us: float = 0.20
    action_dispatch_us: float = 0.25
    #: parcel-queue push/pop inside the queue spinlock.  Calibrated high:
    #: HPX's queue critical sections include allocation and batch
    #: bookkeeping, and this serial section is what pins the
    #: no-send-immediate configurations near the paper's ~400 K msg/s.
    queue_op_us: float = 1.0
    cache_op_us: float = 0.35         #: connection-cache get/put (in lock)
    spinlock_acquire_us: float = 0.03

    # -- HPX parameters ------------------------------------------------------
    zero_copy_threshold: int = 8192   #: bytes; HPX default from the paper
    max_connections_per_dest: int = 4
    max_header_size: int = 8192       #: == zero-copy threshold (paper §3.1)

    #: granularity at which big computations hand control back to the
    #: scheduler (HPX task sizes); background work runs at these seams
    task_slice_us: float = 300.0

    # -- idle loop -------------------------------------------------------------
    idle_poll_min_us: float = 0.5
    idle_poll_max_us: float = 20000.0

    def serialize_cost(self, nbytes: int) -> float:
        return self.serialize_base_us + nbytes * self.serialize_per_byte_us

    def deserialize_cost(self, nbytes: int) -> float:
        return self.deserialize_base_us + nbytes * self.deserialize_per_byte_us

    def memcpy_cost(self, nbytes: int) -> float:
        return nbytes * self.memcpy_per_byte_us

    def with_(self, **kw) -> "CostModel":
        return replace(self, **kw)


@dataclass(frozen=True)
class PlatformSpec:
    """One cluster from the paper (or a local testing stand-in)."""

    name: str
    phys_cores_per_node: int
    sim_cores_per_node: int
    max_nodes: int
    network: NetworkParams
    cost: CostModel = field(default_factory=CostModel)
    description: str = ""

    @property
    def thread_weight(self) -> float:
        """Physical threads represented by one simulated core."""
        return self.phys_cores_per_node / self.sim_cores_per_node

    def with_(self, **kw) -> "PlatformSpec":
        return replace(self, **kw)

    def table(self) -> "dict[str, str]":
        """Paper-style system-configuration table (cf. Tables 2 & 3)."""
        return {
            "Platform": self.name,
            "Cores/node (physical)": str(self.phys_cores_per_node),
            "Cores/node (simulated)": str(self.sim_cores_per_node),
            "Thread weight": f"{self.thread_weight:g}",
            "Max nodes": str(self.max_nodes),
            "Interconnect": self.network.name,
            "Wire latency (us)": f"{self.network.wire_latency_us:g}",
            "Bandwidth (GB/s)": f"{self.network.bytes_per_us / 1000:g}",
            "Description": self.description,
        }


#: SDSC Expanse (Table 2): AMD EPYC 7742, 128 cores/node, HDR InfiniBand.
EXPANSE = PlatformSpec(
    name="expanse",
    phys_cores_per_node=128,
    sim_cores_per_node=16,
    max_nodes=32,
    network=HDR_IB,
    description="SDSC Expanse: 2x AMD EPYC 7742, HDR IB (2x50Gbps), CX-6",
)

#: Rostam (Table 3): Intel Xeon Gold 6148, 40 cores/node, FDR InfiniBand.
ROSTAM = PlatformSpec(
    name="rostam",
    phys_cores_per_node=40,
    sim_cores_per_node=10,
    max_nodes=16,
    network=FDR_IB,
    description="LSU Rostam: 2x Xeon Gold 6148, FDR IB (4x14Gbps), CX-3",
)

#: Small, fast platform for unit tests and examples.
LAPTOP = PlatformSpec(
    name="laptop",
    phys_cores_per_node=4,
    sim_cores_per_node=4,
    max_nodes=8,
    network=TESTNET,
    description="synthetic 4-core test platform",
)

_PLATFORMS = {p.name: p for p in (EXPANSE, ROSTAM, LAPTOP)}


def platform_by_name(name: str) -> PlatformSpec:
    """Look up a preset platform (``expanse``, ``rostam``, ``laptop``)."""
    try:
        return _PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; have {sorted(_PLATFORMS)}") from None
