"""The HPX upper layer above the parcelport: parcel queues + connection cache.

This is the machinery the **send-immediate optimization** (§3.2.2) bypasses:

* a per-destination **parcel queue** (spinlock-protected): parcels are
  enqueued, then whoever obtains a connection drains the whole queue into a
  single HPX message — the aggregation mechanism;
* a **connection cache** (spinlock-protected, bounded): reuses parcelport
  sender-connection objects to limit allocation churn and bound concurrent
  in-flight HPX messages per destination.

In ``immediate`` mode, ``put_parcel`` serializes the single parcel right
away and hands it straight to the parcelport: no queue, no cache, no locks —
lower latency, no aggregation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING

from ..flow import (OVERFLOW_SHED, SEND_WOULD_BLOCK, FlowControlPolicy,
                    ParcelShedError)
from ..sim.primitives import SpinLock
from ..sim.stats import StatSet
from .parcel import Parcel
from .serialization import serialize_cost, serialize_parcels

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Locality
    from .scheduler import Worker

__all__ = ["ParcelLayer"]


class ParcelLayer:
    """Per-locality parcel-dispatch layer (the HPX 'upper layer' of §3.2.2)."""

    def __init__(self, locality: "Locality", immediate: bool):
        self.locality = locality
        self.sim = locality.sim
        self.cost = locality.cost
        self.immediate = immediate
        self.stats = StatSet(f"L{locality.lid}.parcel_layer")

        self._queues: Dict[int, Deque[Parcel]] = defaultdict(deque)
        self._queue_locks: Dict[int, SpinLock] = {}
        self._cache_lock = SpinLock(
            self.sim, f"L{locality.lid}.conn_cache",
            acquire_cost=self.cost.spinlock_acquire_us)
        self._free_conns: Dict[int, List[object]] = defaultdict(list)
        self._conn_count: Dict[int, int] = defaultdict(int)
        #: bounded sample of parcels whose message failed under faults
        self.failed_parcels: List[Parcel] = []
        self._max_failed_kept = 256
        #: end-to-end flow control (None => PR-1 behavior, zero overhead)
        self.flow: Optional[FlowControlPolicy] = getattr(
            locality.runtime, "flow_policy", None)
        #: bounded sample of parcels dropped by the ``shed`` overflow policy
        self.shed_parcels: List[Parcel] = []
        #: span recorder (None => tracing off, zero overhead)
        self.obs = getattr(locality.runtime, "obs", None)
        #: adaptive state (repro.adapt); None => no holds, zero overhead.
        #: Set by the AdaptiveController at boot.
        self.adapt = None
        self._held_bytes: Dict[int, int] = {}
        self._held_dests: set = set()

    def _qlock(self, dest: int) -> SpinLock:
        lk = self._queue_locks.get(dest)
        if lk is None:
            lk = SpinLock(self.sim, f"L{self.locality.lid}.pq{dest}",
                          acquire_cost=self.cost.spinlock_acquire_us)
            self._queue_locks[dest] = lk
        return lk

    # -- public entry point ---------------------------------------------------
    def put_parcel(self, worker: "Worker", parcel: Parcel):
        """Generator: hand one parcel to the network stack (§3.2.2 data path)."""
        if self.adapt is not None:
            # Mean-parcel-size signal for the adaptive controller.
            self.stats.inc("adapt_parcels")
            self.stats.inc("adapt_bytes", parcel.serialized_bytes)
        if self.immediate:
            yield from self._put_immediate(worker, parcel)
        else:
            yield from self._put_default(worker, parcel)

    # -- immediate path ---------------------------------------------------------
    def _put_immediate(self, worker: "Worker", parcel: Parcel):
        pp = self.locality.parcelport
        sp = None if self.obs is None else self.obs.begin(
            "parcel", "serialize", loc=self.locality.lid, tid=worker.name)
        msg = serialize_parcels([parcel], self.cost)
        yield worker.cpu(serialize_cost(msg, self.cost))
        if self.obs is not None:
            self.obs.end(sp, mid=msg.mid, parcels=1, bytes=msg.total_bytes,
                         dest=msg.dest)
        conn = pp.make_connection(parcel.dest)
        while True:
            status = yield from pp.submit_message(
                worker, conn, msg, self._immediate_done)
            if status != SEND_WOULD_BLOCK:
                self.stats.inc("messages_sent")
                self.stats.inc("parcels_sent")
                return
            if self.flow is not None and self.flow.overflow == OVERFLOW_SHED:
                self._shed(parcel)
                return
            # Backpressure: this task is throttled, but it keeps *driving*
            # the stack (delivering acks frees credits, pumping the backlog)
            # so progress never depends on some other worker being idle.
            self.stats.inc("puts_deferred")
            yield from pp.background_work(worker, rounds=1)

    def _immediate_done(self, worker: "Worker", conn) -> None:
        # Transient connection: nothing to recycle.
        self.stats.inc("immediate_completions")
        return None

    # -- default (queue + cache) path ---------------------------------------
    def _put_default(self, worker: "Worker", parcel: Parcel):
        dest = parcel.dest
        fl = self.flow
        if fl is not None and fl.max_queued_parcels:
            while len(self._queues[dest]) >= fl.max_queued_parcels:
                if fl.overflow == OVERFLOW_SHED:
                    self._shed(parcel)
                    return
                # Queue full: throttle the producer, but keep draining —
                # both the network (acks/credits) and our own queue, so
                # progress holds even with every worker stuck in a put.
                self.stats.inc("puts_deferred")
                yield from self.locality.parcelport.background_work(
                    worker, rounds=1)
                if len(self._queues[dest]) >= fl.max_queued_parcels:
                    yield from self._pump(worker, dest)
        qlock = self._qlock(dest)
        yield from worker.lock(qlock)
        yield worker.cpu(self.cost.queue_op_us)
        self._queues[dest].append(parcel)
        qlock.release()
        ad = self.adapt
        if ad is not None and ad.agg_hold_bytes > 0:
            # Adaptive aggregation hold: skip the pump while fewer than
            # agg_hold_bytes are queued for this destination, so the next
            # drain carries a deeper batch.  The controller flushes held
            # destinations every tick, bounding the added latency to one
            # controller interval.
            held = self._held_bytes.get(dest, 0) + parcel.serialized_bytes
            if held < ad.agg_hold_bytes:
                self._held_bytes[dest] = held
                self._held_dests.add(dest)
                self.stats.inc("adapt_holds")
                return
            self._held_bytes[dest] = 0
            self._held_dests.discard(dest)
        yield from self._pump(worker, dest)

    def _pump(self, worker: "Worker", dest: int):
        """Try to obtain a connection and drain the parcel queue into it."""
        pp = self.locality.parcelport
        conn = None
        create = False
        yield from worker.lock(self._cache_lock)
        yield worker.cpu(self.cost.cache_op_us)
        free = self._free_conns[dest]
        if free:
            conn = free.pop()
            self.stats.inc("cache_hits")
        elif self._conn_count[dest] < self.cost.max_connections_per_dest:
            self._conn_count[dest] += 1
            create = True
            self.stats.inc("cache_misses")
        self._cache_lock.release()
        if create:
            yield worker.cpu(self.cost.alloc_us)
            conn = pp.make_connection(dest)
        if conn is None:
            # All connections busy; their completion will pump the queue —
            # this wait is where aggregation opportunity comes from.
            self.stats.inc("pump_deferred")
            return
        yield from self._drain_into(worker, dest, conn)

    def _drain_into(self, worker: "Worker", dest: int, conn):
        """Drain the queue into ``conn``; recycle ``conn`` if queue empty."""
        pp = self.locality.parcelport
        fl = self.flow
        if (fl is not None and fl.overflow != OVERFLOW_SHED
                and not pp.can_accept(dest)):
            # Known-full backlog: don't waste serialization work — park the
            # drain until the parcelport has room again (shed policy instead
            # proceeds and sheds whatever the submit refuses).
            yield from self._defer_drain(worker, dest, conn)
            return
        qlock = self._qlock(dest)
        yield from worker.lock(qlock)
        q = self._queues[dest]
        parcels = list(q)
        q.clear()
        if self.adapt is not None:
            # Whatever was held is leaving now; restart the hold window.
            self._held_bytes[dest] = 0
            self._held_dests.discard(dest)
        yield worker.cpu(self.cost.queue_op_us * max(1, len(parcels)))
        qlock.release()
        if not parcels:
            yield from self._recycle(worker, conn)
            return
        sp = None if self.obs is None else self.obs.begin(
            "parcel", "serialize", loc=self.locality.lid, tid=worker.name)
        msg = serialize_parcels(parcels, self.cost)
        yield worker.cpu(serialize_cost(msg, self.cost))
        if self.obs is not None:
            self.obs.end(sp, mid=msg.mid, parcels=len(parcels),
                         bytes=msg.total_bytes, dest=msg.dest)
        status = yield from pp.submit_message(
            worker, conn, msg, self._on_send_complete)
        if status != SEND_WOULD_BLOCK:
            self.stats.inc("messages_sent")
            self.stats.inc("parcels_sent", len(parcels))
            if len(parcels) > 1:
                self.stats.inc("aggregated_messages")
                self.stats.inc("aggregated_parcels", len(parcels))
            return
        if fl is not None and fl.overflow == OVERFLOW_SHED:
            for parcel in parcels:
                self._shed(parcel)
            yield from self._recycle(worker, conn)
            return
        # Defer: push the batch back (preserving order) and retry once the
        # parcelport signals room.
        yield from worker.lock(qlock)
        self._queues[dest].extendleft(reversed(parcels))
        self.stats.inc("parcels_requeued", len(parcels))
        qlock.release()
        yield from self._defer_drain(worker, dest, conn)

    def _defer_drain(self, worker: "Worker", dest: int, conn):
        """Park a drain until the parcelport backlog for ``dest`` has room."""
        self.stats.inc("drains_deferred")
        pp = self.locality.parcelport
        yield from self._recycle(worker, conn)

        def wake(dest=dest):
            def drain(w, dest=dest):
                yield from self._pump(w, dest)

            self.locality.spawn(drain, name="pp_drain")

        pp.notify_when_accepting(dest, wake)

    def _shed(self, parcel: Parcel) -> None:
        """Overload-shed one parcel (bounded sample + app-visible failure)."""
        fl = self.flow
        self.stats.inc("parcels_shed")
        if self.obs is not None:
            self.obs.instant("parcel", "shed", loc=self.locality.lid,
                             pid=parcel.pid, dest=parcel.dest)
        if fl is not None and len(self.shed_parcels) < fl.shed_sample:
            self.shed_parcels.append(parcel)
        hook = getattr(self.locality.runtime, "on_parcel_failure", None)
        if hook is not None:
            hook(parcel, ParcelShedError(
                f"parcel to L{parcel.dest} shed under overload"))

    def _on_send_complete(self, worker: "Worker", conn) -> None:
        """Callback when a send finishes: requeue the drain as a task.

        Scheduling (rather than draining inline) bounds the generator
        nesting depth when the parcel queue is continuously refilled, and
        matches HPX handing continuation work back to the scheduler.
        """
        def drain(w, conn=conn):
            yield from self._drain_into(w, conn.dest, conn)

        self.locality.spawn(drain, name="pp_drain")
        return None

    def _recycle(self, worker: "Worker", conn):
        yield from worker.lock(self._cache_lock)
        yield worker.cpu(self.cost.cache_op_us)
        self._free_conns[conn.dest].append(conn)
        self._cache_lock.release()

    # -- fault-recovery hooks (called by the parcelport's reliability layer)
    def release_connection(self, conn) -> None:
        """Return an *aborted* sender connection to the cache.

        The reliability layer withdraws a connection mid-chain before
        retransmitting its message; the normal ``on_complete`` path will
        never run for it, so without this the cache's per-destination
        capacity would bleed away until every send deferred forever.
        Pure bookkeeping (no simulated cost — the abort path already
        charged its own), plus a queue pump in case parcels were waiting
        on the capacity we just returned.
        """
        self.stats.inc("connections_released")
        if self.immediate:
            return                       # transient conns: nothing cached
        # The aborted object itself is retired (late completions from its
        # old chain must keep seeing ``aborted``); only its capacity slot
        # returns, so the next pump can mint a fresh connection.
        dest = conn.dest
        if self._conn_count[dest] > 0:
            self._conn_count[dest] -= 1

        def drain(w, dest=dest):
            yield from self._pump(w, dest)

        self.locality.spawn(drain, name="pp_drain")

    def report_send_failure(self, msg, exc: Exception) -> None:
        """An HPX message exhausted its retries: degrade gracefully.

        Counts the failure, remembers a bounded sample of failed parcels,
        and invokes the runtime's ``on_parcel_failure`` hook per parcel
        (applications use it to fail the corresponding futures) — the
        guaranteed alternative to an infinite hang.
        """
        self.stats.inc("messages_failed")
        self.stats.inc("parcels_failed", msg.num_parcels)
        if len(self.failed_parcels) < self._max_failed_kept:
            self.failed_parcels.extend(
                msg.parcels[:self._max_failed_kept
                            - len(self.failed_parcels)])
        hook = getattr(self.locality.runtime, "on_parcel_failure", None)
        if hook is not None:
            for parcel in msg.parcels:
                hook(parcel, exc)

    # -- adaptive-aggregation hooks (called by the AdaptiveController) -------
    def take_held(self) -> List[int]:
        """Destinations currently holding parcels below the aggregation

        threshold, in deterministic (sorted) order; clears the hold state
        so the controller's flush is one-shot per tick.
        """
        if not self._held_dests:
            return []
        dests = sorted(self._held_dests)
        self._held_dests.clear()
        for dest in dests:
            self._held_bytes[dest] = 0
        return dests

    def spawn_flush(self, dest: int) -> None:
        """Schedule a pump for ``dest`` (ends an aggregation hold)."""
        self.stats.inc("adapt_flushes")

        def drain(w, dest=dest):
            yield from self._pump(w, dest)

        self.locality.spawn(drain, name="adapt_flush")

    # -- introspection -------------------------------------------------------
    def queued_parcels(self, dest: Optional[int] = None) -> int:
        if dest is not None:
            return len(self._queues[dest])
        return sum(len(q) for q in self._queues.values())

    def aggregation_ratio(self) -> float:
        """Mean parcels per HPX message actually sent."""
        msgs = self.stats.counters.get("messages_sent", 0)
        parcels = self.stats.counters.get("parcels_sent", 0)
        return parcels / msgs if msgs else 0.0
