"""The simulated HPX runtime: localities, actions, message delivery.

A :class:`HpxRuntime` owns the simulator, the network fabric, and a set of
:class:`Locality` objects (one per node — matching the paper's one-process-
per-node runs).  Applications:

1. register actions (``runtime.register_action``),
2. boot (``runtime.boot()``),
3. spawn tasks on localities; tasks invoke remote actions with
   ``yield from locality.apply(worker, dest, "action", args, arg_sizes)``,
4. drive the simulation with ``runtime.run_until(future)``.

The parcelport for each locality is produced by a user-supplied factory so
this module stays independent of :mod:`repro.parcelport`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import FaultInjector, FaultPlan, RetryPolicy
from ..flow import FlowControlPolicy
from ..netsim.fabric import Fabric
from ..obs.spans import SpanRecorder
from ..sim.core import Event, Simulator
from ..sim.rng import RngPool
from ..sim.stats import StatSet
from .future import Future, Latch
from .parcel import HpxMessage, Parcel
from .parcel_layer import ParcelLayer
from .platform import CostModel, PlatformSpec
from .scheduler import Scheduler, Worker
from .serialization import deserialize_cost
from .task import Task

__all__ = ["HpxRuntime", "Locality"]


class Locality:
    """One HPX process (== one node in all the paper's experiments)."""

    def __init__(self, runtime: "HpxRuntime", lid: int):
        self.runtime = runtime
        self.lid = lid
        self.sim = runtime.sim
        self.platform = runtime.platform
        self.cost = runtime.cost
        self.nic = runtime.fabric.add_node(lid)
        self.sched = Scheduler(self.sim, name=f"L{lid}.sched")
        self.nic.on_deliver = self.sched.notify
        self.parcelport = None  # set by HpxRuntime.boot()
        self.parcel_layer: Optional[ParcelLayer] = None
        self.workers: List[Worker] = []
        self.stats = StatSet(f"L{lid}")

    # -- tasking ------------------------------------------------------------
    def spawn(self, fn: Callable, name: str = "") -> None:
        """Enqueue a task (``fn(worker) -> generator | None``)."""
        self.sched.push(Task(fn, name=name))

    # -- remote invocation -------------------------------------------------
    def apply(self, worker: Worker, dest: int, action: str,
              args: Tuple[Any, ...] = (),
              arg_sizes: Optional[Sequence[int]] = None):
        """Generator: invoke ``action`` on locality ``dest`` (§2.2 RPC path)."""
        if action not in self.runtime.actions:
            raise KeyError(f"unregistered action {action!r}")
        yield worker.cpu(self.cost.parcel_create_us)
        parcel = Parcel(action=action, dest=dest, src=self.lid, args=args,
                        arg_sizes=tuple(arg_sizes) if arg_sizes is not None
                        else tuple(8 for _ in args))
        self.stats.inc("parcels_created")
        if dest == self.lid:
            # Local invocation: HPX short-circuits the network entirely.
            self._spawn_parcel_task(parcel)
            return
        obs = self.runtime.obs
        if obs is not None:
            obs.instant("parcel", "submit", loc=self.lid, tid=worker.name,
                        pid=parcel.pid, dest=dest, action=action)
        yield from self.parcel_layer.put_parcel(worker, parcel)

    # -- receive upcall (called by the parcelport) ---------------------------
    def on_message(self, msg: HpxMessage) -> None:
        """Deliver a fully-received HPX message: decode + run its actions."""
        self.stats.inc("messages_received")
        cost = self.cost

        def decode(worker: Worker, msg=msg):
            yield worker.cpu(deserialize_cost(msg, cost))
            for parcel in msg.parcels:
                yield worker.cpu(cost.task_spawn_us)
                self._spawn_parcel_task(parcel)

        self.spawn(decode, name="decode")

    def _spawn_parcel_task(self, parcel: Parcel) -> None:
        runtime = self.runtime
        cost = self.cost
        self.stats.inc("parcels_executed")

        def run_action(worker: Worker, parcel=parcel):
            yield worker.cpu(cost.action_dispatch_us)
            handler = runtime.actions[parcel.action]
            body = handler(worker, *parcel.args)
            if body is not None:
                yield from body

        self.spawn(run_action, name=parcel.action)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Locality {self.lid}>"


class HpxRuntime:
    """Simulated distributed HPX instance."""

    def __init__(self, platform: PlatformSpec, n_localities: int,
                 parcelport_factory: Callable[[Locality], Any],
                 immediate: bool = False,
                 cost: Optional[CostModel] = None,
                 seed: int = 0xC0FFEE,
                 fabric_factory: Optional[Callable] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 reliable: Optional[bool] = None,
                 flow_policy: Optional[FlowControlPolicy] = None,
                 trace: "str | bool | None" = None,
                 adapt: "Any | None" = None):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        if n_localities > platform.max_nodes:
            raise ValueError(
                f"{platform.name} allows at most {platform.max_nodes} nodes "
                f"(asked for {n_localities}) — same limit as the paper")
        self.platform = platform
        self.cost = cost if cost is not None else platform.cost
        self.sim = Simulator()
        self.rng = RngPool(seed)
        # fabric_factory(sim, params) lets experiments swap the default
        # non-blocking crossbar for e.g. an oversubscribed FatTreeFabric.
        if fabric_factory is None:
            self.fabric = Fabric(self.sim, platform.network)
        else:
            self.fabric = fabric_factory(self.sim, platform.network)
        # Fault injection: a zero plan (or None) means *no* injector at
        # all — the fault-free fast paths stay byte-identical to a build
        # without the faults layer.
        self.fault_plan = fault_plan
        if fault_plan is not None and not fault_plan.is_zero:
            self.fault_injector: Optional[FaultInjector] = FaultInjector(
                self.sim, fault_plan, self.rng.stream("faults"))
            self.fabric.injector = self.fault_injector
        else:
            self.fault_injector = None
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        #: parcelports build their reliability layer iff this is True;
        #: defaults to "faults are active", overridable for tests that
        #: want the ack protocol without losses (or vice versa)
        self.reliable = (reliable if reliable is not None
                         else self.fault_injector is not None)
        #: end-to-end flow control (credits + bounded backlogs); None keeps
        #: every flow check compiled out of the data path
        self.flow_policy = flow_policy
        #: hook(parcel, exc) invoked for every parcel of a message that
        #: exhausted its retries (or was shed under overload) — applications
        #: fail futures here
        self.on_parcel_failure: Optional[Callable] = None
        self.actions: Dict[str, Callable] = {}
        self.running = True
        self.immediate = immediate
        #: span recorder (repro.obs); None keeps every instrumentation
        #: site compiled down to a single ``is not None`` check — a
        #: traced-off run is byte-identical to a build without repro.obs
        self.obs: Optional[SpanRecorder] = (
            SpanRecorder(self.sim, spec=trace) if trace else None)
        self.localities: List[Locality] = [
            Locality(self, lid) for lid in range(n_localities)]
        if self.obs is not None:
            self.fabric.obs = self.obs
            for loc in self.localities:
                loc.nic.obs = self.obs
        #: adaptive policies (repro.adapt); None keeps every adaptation
        #: hook down to a single ``is not None`` check — an adaptive-off
        #: run is byte-identical to a build without repro.adapt.  Accepts
        #: an AdaptiveSpec, a spec dict, or True (defaults).
        if adapt is None or adapt is False:
            self.adapt_spec = None
        else:
            from ..adapt import AdaptiveSpec
            if adapt is True:
                self.adapt_spec = AdaptiveSpec()
            elif isinstance(adapt, dict):
                self.adapt_spec = AdaptiveSpec.from_dict(adapt)
            else:
                self.adapt_spec = adapt
        #: the AdaptiveController, built at boot() when adapt_spec is set
        self.adapt = None
        self._pp_factory = parcelport_factory
        self._booted = False
        # Sharded engine: when a shard context is active this runtime is
        # one shard's replica of the world — attach derives the owned
        # locality set and arms the fabric's export boundary.
        from ..sim.shard.context import current_context
        self.shard_ctx = current_context()
        #: peer shards' fault/flow snapshots, absorbed on the root shard
        #: at the collective stop (empty everywhere else)
        self._peer_faults: List[Dict[str, int]] = []
        self._peer_flow: List[Dict[str, Any]] = []
        if self.shard_ctx is not None:
            self.shard_ctx.attach(self)
            if self.shard_ctx.n_shards > 1:
                self.shard_ctx.register_contrib(
                    "rt.faults", self._collect_faults,
                    self._peer_faults.append)
                self.shard_ctx.register_contrib(
                    "rt.flow", self._collect_flow,
                    self._peer_flow.append)

    # -- setup -------------------------------------------------------------
    def register_action(self, name: str, fn: Callable) -> None:
        """Register ``fn(worker, *args) -> generator | None`` as an action."""
        if name in self.actions:
            raise ValueError(f"action {name!r} already registered")
        self.actions[name] = fn

    def action(self, name: str) -> Callable:
        """Decorator form of :meth:`register_action`."""
        def deco(fn: Callable) -> Callable:
            self.register_action(name, fn)
            return fn
        return deco

    def boot(self) -> None:
        """Create parcelports and start worker (and progress) threads."""
        if self._booted:
            raise RuntimeError("runtime already booted")
        self._booted = True
        for loc in self.localities:
            loc.parcelport = self._pp_factory(loc)
            loc.parcel_layer = ParcelLayer(loc, immediate=self.immediate)
        # The adaptive controller attaches after parcelports and layers
        # exist but before any starts, so every stack sees the shared
        # state from its first event onward.
        if self.adapt_spec is not None:
            from ..adapt import AdaptiveController
            self.adapt = AdaptiveController(self, self.adapt_spec)
        # Parcelports exist on all localities before any starts (so the
        # first message cannot arrive at an unbooted peer).  Under the
        # sharded engine only *owned* localities execute: construction is
        # replicated on every shard (identical rng draws), but progress
        # engines and workers start solely where the locality lives.
        ctx = self.shard_ctx
        for loc in self.localities:
            if ctx is not None and ctx.n_shards > 1 \
                    and loc.lid not in ctx.owned:
                continue
            loc.parcelport.start()
            # A pinned progress thread (the rp/pin configurations) runs on
            # its own simulated core *in addition* to the workers: on the
            # real 128-core nodes its core share is 1/128 (negligible),
            # and charging it 1/16 of our scaled-down core count would
            # grossly exaggerate its cost.
            n_cores = self.platform.sim_cores_per_node
            for core in range(n_cores):
                w = Worker(loc, core)
                loc.workers.append(w)
                w.start()

    # -- execution -------------------------------------------------------------
    def locality(self, lid: int) -> Locality:
        return self.localities[lid]

    @property
    def now(self) -> float:
        return self.sim.now

    def new_future(self) -> Future:
        return Future(self.sim)

    def new_latch(self, n: int) -> Latch:
        return Latch(self.sim, n)

    def run_until(self, what: "Future | Latch | Event | float",
                  max_events: Optional[int] = None,
                  shard_mode: str = "root") -> Any:
        """Run the simulation until a future/latch/event fires (or a time).

        ``shard_mode`` only matters under ``--shards > 1``: ``"root"``
        stops the world when the root shard's event fires (results that
        live on one locality), ``"all"`` when every shard's local event
        has fired (results distributed across localities — e.g. the FFT
        latch).  The sequential engine ignores it.
        """
        if not self._booted:
            self.boot()
        if isinstance(what, (Future, Latch)):
            what = what.wait()
        ctx = self.shard_ctx
        if ctx is not None and ctx.n_shards > 1:
            return ctx.run_until(what, max_events=max_events,
                                 mode=shard_mode)
        return self.sim.run(until=what, max_events=max_events)

    # -- sharding ------------------------------------------------------------
    def shard_owns(self, lid: int) -> bool:
        """Does the current shard execute locality ``lid``?  (Always True
        on the sequential engine and under ``--shards 1``.)"""
        ctx = self.shard_ctx
        return (ctx is None or ctx.n_shards == 1
                or lid in ctx.owned)

    def _collect_faults(self) -> Dict[str, int]:
        return self._local_fault_summary()

    def _collect_flow(self) -> Dict[str, Any]:
        ctx = self.shard_ctx
        return {k: v for k, v in self._local_flow_summary().items()
                if int(k[1:]) in ctx.owned}

    def shutdown(self) -> None:
        """Stop worker loops (the simulator can then drain quickly)."""
        self.running = False
        for loc in self.localities:
            loc.sched.notify_all()

    # -- reporting -----------------------------------------------------------
    def metrics(self):
        """One :class:`~repro.obs.metrics.MetricsRegistry` view over this
        runtime: fault counters, flow gauges, parcelport/layer/worker
        stats, and span-derived histograms when tracing is on."""
        ctx = self.shard_ctx
        if ctx is not None and ctx.n_shards > 1:
            from ..sim.shard.context import ShardingUnsupported
            raise ShardingUnsupported(
                "runtime.metrics() sees only one shard's state under "
                "--shards > 1; use fault_summary()/flow_summary(), which "
                "merge across shards")
        from ..obs.metrics import build_runtime_metrics
        return build_runtime_metrics(self)

    def aggregate_stats(self) -> StatSet:
        total = StatSet("runtime")
        for loc in self.localities:
            total.merge(loc.stats)
            total.merge(loc.sched.stats)
            if loc.parcel_layer is not None:
                total.merge(loc.parcel_layer.stats)
        return total

    def fault_summary(self) -> Dict[str, int]:
        """Fault-injection counters, merged across all layers.

        Empty dict when no injector is active and reliability is off.
        On the root shard of a sharded run this includes the peer shards'
        counters (keywise sums) once the collective stop has exchanged
        contributions.
        """
        out = self._local_fault_summary()
        for peer in self._peer_faults:
            for k, v in peer.items():
                out[k] = out.get(k, 0) + v
        return out

    def _local_fault_summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        if self.fault_injector is not None:
            out.update(self.fault_injector.stats.counters)
        keys = ("retransmits", "sends_failed", "dup_deliveries",
                "acks_received", "acks_stale", "send_chains_aborted",
                "recv_chains_expired", "tracked_sends")
        flow_keys = ("credit_stalls", "credits_consumed",
                     "credits_replenished", "backlogged_sends",
                     "backlog_refusals", "backlog_drains", "pool_retries",
                     "pool_backoffs", "eager_fallbacks")
        layer_keys = ("messages_failed", "parcels_failed", "parcels_shed",
                      "puts_deferred", "drains_deferred", "parcels_requeued")
        for loc in self.localities:
            pp = loc.parcelport
            if pp is not None:
                if getattr(pp, "reliability", None) is not None:
                    for k in keys:
                        v = pp.stats.counters.get(k, 0)
                        if v:
                            out[k] = out.get(k, 0) + v
                for k in flow_keys:
                    v = pp.stats.counters.get(k, 0)
                    if v:
                        out[k] = out.get(k, 0) + v
                for dev in getattr(pp, "devices", []):
                    for src, k in (("exhaustions", "pool_exhaustions"),
                                   ("squeezed", "pool_squeezed")):
                        v = dev.pool.stats.counters.get(src, 0)
                        if v:
                            out[k] = out.get(k, 0) + v
            if loc.parcel_layer is not None:
                for k in layer_keys:
                    v = loc.parcel_layer.stats.counters.get(k, 0)
                    if v:
                        out[k] = out.get(k, 0) + v
        return out

    def flow_summary(self) -> Dict[str, Any]:
        """Per-peer flow-control gauges (credits left, queue depths).

        Empty dict when no :class:`~repro.flow.FlowControlPolicy` is set.
        On the root shard of a sharded run, each locality's entry comes
        from the shard that executed it, emitted in locality order (the
        sequential shape).
        """
        if self.flow_policy is None:
            return {}
        ctx = self.shard_ctx
        if ctx is None or ctx.n_shards == 1:
            return self._local_flow_summary()
        per_lid = self._collect_flow()
        for peer in self._peer_flow:
            per_lid.update(peer)
        return {f"L{lid}": per_lid[f"L{lid}"]
                for lid in range(len(self.localities))
                if f"L{lid}" in per_lid}

    def _local_flow_summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for loc in self.localities:
            pp = loc.parcelport
            pl = loc.parcel_layer
            if pp is None:
                continue
            entry: Dict[str, Any] = {}
            rel = getattr(pp, "reliability", None)
            if rel is not None:
                gauges = rel.credit_gauges()
                if gauges:
                    entry["credits"] = gauges
                entry["in_flight"] = rel.in_flight
            depths = pp.backlog_depths()
            if depths:
                entry["backlog"] = depths
            entry["backlog_peak"] = pp.backlog_peak
            if pl is not None:
                queued = pl.queued_parcels()
                if queued:
                    entry["queued_parcels"] = queued
            out[f"L{loc.lid}"] = entry
        return out
