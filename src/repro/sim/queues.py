"""Queues used throughout the simulated communication stack.

* :class:`FifoChannel` — blocking producer/consumer channel between
  simulated processes (used for task queues, RX rings).
* :class:`MPSCQueue` — a multi-producer single-consumer queue with the cost
  structure of an LCI completion queue: pushes contend on the tail atomic;
  a pop is a cheap single-consumer operation.  The paper's lesson *"polling
  one completion queue is preferable to polling multiple requests"* falls
  out of this asymmetry.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator
from .primitives import AtomicCell

__all__ = ["FifoChannel", "MPSCQueue"]


class FifoChannel:
    """Unbounded FIFO with blocking ``get``; zero modelled cost.

    Pure plumbing — use :class:`MPSCQueue` when the queue itself is a
    contended data structure whose cost matters.
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: Simulator, name: str = "chan"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        return self._items.popleft() if self._items else None

    def __len__(self) -> int:
        return len(self._items)


class MPSCQueue:
    """Multi-producer single-consumer completion queue.

    ``push`` serializes on a tail :class:`AtomicCell` (producers from many
    threads contend there); ``pop`` costs a flat ``pop_cost`` and never
    contends.  ``pop`` is non-blocking and returns ``None`` when empty —
    matching LCI's ``LCI_queue_pop`` semantics.

    Costs are charged to the *caller* via the returned event (push) or via
    the out-parameter cost (pop), because in the real system those cycles
    run on the calling thread.
    """

    __slots__ = ("sim", "name", "_items", "_tail", "pop_cost",
                 "pushes", "pops", "empty_pops", "max_depth")

    def __init__(self, sim: Simulator, name: str = "cq",
                 push_cost: float = 0.05, pop_cost: float = 0.03,
                 contention_factor: float = 0.4):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._tail = AtomicCell(sim, name + ".tail", op_cost=push_cost,
                                contention_factor=contention_factor)
        self.pop_cost = pop_cost
        self.pushes = 0
        self.pops = 0
        self.empty_pops = 0
        self.max_depth = 0

    def push(self, item: Any) -> Event:
        """Enqueue; the returned event fires when the push retires."""
        self.pushes += 1
        ev = self._tail.fetch_add(1)
        done = Event(self.sim)

        def _commit(_e: Event) -> None:
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))
            done.succeed()

        ev.add_callback(_commit)
        return done

    def pop(self) -> "tuple[Optional[Any], float]":
        """Dequeue one item; returns ``(item_or_None, cpu_cost_us)``."""
        self.pops += 1
        if self._items:
            return self._items.popleft(), self.pop_cost
        self.empty_pops += 1
        return None, self.pop_cost * 0.5  # empty check is cheaper

    def __len__(self) -> int:
        return len(self._items)
