"""Discrete-event simulation kernel (the lowest substrate of the repro).

Public surface:

* :class:`~repro.sim.core.Simulator`, :class:`~repro.sim.core.Event`,
  :class:`~repro.sim.core.Process`, :class:`~repro.sim.core.Timeout`,
  :class:`~repro.sim.core.AllOf`, :class:`~repro.sim.core.AnyOf`
* :class:`~repro.sim.primitives.SpinLock`,
  :class:`~repro.sim.primitives.TryLock`,
  :class:`~repro.sim.primitives.AtomicCell`,
  :class:`~repro.sim.primitives.SerialResource`
* :class:`~repro.sim.queues.FifoChannel`, :class:`~repro.sim.queues.MPSCQueue`
* :class:`~repro.sim.rng.RngPool`
* :class:`~repro.sim.stats.StatSet`
"""

from .core import (AllOf, AnyOf, Event, Interrupt, Process, SimulationError,
                   Simulator, Timeout)
from .primitives import (AtomicCell, ContentionMeter, SerialResource,
                         SpinLock, TryLock)
from .queues import FifoChannel, MPSCQueue
from .rng import RngPool
from .stats import StatSet, TimeSeries, summarize
from .trace import TraceEvent, Tracer

__all__ = [
    "Simulator", "Event", "Process", "Timeout", "AllOf", "AnyOf",
    "Interrupt", "SimulationError",
    "SpinLock", "TryLock", "AtomicCell", "SerialResource", "ContentionMeter",
    "FifoChannel", "MPSCQueue",
    "RngPool", "StatSet", "TimeSeries", "summarize",
    "Tracer", "TraceEvent",
]
