"""Frozen pre-optimisation copy of the discrete-event kernel.

This module is a verbatim snapshot of :mod:`repro.sim.core` as it stood
before the fast-path rewrite (see docs/PERFORMANCE.md).  It exists for two
reasons and must **not** be used by the runtime:

* ``repro.bench.perfbench`` runs the same kernel microbenchmarks against
  this baseline and the live kernel to report an apples-to-apples
  events/sec speedup ratio in ``BENCH_kernel.json``.
* ``tests/test_determinism_kernel.py`` replays identical workloads on both
  kernels step-by-step and asserts the ``(time, priority, seq)`` schedules
  are bit-identical — the determinism contract of the fast paths.

Known seed-kernel quirks are preserved on purpose (the ``max_events``
off-by-one and the interrupt-vs-completion races fixed in the live
kernel); the comparison suites deliberately avoid those edges.

The original module docstring follows.

----

Deterministic discrete-event simulation kernel.

This is the foundation of the whole reproduction: every CPU cycle, lock
acquisition, NIC transfer and wire hop in the simulated HPX/MPI/LCI stack is
an event scheduled on a :class:`Simulator`.

The kernel is intentionally simpy-like (generator-coroutine processes that
``yield`` events) but is written from scratch, lean, and fully deterministic:

* Virtual time is a ``float`` in **microseconds**.
* Ties are broken by ``(time, priority, seq)`` where ``seq`` is a global
  monotonically increasing counter, so two runs of the same program produce
  bit-identical schedules.
* There is no wall-clock coupling anywhere.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(3.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[3.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

#: Event priorities: URGENT events fire before NORMAL events scheduled at the
#: same timestamp.  Used for immediate wake-ups (e.g. lock hand-off).
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double-trigger, run without events)."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulator timeline.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (or when the simulator schedules it), and
    *processed* once its callbacks ran.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    # -- introspection ---------------------------------------------------
    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (or the failure exception)."""
        return self._value

    @property
    def ok(self) -> bool:
        """False if the event failed."""
        return self._ok

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        self.sim._schedule(self, 0.0, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiting processes receive ``exc``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule(self, 0.0, priority)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed (immediately if done)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` µs after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule(self, delay, NORMAL)


class Process(Event):
    """A generator-coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event fires, receiving ``event.value`` as the result of the
    ``yield`` expression.  The process *itself* is an event that triggers
    with the generator's return value, so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.triggered = True
        sim._schedule(boot, 0.0, URGENT)
        boot.add_callback(self._resume)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        wake = Event(self.sim)
        wake.triggered = True
        wake._ok = False
        wake._value = Interrupt(cause)
        self.sim._schedule(wake, 0.0, URGENT)
        wake.add_callback(self._resume)

    # -- internal ----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger.ok:
                nxt = self.gen.send(trigger.value)
            else:
                exc = trigger.value
                nxt = self.gen.throw(exc)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            sim._active_process = None
            if sim.strict:
                raise
            self.fail(exc, priority=URGENT)
            return
        sim._active_process = None
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
        if nxt.callbacks is None:
            # Already processed: resume immediately (at current time).
            wake = Event(sim)
            wake.triggered = True
            wake._ok = nxt._ok
            wake._value = nxt._value
            sim._schedule(wake, 0.0, URGENT)
            wake.add_callback(self._resume)
            self._target = wake
        else:
            nxt.add_callback(self._resume)
            self._target = nxt


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* the given events have triggered.

    Value is a dict mapping each event to its value.  Fails fast if any
    child fails.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({e: e.value for e in self.events})


class AnyOf(_Condition):
    """Triggers when *any one* of the given events triggers (value = (event, value))."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed((ev, ev.value))


class Simulator:
    """Heap-driven deterministic event loop.

    Parameters
    ----------
    strict:
        If True (default), exceptions raised inside processes propagate out
        of :meth:`run` immediately instead of failing the process event.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: list = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self.event_count = 0

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        heapq.heappush(self._heap, (self.now + delay, priority,
                                    next(self._seq), event))

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` µs (no process needed)."""
        ev = self.timeout(delay)
        ev.add_callback(lambda _e: fn())
        return ev

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self.now:
            raise SimulationError("time went backwards")
        self.now = t
        self.event_count += 1
        callbacks = event.callbacks
        event.callbacks = None
        event.processed = True
        for cb in callbacks:
            cb(event)

    def run(self, until: "float | Event | None" = None,
            max_events: Optional[int] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to exhaustion; a float — run until virtual time
            reaches it; an :class:`Event` — run until it triggers and return
            its value.
        max_events:
            Safety valve; raise if more events than this are processed.
        """
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
        elif until is not None:
            deadline = float(until)

        processed = 0
        while self._heap:
            if stop_event is not None and stop_event.callbacks is None:
                break
            t = self._heap[0][0]
            if deadline is not None and t > deadline:
                self.now = deadline
                break
            self.step()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before `until` triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if deadline is not None and not self._heap:
            self.now = max(self.now, deadline)
        return None

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process
