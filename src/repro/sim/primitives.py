"""Synchronization and contention primitives for the simulated stack.

These model the three concurrency mechanisms the paper contrasts:

* :class:`SpinLock` — a coarse-grained **blocking** lock.  Waiters queue in
  FIFO order and their (simulated) core is busy the whole time: this is the
  ``ucp_progress`` blocking-lock pathology that makes ``mpi_i`` collapse on
  the 128-core Expanse nodes in Fig. 10.
* :class:`TryLock` — a fine-grained **try** lock that fails fast, as used
  throughout LCI's progress engine.
* :class:`AtomicCell` — an atomic variable.  Hardware serializes atomic
  read-modify-write operations on one cache line, so the cell is modelled as
  a serializing resource with a per-operation service time: uncontended ops
  cost ``op_cost``; concurrent ops queue behind each other, which is exactly
  cache-line ownership transfer at the granularity this simulation needs.

All costs are in microseconds of virtual time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, Simulator

__all__ = [
    "SpinLock",
    "TryLock",
    "AtomicCell",
    "SerialResource",
    "ContentionMeter",
]


class ContentionMeter:
    """Exponentially-decaying estimate of how *hot* a shared object is.

    ``pressure()`` approximates the number of recent concurrent users:
    each touch adds 1, and pressure decays with time constant ``tau_us``.
    Used to inflate operation costs under contention (cache misses,
    retried CAS loops) without simulating individual cache lines.
    """

    __slots__ = ("tau_us", "_pressure", "_last_t")

    def __init__(self, tau_us: float = 5.0):
        self.tau_us = tau_us
        self._pressure = 0.0
        self._last_t = 0.0

    def touch(self, now: float) -> float:
        """Record one access at time ``now``; return pressure *before* it."""
        dt = now - self._last_t
        if dt > 0:
            # cheap linear-decay approximation of exp(-dt/tau)
            decay = max(0.0, 1.0 - dt / self.tau_us)
            self._pressure *= decay
            self._last_t = now
        before = self._pressure
        self._pressure += 1.0
        return before

    def pressure(self, now: float) -> float:
        dt = now - self._last_t
        if dt > 0:
            decay = max(0.0, 1.0 - dt / self.tau_us)
            return self._pressure * decay
        return self._pressure


class SpinLock:
    """FIFO blocking spin lock.

    ``acquire()`` returns an event; the caller owns the lock when it fires.
    While waiting, the calling thread's core is considered busy (spinning),
    which in this one-thread-per-core model is implicit: the process simply
    cannot do anything else.

    Statistics: ``total_wait_us``, ``acquisitions``, ``max_queue``.
    """

    __slots__ = ("sim", "name", "locked", "_waiters", "acquire_cost",
                 "total_wait_us", "acquisitions", "max_queue", "_acq_time")

    def __init__(self, sim: Simulator, name: str = "spinlock",
                 acquire_cost: float = 0.02):
        self.sim = sim
        self.name = name
        self.locked = False
        self._waiters: Deque[tuple] = deque()
        self.acquire_cost = acquire_cost
        self.total_wait_us = 0.0
        self.acquisitions = 0
        self.max_queue = 0
        self._acq_time = 0.0

    def acquire(self) -> Event:
        ev = Event(self.sim)
        if not self.locked:
            self.locked = True
            self.acquisitions += 1
            self._acq_time = self.sim.now
            # Even an uncontended acquire costs a CAS.  succeed_later is
            # the slim form of schedule_call(cost, lambda: ev.succeed()):
            # identical two-record schedule, no _Call/closure objects.
            self.sim.succeed_later(ev, self.acquire_cost)
        else:
            self._waiters.append((self.sim.now, ev))
            self.max_queue = max(self.max_queue, len(self._waiters))
        return ev

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError(f"{self.name}: release of unheld lock")
        if self._waiters:
            t_enq, ev = self._waiters.popleft()
            self.total_wait_us += self.sim.now - t_enq
            self.acquisitions += 1
            self._acq_time = self.sim.now
            # Hand-off cost: the waiter's CAS finally succeeds.
            self.sim.succeed_later(ev, self.acquire_cost)
        else:
            self.locked = False

    @property
    def queue_len(self) -> int:
        return len(self._waiters)


class TryLock:
    """Fail-fast try lock (LCI style).

    ``try_acquire()`` returns True and takes the lock, or False immediately.
    A failed attempt still costs the caller ``fail_cost`` µs (one CAS miss);
    the caller charges that to itself via its own timeout.
    """

    __slots__ = ("sim", "name", "locked", "attempts", "failures", "fail_cost")

    def __init__(self, sim: Simulator, name: str = "trylock",
                 fail_cost: float = 0.03):
        self.sim = sim
        self.name = name
        self.locked = False
        self.attempts = 0
        self.failures = 0
        self.fail_cost = fail_cost

    def try_acquire(self) -> bool:
        self.attempts += 1
        if self.locked:
            self.failures += 1
            return False
        self.locked = True
        return True

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError(f"{self.name}: release of unheld lock")
        self.locked = False

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


class SerialResource:
    """A resource that serves requests one at a time, FIFO, O(1) per request.

    Implemented with a ``busy_until`` watermark rather than a process: a
    request arriving at ``t`` with service time ``s`` completes at
    ``max(t, busy_until) + s``.  Used for NIC TX pipelines and atomic
    cache lines.
    """

    __slots__ = ("sim", "name", "busy_until", "served", "total_busy_us",
                 "total_queued_us")

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self.busy_until = 0.0
        self.served = 0
        self.total_busy_us = 0.0
        self.total_queued_us = 0.0

    def request(self, service_us: float) -> Event:
        """Returns an event firing when this request's service completes."""
        now = self.sim.now
        start = max(now, self.busy_until)
        self.total_queued_us += start - now
        self.busy_until = start + service_us
        self.total_busy_us += service_us
        self.served += 1
        return self.sim.timeout(self.busy_until - now)

    def finish_time(self, service_us: float) -> float:
        """Like :meth:`request` but returns the absolute completion time."""
        now = self.sim.now
        start = max(now, self.busy_until)
        self.total_queued_us += start - now
        self.busy_until = start + service_us
        self.total_busy_us += service_us
        self.served += 1
        return self.busy_until

    def utilization(self) -> float:
        return self.total_busy_us / self.sim.now if self.sim.now else 0.0


class AtomicCell:
    """An atomic integer living on one (simulated) cache line.

    ``fetch_add`` costs ``op_cost`` uncontended; concurrent ops serialize
    through a :class:`SerialResource` and pay a contention surcharge
    proportional to recent pressure, approximating the cache line bouncing
    between cores.
    """

    __slots__ = ("sim", "name", "value", "op_cost", "contention_factor",
                 "_line", "_meter", "ops")

    def __init__(self, sim: Simulator, name: str = "atomic", value: int = 0,
                 op_cost: float = 0.02, contention_factor: float = 0.5):
        self.sim = sim
        self.name = name
        self.value = value
        self.op_cost = op_cost
        self.contention_factor = contention_factor
        self._line = SerialResource(sim, name + ".line")
        self._meter = ContentionMeter()
        self.ops = 0

    def _service(self) -> float:
        pressure = self._meter.touch(self.sim.now)
        return self.op_cost * (1.0 + self.contention_factor * pressure)

    def fetch_add(self, n: int = 1) -> "Event":
        """Atomically add ``n``; the event fires with the *previous* value."""
        self.ops += 1
        old = self.value
        self.value += n
        return self._wrap(old)

    def _wrap(self, old: int) -> Event:
        # Slim form of ``request() + Event + lambda callback``: the line's
        # accounting is inlined (request() minus its Timeout) and the
        # value-carrying grant is scheduled as one bare wake record at the
        # same seq-allocation point the Timeout used to occupy.
        line = self._line
        sim = self.sim
        now = sim.now
        service = self._service()
        start = now if now >= line.busy_until else line.busy_until
        line.total_queued_us += start - now
        line.busy_until = start + service
        line.total_busy_us += service
        line.served += 1
        ev = Event(sim)
        sim.succeed_later(ev, line.busy_until - now, old)
        return ev

    def load(self) -> int:
        """Relaxed load: free (no event)."""
        return self.value

    def store(self, v: int) -> Event:
        self.ops += 1
        self.value = v
        return self._line.request(self._service())

    def add_relaxed(self, n: int = 1) -> int:
        """Zero-cost add used for pure statistics counters (not modelled)."""
        old = self.value
        self.value += n
        return old
