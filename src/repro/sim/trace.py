"""Event tracing: a ring buffer of annotated simulation events.

Components call ``tracer.emit(category, text, **fields)``; the harness (or
a debugging session) filters and renders them.  Tracing is off by default
and costs nothing when disabled — the hot paths guard with
``if tracer.enabled``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from .core import Simulator

__all__ = ["TraceEvent", "Tracer"]


@dataclass
class TraceEvent:
    """One annotated moment of simulated time."""

    t: float
    category: str
    text: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.3f}us] {self.category:<12} {self.text}" \
            + (f" ({extra})" if extra else "")


class Tracer:
    """Bounded in-memory trace with category filtering.

    .. deprecated::
        New instrumentation should use :class:`repro.obs.SpanRecorder`,
        which adds begin/end spans, correlation IDs and exporters.  The
    legacy ``emit`` API is kept as a shim: attach a recorder with
    :meth:`bridge_to` and every emitted event is forwarded as an
    instant span (category/text/fields preserved).
    """

    def __init__(self, sim: Simulator, capacity: int = 10000,
                 enabled: bool = False):
        self.sim = sim
        self.capacity = capacity
        self.enabled = enabled
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._categories: Optional[set] = None   # None = everything
        self._recorder: Optional[Any] = None
        self.dropped = 0

    # -- configuration -------------------------------------------------------
    def enable(self, categories: Optional[Iterable[str]] = None) -> None:
        """Turn tracing on, optionally restricted to some categories.

        ``None`` means *all* categories; an empty iterable means *none*
        (every emit is filtered out) — the two are deliberately distinct.
        """
        self.enabled = True
        self._categories = None if categories is None else set(categories)

    def disable(self) -> None:
        self.enabled = False

    def bridge_to(self, recorder: Optional[Any]) -> None:
        """Forward future emits to a :class:`repro.obs.SpanRecorder`.

        The recorder applies its own category filter on top of this
        tracer's; pass ``None`` to detach.
        """
        self._recorder = recorder

    # -- recording -----------------------------------------------------------
    def emit(self, category: str, text: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self.sim.now, category, text,
                                       fields))
        if self._recorder is not None:
            self._recorder.instant(category, text, **fields)

    # -- querying ---------------------------------------------------------
    def events(self, category: Optional[str] = None,
               since: float = 0.0,
               predicate: Optional[Callable[[TraceEvent], bool]] = None
               ) -> List[TraceEvent]:
        out = []
        for ev in self._events:
            if ev.t < since:
                continue
            if category is not None and ev.category != category:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def render(self, **kw: Any) -> str:
        return "\n".join(ev.render() for ev in self.events(**kw))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
