"""Coordinator for sharded runs: fork workers, drive the window barrier.

The coordinator is deliberately dumb — it never looks inside a message
and holds no simulation state.  Each round it:

1. collects one ``("bar", next_event_time, exports, fired, meta)`` from
   every shard,
2. routes the exported deliveries to their destination shards (ownership
   is ``lid * n_shards // n_localities`` — pure arithmetic),
3. computes the global floor ``M`` = min(next event anywhere, earliest
   buffered delivery) and either grants the next window
   ``("win", M + lookahead, imports)`` or, when the run's stop condition
   holds, broadcasts ``("stop",)``,
4. after the stop, relays every shard's contribution snapshot to the
   root shard and returns the root's result.

Correctness of the window ``[_, M + lookahead)`` is the standard
conservative-parallel argument: any event that *sends* executes at
``t >= M``, so its delivery lands at ``t + lookahead >= M + lookahead``
— strictly outside the window being granted — and is exchanged at the
next barrier before any shard's clock reaches it.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, List, Optional

from .context import ShardContext, ShardStopped, owner_of, set_current

__all__ = ["run_sharded", "run_sharded_point", "ShardRunError"]


class ShardRunError(RuntimeError):
    """A shard process failed; carries the child's traceback text."""

    def __init__(self, shard_id: int, tb: str):
        super().__init__(
            f"shard {shard_id} failed:\n{tb.rstrip()}")
        self.shard_id = shard_id
        self.child_traceback = tb


def _evaluate(task) -> Any:
    """A task is either a PointTask or a picklable zero-arg callable."""
    if callable(task):
        return task()
    from ...bench.parallel import evaluate_point
    return evaluate_point(task)


def _child_main(conn, task, shard_id: int, n_shards: int) -> None:
    """Entry point of one shard worker process."""
    try:
        set_current(ShardContext(shard_id, n_shards, conn))
        result = _evaluate(task)
        conn.send(("result", result))
    except ShardStopped:
        conn.send(("peer_done",))
    except BaseException:
        import traceback
        try:
            conn.send(("err", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # coordinator already gone
            pass
    finally:
        conn.close()


def _abort(conns, skip: int, tb: str) -> None:
    for sid, c in enumerate(conns):
        if sid == skip:
            continue
        try:
            c.send(("abort", tb))
        except (BrokenPipeError, OSError):
            pass


def _coordinate(conns) -> Any:
    n = len(conns)
    inf = float("inf")
    pending: List[List[tuple]] = [[] for _ in range(n)]
    windows = 0

    # -- barrier rounds ------------------------------------------------
    while True:
        nts: List[float] = []
        fireds: List[bool] = []
        meta = None
        for sid, c in enumerate(conns):
            msg = c.recv()
            tag = msg[0]
            if tag == "err":
                _abort(conns, sid, msg[1])
                raise ShardRunError(sid, msg[1])
            if tag != "bar":  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"shard {sid}: expected bar, got {tag!r}")
            _, nt, exports, fired, meta = msg
            nts.append(nt)
            fireds.append(fired)
            mode, deadline, lookahead, n_loc = meta
            for exp in exports:
                pending[owner_of(exp[3], n, n_loc)].append(exp)
        mode, deadline, lookahead, n_loc = meta
        floor = min(nts)
        for buf in pending:
            for exp in buf:
                if exp[0] < floor:
                    floor = exp[0]
        stop = ((mode == "root" and fireds[0])
                or (mode == "all" and all(fireds))
                or (deadline is not None and floor > deadline)
                or floor == inf)
        if stop:
            for c in conns:
                c.send(("stop",))
            break
        horizon = floor + lookahead
        windows += 1
        for sid, c in enumerate(conns):
            c.send(("win", horizon, pending[sid]))
            pending[sid] = []

    # -- contributions → root, result ← root ---------------------------
    contribs: List[Optional[dict]] = [None] * n
    for sid, c in enumerate(conns):
        msg = c.recv()
        if msg[0] == "err":
            _abort(conns, sid, msg[1])
            raise ShardRunError(sid, msg[1])
        if msg[0] != "contrib":  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"shard {sid}: expected contrib, got {msg[0]!r}")
        contribs[sid] = msg[1]
    conns[0].send(("fin", contribs[1:]))
    for c in conns[1:]:
        c.send(("fin", None))

    result = None
    for sid, c in enumerate(conns):
        msg = c.recv()
        if msg[0] == "err":
            _abort(conns, sid, msg[1])
            raise ShardRunError(sid, msg[1])
        if sid == 0:
            if msg[0] != "result":  # pragma: no cover - protocol guard
                raise RuntimeError(
                    f"root shard: expected result, got {msg[0]!r}")
            result = msg[1]
        elif msg[0] != "peer_done":  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"shard {sid}: expected peer_done, got {msg[0]!r}")
    return result


def run_sharded_point(task, shards: int) -> Any:
    """Evaluate one sweep point under ``shards`` worker processes.

    ``task`` is a :class:`repro.bench.parallel.PointTask` or a picklable
    zero-argument callable (used by tests to shard arbitrary runs).
    With ``shards == 1`` the task runs in-process under a shard context
    (same code paths, no processes, no barriers) — this is the identity
    anchor the byte-equality contract is stated against.
    """
    from .context import current_context

    if shards < 1:
        raise ValueError("shards must be >= 1")
    if current_context() is not None:
        raise RuntimeError("already inside a shard worker")
    if shards == 1:
        set_current(ShardContext(0, 1))
        try:
            return _evaluate(task)
        finally:
            set_current(None)

    ctx = mp.get_context("fork")
    conns = []
    procs = []
    try:
        for sid in range(shards):
            parent, child = ctx.Pipe()
            p = ctx.Process(target=_child_main,
                            args=(child, task, sid, shards),
                            name=f"shard-{sid}", daemon=True)
            p.start()
            child.close()
            conns.append(parent)
            procs.append(p)
        try:
            return _coordinate(conns)
        except EOFError:
            dead = [p.name for p in procs if not p.is_alive()]
            raise ShardRunError(
                -1, f"a shard process died without reporting an error "
                    f"(dead: {dead or 'none — pipe closed early'})")
    finally:
        for c in conns:
            c.close()
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - hung child
                p.terminate()
                p.join(timeout=5)


def run_sharded(task, shards: int) -> Any:
    """Public alias of :func:`run_sharded_point` (the ``--shards N``
    engine entry point)."""
    return run_sharded_point(task, shards)
