"""Per-process shard state: ownership, the export buffer, the window loop.

One :class:`ShardContext` exists per worker process (and one, with
``n_shards == 1``, for the in-process ``--shards 1`` path).  The runtime
attaches itself on construction (:meth:`ShardContext.attach`), which is
when ownership and lookahead are derived; the fabric consults
:attr:`ShardContext.owned` on every transmit and hands cross-shard
deliveries to :meth:`export_msg`; :meth:`run_until` replaces the
sequential ``sim.run`` with the conservative window loop documented in
docs/SHARDING.md.

Determinism contract (the whole point)
--------------------------------------
Deliveries — local and imported alike — are scheduled at the kernel's
:data:`~repro.sim.core.DELIVERY` priority with the intrinsic
``(src locality, per-source sequence)`` tie-break key, so co-temporal
deliveries execute in an order that is a property of the *traffic*, not
of which process scheduled them.  Together with the window invariant
(every event with ``t < H`` is executed before any event at ``t >= H``
anywhere), the executed event order on every locality is identical for
every shard count, which is what makes ``--shards 1/2/4`` byte-identical
on the workloads whose results are shard-placement-clean (see
docs/SHARDING.md for the exact conditions).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import SimulationError

__all__ = ["ShardContext", "ShardStopped", "LookaheadViolation",
           "ShardingUnsupported", "current_context", "set_current",
           "owner_of"]


class ShardStopped(Exception):
    """Raised out of a peer shard's ``run_until`` at the collective stop.

    The sequential engine returns from ``run_until`` exactly once, on the
    process that owns the result; peer shards cannot meaningfully execute
    the code after their (replica's) ``run_until``, so they unwind with
    this exception instead — the shard engine catches it at the top of
    the child process.
    """


class LookaheadViolation(SimulationError):
    """A shard was handed an event in its past.

    The conservative protocol makes this impossible by construction
    (window width == minimum wire latency); seeing it means the lookahead
    derivation or the barrier protocol is broken, and the engine must
    fail loudly rather than silently reorder.
    """


class ShardingUnsupported(RuntimeError):
    """A feature incompatible with the sharded engine was requested."""


def owner_of(lid: int, n_shards: int, n_localities: int) -> int:
    """The shard owning locality ``lid``: contiguous blocks, remainder
    spread evenly (the same split ``numpy.array_split`` would make)."""
    return lid * n_shards // n_localities


#: process-wide current context (set by the shard engine before the
#: workload runs; None in the sequential engine)
_current: Optional["ShardContext"] = None


def current_context() -> Optional["ShardContext"]:
    return _current


def set_current(ctx: Optional["ShardContext"]) -> None:
    global _current
    _current = ctx


class ShardContext:
    """State of one shard of a sharded simulation."""

    def __init__(self, shard_id: int, n_shards: int, conn=None):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if not 0 <= shard_id < n_shards:
            raise ValueError(f"shard_id {shard_id} out of range")
        self.shard_id = shard_id
        self.n_shards = n_shards
        #: duplex pipe to the coordinator (None for the in-process
        #: ``n_shards == 1`` path, which never barriers)
        self.conn = conn
        self.rt = None
        self.sim = None
        #: locality ids this shard executes (frozenset after attach)
        self.owned: frozenset = frozenset()
        self.n_localities = 0
        #: guaranteed lookahead: the minimum latency any cross-shard
        #: message pays between transmit and delivery (µs)
        self.lookahead = 0.0
        #: cross-shard messages produced this window:
        #: (arrive_t, src, per-src seq, encoded NetMsg)
        self._exports: List[Tuple[float, int, int, Any]] = []
        #: name -> (collect, absorb): peer-state contributions routed to
        #: the root shard at the collective stop
        self._contribs: Dict[str, Tuple[Callable, Callable]] = {}
        self._encoder = None
        self._ran = False
        self.windows = 0

    # ------------------------------------------------------------------
    # runtime attachment
    # ------------------------------------------------------------------
    def attach(self, runtime) -> None:
        """Bind this context to a freshly constructed runtime.

        Derives ownership and lookahead, verifies the fabric is the
        constant-latency crossbar the lookahead proof assumes, and (for
        ``n_shards > 1``) arms the fabric's export boundary and the
        fault injector's keyed draws.
        """
        from ...netsim.fabric import Fabric

        if self.rt is not None:
            raise ShardingUnsupported(
                "a sharded run may construct exactly one HpxRuntime "
                "(the shard context is already attached)")
        self.rt = runtime
        self.sim = runtime.sim
        n = len(runtime.localities)
        self.n_localities = n
        sid, k = self.shard_id, self.n_shards
        self.owned = frozenset(
            lid for lid in range(n) if lid * k // n == sid)
        if runtime.obs is not None and k > 1:
            raise ShardingUnsupported(
                "tracing (--trace) is not supported under --shards > 1")
        if getattr(runtime, "adapt_spec", None) is not None and k > 1:
            raise ShardingUnsupported(
                "adaptive policies (adapt=) are not supported under "
                "--shards > 1: the controller's shared state spans "
                "localities that live on different shards")
        if type(runtime.fabric) is not Fabric and k > 1:
            raise ShardingUnsupported(
                f"--shards > 1 requires the constant-latency crossbar "
                f"fabric (got {type(runtime.fabric).__name__}); "
                f"per-link lookahead for other topologies is future work")
        self.lookahead = float(runtime.fabric.params.wire_latency_us)
        if self.lookahead <= 0.0 and k > 1:
            raise LookaheadViolation(
                f"wire_latency_us={self.lookahead} gives no lookahead: "
                f"the conservative window protocol cannot make progress")
        # Keyed fault draws: the schedule becomes a pure function of each
        # message's (src, per-src seq) identity so it is identical for
        # every shard count — see docs/SHARDING.md.
        if runtime.fault_injector is not None:
            runtime.fault_injector.keyed_base = (
                f"{runtime.rng.root_seed}:{runtime.fault_plan.describe()}")
        if k > 1:
            runtime.fabric.shard_ctx = self
            from .wire import WireCodec
            self._encoder = WireCodec(self)

    # ------------------------------------------------------------------
    # fabric boundary
    # ------------------------------------------------------------------
    def export_msg(self, arrive_t: float, key: Tuple[int, int], msg) -> None:
        """Buffer a cross-shard delivery until the next window barrier."""
        self._exports.append(
            (arrive_t, key[0], key[1], msg.dst,
             self._encoder.encode_msg(msg)))

    def _import_msgs(self, imports) -> None:
        sim = self.sim
        nics = self.rt.fabric.nics
        now = sim.now
        for arrive_t, src, n, _dst, emsg in imports:
            if arrive_t < now:
                raise LookaheadViolation(
                    f"shard {self.shard_id} got a delivery at t="
                    f"{arrive_t} with local clock already at {now} — "
                    f"conservative lookahead was violated")
            msg = self._encoder.decode_msg(emsg)
            sim.schedule_delivery(arrive_t - now, nics[msg.dst].deliver,
                                  msg, (src, n))

    # ------------------------------------------------------------------
    # contributions (peer state routed to the root shard at stop)
    # ------------------------------------------------------------------
    def register_contrib(self, name: str, collect: Callable[[], Any],
                         absorb: Callable[[Any], None]) -> None:
        """Register a peer-state contribution.

        ``collect()`` runs on every shard at the collective stop and must
        return a picklable snapshot of this shard's partial state;
        ``absorb(snapshot)`` runs on the root shard once per peer, in
        shard order, merging the snapshot into the root's live state
        before its ``run_until`` returns.
        """
        if name in self._contribs:
            raise ValueError(f"contribution {name!r} already registered")
        self._contribs[name] = (collect, absorb)

    # ------------------------------------------------------------------
    # the window loop
    # ------------------------------------------------------------------
    def run_until(self, until, max_events: Optional[int] = None,
                  mode: str = "root"):
        """The sharded replacement for ``Simulator.run(until=...)``.

        ``until`` is an Event, a float deadline, or None (exhaustion);
        ``mode`` is ``"root"`` (stop the world when shard 0's until
        fires — fig-1-style runs whose result lives on the root shard,
        and replicated-timer runs like serving where every shard's until
        fires at the same instant) or ``"all"`` (stop when every shard's
        local until has fired — FFT-style runs where each shard owns a
        slice of the result).  Returns the until-event's value on the
        root shard; raises :exc:`ShardStopped` on peers.
        """
        from ..core import Event

        if self._ran:
            raise ShardingUnsupported(
                "sharded runs support a single collective run_until; "
                "drivers needing more phases must merge them or stay "
                "on the sequential engine")
        self._ran = True
        sim = self.sim
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)

        budget = max_events if max_events is not None else None
        spent = 0
        conn = self.conn
        fired = (stop_event is not None
                 and stop_event.callbacks is None)
        # "root": a fired shard freezes its clock (sequential stops the
        # world at the root's stop event).  "all": a fired shard keeps
        # draining protocol traffic — its localities may still be relaying
        # collectives or acks that *other* shards' stop conditions need.
        halted = fired and mode == "root"
        meta = (mode, deadline, self.lookahead, self.n_localities)
        while True:
            nt = float("inf") if halted else sim.peek()
            exports = self._exports
            self._exports = []
            conn.send(("bar", nt, exports, fired, meta))
            tag, *rest = conn.recv()
            if tag == "win":
                horizon, imports = rest
                if imports:
                    self._import_msgs(imports)
                self.windows += 1
                if halted:
                    continue
                left = None if budget is None else budget - spent
                se = None if fired else stop_event
                spent += sim.run_window(horizon, stop_event=se,
                                        deadline=deadline, max_events=left)
                if not fired and stop_event is not None \
                        and stop_event.callbacks is None:
                    fired = True
                    if mode == "root":
                        halted = True
            elif tag == "stop":
                break
            elif tag == "abort":
                raise ShardStopped(rest[0])
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unexpected coordinator message {tag!r}")

        # Collective stop: exchange contributions, then finish exactly as
        # the sequential kernel would.
        contribs = {name: collect()
                    for name, (collect, _) in self._contribs.items()}
        conn.send(("contrib", contribs))
        tag, peer_contribs = conn.recv()
        if tag != "fin":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected coordinator message {tag!r}")
        if self.shard_id != 0:
            raise ShardStopped()
        for data in peer_contribs:
            for name, (_, absorb) in self._contribs.items():
                if name in data:
                    absorb(data[name])
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before `until` triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if deadline is not None:
            sim.now = max(sim.now, deadline)
        return None
