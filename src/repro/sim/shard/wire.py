"""Cross-shard message encoding: refs for live objects, values for data.

The simulation's payloads are carried *by reference* — a :class:`NetMsg`
payload routinely contains live objects (an MPI request, an LCI
operation, a parcelport message) whose identity matters: the rendezvous
protocols send a handle out in an RTS and expect the CTS/data leg to
come back pointing at the *same* object.  Pickling those across a
process boundary would fork their identity and silently decouple the
two sides.

So the codec splits the world in two:

* **data** travels by value — primitives, containers, numpy arrays, and
  the parcel-layer records (:class:`Parcel`/:class:`HpxMessage`) whose
  contents are pure data;
* **live objects** travel as a :class:`Ref` — ``(home shard, handle)``
  plus a small read-only snapshot of the attributes remote code is
  allowed to read (verified against every receiver in the tree: an MPI
  RTS reader touches ``sreq.tag``, an LCI data reader touches
  ``sop.payload``/``sop.tag``, nothing else).  Decoding a Ref on its
  home shard resolves the handle back to the **original** object, so a
  handle that round-trips (RTS out, CTS back) lands on the exact object
  the protocol expects.  Decoding it anywhere else yields a
  :class:`RemoteProxy` that serves the snapshot and fails loudly on any
  other attribute — silent divergence is the one unacceptable outcome.

Anything the codec does not recognise raises
:exc:`~.context.ShardingUnsupported` instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .context import ShardingUnsupported

__all__ = ["Ref", "RemoteProxy", "WireCodec"]


@dataclass
class Ref:
    """A live object owned by shard ``home``, named by ``handle`` there."""
    home: int
    handle: int
    cls: str
    snap: Optional[dict] = None


@dataclass
class _MsgRec:
    """A :class:`NetMsg` flattened to its slots (payload pre-encoded)."""
    fields: dict


class RemoteProxy:
    """Stand-in for a live object homed on another shard.

    Serves the snapshot attributes the protocols legitimately read on
    the remote side; any other access is a sharding bug and raises."""

    __slots__ = ("_ref", "_snap")

    def __init__(self, ref: Ref, snap: dict):
        object.__setattr__(self, "_ref", ref)
        object.__setattr__(self, "_snap", snap)

    def __getattr__(self, name: str) -> Any:
        snap = object.__getattribute__(self, "_snap")
        if name in snap:
            return snap[name]
        ref = object.__getattribute__(self, "_ref")
        raise ShardingUnsupported(
            f"remote code read {ref.cls}.{name} on a cross-shard proxy "
            f"(homed on shard {ref.home}); that attribute is not part of "
            f"the verified remote read-set — the sharded engine cannot "
            f"run this protocol")

    def __setattr__(self, name: str, value: Any) -> None:
        ref = object.__getattribute__(self, "_ref")
        raise ShardingUnsupported(
            f"remote code wrote {ref.cls}.{name} on a cross-shard proxy "
            f"(homed on shard {ref.home}); cross-shard mutation is not "
            f"supported")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ref = object.__getattribute__(self, "_ref")
        return f"<RemoteProxy {ref.cls}#{ref.handle}@shard{ref.home}>"


class WireCodec:
    """Per-shard encoder/decoder with the live-object handle registry."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._next_handle = 0
        #: handle -> original object (strong: a handle may resolve
        #: several times — e.g. an sreq referenced by both CTS and data)
        self._objects: Dict[int, Any] = {}
        #: id(obj) -> (handle, obj): stable handles per object; the
        #: second slot keeps the object alive so ids cannot be recycled
        self._by_id: Dict[int, Tuple[int, Any]] = {}

    # ------------------------------------------------------------------
    def _handle_for(self, obj: Any) -> int:
        ent = self._by_id.get(id(obj))
        if ent is not None:
            return ent[0]
        h = self._next_handle
        self._next_handle = h + 1
        self._objects[h] = obj
        self._by_id[id(obj)] = (h, obj)
        return h

    def _ref(self, obj: Any, snap: Optional[dict] = None) -> Ref:
        return Ref(self.ctx.shard_id, self._handle_for(obj),
                   type(obj).__name__, snap)

    # ------------------------------------------------------------------
    # NetMsg envelope
    # ------------------------------------------------------------------
    def encode_msg(self, msg) -> _MsgRec:
        return _MsgRec({
            "src": msg.src, "dst": msg.dst, "size": msg.size,
            "kind": msg.kind, "tag": msg.tag,
            "payload": self.encode(msg.payload),
            "vchan": msg.vchan, "msg_id": msg.msg_id,
            "inject_t": msg.inject_t, "arrive_t": msg.arrive_t,
            "corrupted": msg.corrupted,
        })

    def decode_msg(self, rec: _MsgRec):
        from ...netsim.message import NetMsg

        msg = NetMsg.__new__(NetMsg)  # no fresh msg_id draw
        fields = rec.fields
        for slot in NetMsg.__slots__:
            setattr(msg, slot, fields[slot])
        msg.payload = self.decode(fields["payload"])
        return msg

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def encode(self, v: Any) -> Any:
        if v is None or isinstance(v, (bool, int, float, str, bytes)):
            return v
        if isinstance(v, tuple):
            return tuple(self.encode(x) for x in v)
        if isinstance(v, list):
            return [self.encode(x) for x in v]
        if isinstance(v, dict):
            return {k: self.encode(x) for k, x in v.items()}
        if isinstance(v, (Ref, _MsgRec)):
            return v
        if isinstance(v, RemoteProxy):
            # Round trip: forward the original ref, not a proxy of it.
            return object.__getattribute__(v, "_ref")

        import numpy as np

        from ...hpx_rt.future import Future, Latch
        from ...hpx_rt.parcel import HpxMessage, Parcel
        from ...lci_sim.completion import (CompletionQueue,
                                           HandlerCompletion, Synchronizer)
        from ...lci_sim.device import LciOp
        from ...mpi_sim.request import Request
        from ...netsim.message import NetMsg
        from ...parcelport.base import Connection
        from ...sim.core import Event

        if isinstance(v, (np.ndarray, np.generic)):
            return v
        if isinstance(v, (Parcel, HpxMessage)):
            # Pure-data records; pickled by value (pickle restores the
            # stored pid/mid without drawing fresh ids).
            return v
        if isinstance(v, Request):
            return self._ref(v, {"kind": v.kind, "peer": v.peer,
                                 "size": v.size, "tag": v.tag,
                                 "rid": v.rid})
        if isinstance(v, LciOp):
            return self._ref(v, {"kind": v.kind, "peer": v.peer,
                                 "size": v.size, "tag": v.tag,
                                 "oid": v.oid, "comp": None, "ctx": None,
                                 "payload": self.encode(v.payload)})
        if isinstance(v, NetMsg):
            return self.encode_msg(v)
        if isinstance(v, (Connection, CompletionQueue, Synchronizer,
                          HandlerCompletion, Event, Future, Latch)):
            # Includes Process (an Event subclass): opaque — only the
            # home shard may touch it.
            return self._ref(v)
        raise ShardingUnsupported(
            f"cannot ship a {type(v).__name__} across shards: no wire "
            f"rule for it (payload={v!r})")

    def decode(self, v: Any) -> Any:
        if v is None or isinstance(v, (bool, int, float, str, bytes)):
            return v
        if isinstance(v, Ref):
            if v.home == self.ctx.shard_id:
                try:
                    return self._objects[v.handle]
                except KeyError:
                    raise ShardingUnsupported(
                        f"stale cross-shard handle {v.cls}#{v.handle} "
                        f"came home to shard {v.home}") from None
            snap = ({k: self.decode(x) for k, x in v.snap.items()}
                    if v.snap else {})
            return RemoteProxy(v, snap)
        if isinstance(v, _MsgRec):
            return self.decode_msg(v)
        if isinstance(v, tuple):
            return tuple(self.decode(x) for x in v)
        if isinstance(v, list):
            return [self.decode(x) for x in v]
        if isinstance(v, dict):
            return {k: self.decode(x) for k, x in v.items()}
        return v
