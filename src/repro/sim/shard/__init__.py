"""Sharded conservative-parallel DES engine.

Partitions a runtime's localities across OS worker processes; each shard
runs the existing fast kernel (:mod:`repro.sim.core`) over its locality
subset and the shards synchronize with a conservative time-window
protocol whose lookahead is the fabric's wire latency.  See
docs/SHARDING.md for the protocol, the determinism contract, and the
derivation of the window width.

Public surface:

* :func:`run_sharded` / :func:`run_sharded_point` — evaluate a sweep
  point under ``N`` shards (the ``--shards N`` CLI knob routes here);
* :class:`ShardContext` / :func:`current_context` — the per-process
  shard state the runtime and fabric consult;
* :exc:`ShardStopped`, :exc:`LookaheadViolation`,
  :exc:`ShardingUnsupported` — the engine's failure vocabulary.
"""

from .context import (LookaheadViolation, ShardContext, ShardStopped,
                      ShardingUnsupported, current_context, set_current)
from .runner import run_sharded, run_sharded_point

__all__ = [
    "ShardContext", "ShardStopped", "LookaheadViolation",
    "ShardingUnsupported", "current_context", "set_current",
    "run_sharded", "run_sharded_point",
]
