"""Deterministic named random-number streams.

Every stochastic decision in the simulation (task compute jitter, octree
refinement, workload arrival noise) draws from a stream derived from a
single root seed plus a stable stream name, so experiments are exactly
repeatable and independent components do not perturb each other's draws.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngPool"]


class RngPool:
    """Factory of independent, reproducible ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0xC0FFEE):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, mean_us: float, cv: float = 0.1) -> float:
        """A positive jittered duration with coefficient of variation ``cv``."""
        if mean_us <= 0.0 or cv <= 0.0:
            return max(mean_us, 0.0)
        draw = self.stream(name).normal(mean_us, mean_us * cv)
        return max(draw, mean_us * 0.1)
