"""Deterministic discrete-event simulation kernel.

This is the foundation of the whole reproduction: every CPU cycle, lock
acquisition, NIC transfer and wire hop in the simulated HPX/MPI/LCI stack is
an event scheduled on a :class:`Simulator`.

The kernel is intentionally simpy-like (generator-coroutine processes that
``yield`` events) but is written from scratch, lean, and fully deterministic:

* Virtual time is a ``float`` in **microseconds**.
* Ties are broken by ``(time, priority, seq)`` where ``seq`` is a global
  monotonically increasing counter, so two runs of the same program produce
  bit-identical schedules.
* There is no wall-clock coupling anywhere.

The hot paths (``run``, ``Timeout``, ``Process._resume``, ``schedule_call``)
are hand-optimised — heap pushes inlined, wake records pared down to bare
``_Wake`` objects, the sequence counter a plain int — under a hard
determinism contract: the ``(time, priority, seq)`` schedule, the
``event_count``, and every simulated result are bit-identical to the
pre-optimisation kernel (kept frozen in :mod:`repro.sim._seed_kernel` and
compared against in ``tests/test_determinism_kernel.py``).  See
docs/PERFORMANCE.md for the full catalogue of fast paths.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(3.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[3.0]
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional, Tuple

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

#: Event priorities: URGENT events fire before NORMAL events scheduled at the
#: same timestamp.  Used for immediate wake-ups (e.g. lock hand-off).
URGENT = 0
NORMAL = 1

#: Wire deliveries are scheduled at their own priority level, between URGENT
#: wake-ups and NORMAL events, with an *intrinsic* tie-break key in the seq
#: slot: ``(src locality, per-source delivery sequence)`` instead of the
#: global scheduling counter.  Co-temporal deliveries therefore order by
#: (time, src, per-src order) — a property of the *traffic*, not of when the
#: scheduling call happened to run — which is what makes the sharded engine's
#: window-boundary imports land in exactly the sequential engine's order
#: (see repro/sim/shard/ and docs/SHARDING.md).  Keys are tuples and plain
#: seqs are ints, so the distinct priority level also keeps the heap's
#: lexicographic compare from ever mixing the two.
DELIVERY = 0.5


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double-trigger, run without events)."""


class Interrupt(Exception):
    """Thrown into a :class:`Process` by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Wake:
    """Bare heap record for internal wake-ups (bootstrap, resume, interrupt).

    Quacks just enough like a processed-event carrier for the run loop
    (``callbacks``/``processed``) and for :meth:`Process._resume`
    (``_ok``/``_value``); never escapes the kernel.  Compared to a full
    :class:`Event` it skips ``sim``/``triggered`` bookkeeping and the
    ``__init__`` call — call sites assign the three live slots directly.
    """

    __slots__ = ("callbacks", "_value", "_ok", "processed")


class Event:
    """A one-shot occurrence on the simulator timeline.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called (or when the simulator schedules it), and
    *processed* once its callbacks ran.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    # -- introspection ---------------------------------------------------
    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (or the failure exception)."""
        return self._value

    @property
    def ok(self) -> bool:
        """False if the event failed."""
        return self._ok

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully; callbacks run at the current time."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now, priority, seq, self))
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiting processes receive ``exc``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._ok = False
        self._value = exc
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now, priority, seq, self))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed (immediately if done)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` µs after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # Slimmed constructor: Event.__init__ + succeed() fused into direct
        # slot assignments and one inlined heap push.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.triggered = True
        self.processed = False
        self.delay = delay
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now + delay, NORMAL, seq, self))


class _Call(Event):
    """A :meth:`Simulator.schedule_call` event: runs ``fn()`` when processed.

    Replaces the seed kernel's ``Timeout + lambda callback`` pair with a
    single object; the heap tuple it pushes is identical, so schedules are
    unchanged.
    """

    __slots__ = ("fn",)

    def __init__(self, sim: "Simulator", delay: float,
                 fn: Callable[[], None]):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.fn = fn
        self.callbacks = [self._invoke]
        self._value = None
        self._ok = True
        self.triggered = True
        self.processed = False
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now + delay, NORMAL, seq, self))

    def _invoke(self, _event: Event) -> None:
        self.fn()


class _Call1(Event):
    """A :meth:`Simulator.schedule_call1` event: runs ``fn(arg)``.

    Like :class:`_Call` but carries one argument, replacing the
    per-message closures on the hot wire-delivery and rendezvous-
    completion paths (``lambda: dst.deliver(msg)`` and friends) with
    plain attribute slots.  Heap tuple identical to ``schedule_call``.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, sim: "Simulator", delay: float,
                 fn: Callable[[Any], None], arg: Any):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.fn = fn
        self.arg = arg
        self.callbacks = [self._invoke]
        self._value = None
        self._ok = True
        self.triggered = True
        self.processed = False
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now + delay, NORMAL, seq, self))

    def _invoke(self, _event: Event) -> None:
        self.fn(self.arg)


def _succeed_stashed(wake: "_Wake") -> None:
    """Callback for :meth:`Simulator.succeed_later` wake records: the
    target event rides in the record's ``_value`` slot; deliver the value
    pre-staged on the event itself."""
    ev = wake._value
    ev.succeed(ev._value)


class Process(Event):
    """A generator-coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event fires, receiving ``event.value`` as the result of the
    ``yield`` expression.  The process *itself* is an event that triggers
    with the generator's return value, so processes can wait on each other.
    """

    __slots__ = ("gen", "name", "_target", "_bound_resume")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self.triggered = False
        self.processed = False
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # One bound method for the whole lifetime instead of a fresh
        # ``self._resume`` allocation on every suspension.
        self._bound_resume = self._resume
        # Bootstrap: resume once at the current time.  The boot record is
        # the process's initial resume target so stray callbacks can never
        # start it twice.
        boot = _Wake()
        boot._ok = True
        boot._value = None
        boot.callbacks = [self._bound_resume]
        self._target: Any = boot
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now, URGENT, seq, boot))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupt is delivered when its wake-up is processed (an URGENT
        event at the current time).  Detaching from whatever the process is
        waiting on happens at *delivery* time, which makes the operation
        race-free:

        * interrupting a process whose wait target has already triggered
          (but not yet processed) delivers the target's value first, then
          the interrupt at the next suspension point — the completion is
          not lost and the stale target can never resume the process a
          second time;
        * interrupting a process that has not started yet lets it start
          normally and receive the interrupt at its first ``yield`` (where
          it is catchable).
        """
        if self.triggered:
            return
        sim = self.sim
        wake = _Wake()
        wake._ok = False
        wake._value = Interrupt(cause)
        wake.callbacks = [self._interrupted]
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._heap, (sim.now, URGENT, seq, wake))

    # -- internal ----------------------------------------------------------
    def _interrupted(self, wake: _Wake) -> None:
        """Deliver a pending interrupt: detach from the current wait target
        (if it can still fire) and throw into the generator."""
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._bound_resume)
            except ValueError:
                pass
        self._target = wake
        self._resume(wake)

    def _resume(self, trigger: Any) -> None:
        # Only the currently registered target may resume the process; a
        # detached or superseded event's late callback is ignored.  This
        # closes the seed kernel's interrupt-vs-completion double-resume
        # race (see tests/test_sim_core.py).
        if self.triggered or trigger is not self._target:
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if trigger._ok:
                nxt = self.gen.send(trigger._value)
            else:
                nxt = self.gen.throw(trigger._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            sim._active_process = None
            if sim.strict:
                raise
            self.fail(exc, priority=URGENT)
            return
        sim._active_process = None
        cls = nxt.__class__
        if cls is float or cls is int:
            # Bare-delay yield (``yield worker.cpu(us)`` returns a float):
            # push the resume record directly — the same ``(now + d,
            # NORMAL, seq)`` heap tuple, at the same seq-allocation point,
            # as ``yield sim.timeout(d)``, minus the Timeout object, its
            # callbacks list, and the callback-append on resume.
            if nxt < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {nxt!r}")
            wake = _Wake()
            wake._ok = True
            wake._value = None
            wake.callbacks = [self._bound_resume]
            self._target = wake
            seq = sim._seq
            sim._seq = seq + 1
            _heappush(sim._heap, (sim.now + nxt, NORMAL, seq, wake))
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {nxt!r}")
        cbs = nxt.callbacks
        if cbs is None:
            # Already processed: resume immediately (at current time) via a
            # bare wake record — same heap tuple as the seed kernel's full
            # Event, minus the allocation and bookkeeping.
            wake = _Wake()
            wake._ok = nxt._ok
            wake._value = nxt._value
            wake.callbacks = [self._bound_resume]
            self._target = wake
            seq = sim._seq
            sim._seq = seq + 1
            _heappush(sim._heap, (sim.now, URGENT, seq, wake))
        else:
            cbs.append(self._bound_resume)
            self._target = nxt


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        # Inlined Event.__init__ (direct slot assignment, like Timeout).
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self.triggered = False
        self.processed = False
        self.events = evs = list(events)
        self._pending = len(evs)
        if not evs:
            self.succeed({})
            return
        # Inlined add_callback with a single bound-method allocation.
        check = self._check
        for ev in evs:
            cbs = ev.callbacks
            if cbs is None:
                check(ev)
            else:
                cbs.append(check)

    def _check(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* the given events have triggered.

    Value is a dict mapping each event to its value.  Fails fast if any
    child fails.
    """

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed({e: e._value for e in self.events})


class AnyOf(_Condition):
    """Triggers when *any one* of the given events triggers (value = (event, value))."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed((ev, ev._value))


class Simulator:
    """Heap-driven deterministic event loop.

    Parameters
    ----------
    strict:
        If True (default), exceptions raised inside processes propagate out
        of :meth:`run` immediately instead of failing the process event.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._heap: list = []
        #: next ``(time, priority, seq)`` tie-breaker; a plain int sequence
        #: (same values as the seed kernel's ``itertools.count``)
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self.event_count = 0

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self.now + delay, priority, seq, event))

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` µs (no process needed)."""
        return _Call(self, delay, fn)

    def schedule_call1(self, delay: float, fn: Callable[[Any], None],
                       arg: Any) -> Event:
        """Run ``fn(arg)`` after ``delay`` µs — closure-free
        :meth:`schedule_call` for the per-message hot paths."""
        return _Call1(self, delay, fn, arg)

    def schedule_delivery(self, delay: float, fn: Callable[[Any], None],
                          arg: Any, key: Tuple[int, int]) -> Event:
        """Run ``fn(arg)`` after ``delay`` µs at :data:`DELIVERY` priority
        with the intrinsic tie-break ``key`` (``(src, per-src seq)``).

        Used exclusively for wire deliveries (:meth:`repro.netsim.fabric.
        Fabric.transmit` and the sharded engine's window imports): the key
        replaces the global seq counter so co-temporal deliveries order by
        traffic identity rather than by scheduling order, and no global seq
        is consumed (later events keep the same *relative* seq order either
        way).
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = _Call1.__new__(_Call1)
        ev.sim = self
        ev.fn = fn
        ev.arg = arg
        ev.callbacks = [ev._invoke]
        ev._value = None
        ev._ok = True
        ev.triggered = True
        ev.processed = False
        _heappush(self._heap, (self.now + delay, DELIVERY, key, ev))
        return ev

    def succeed_later(self, event: Event, delay: float,
                      value: Any = None) -> None:
        """Trigger ``event.succeed(value)`` after ``delay`` µs via one bare
        wake record.

        Schedule-identical to ``schedule_call(delay, lambda:
        event.succeed(value))`` — same two-record dance, same seq
        allocation points — without the _Call event or the closure.  The
        value is pre-staged in the target's ``_value`` slot (observable
        only through ``Event.value`` introspection before the trigger,
        which nothing on these paths does).
        """
        event._value = value
        wake = _Wake()
        wake._ok = True
        wake._value = event
        wake.callbacks = [_succeed_stashed]
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (self.now + delay, NORMAL, seq, wake))

    def schedule_calls(self,
                       calls: Iterable[Tuple[float, Callable[[], None]]]
                       ) -> list:
        """Batched :meth:`schedule_call`: one ``(delay, fn)`` pair per entry.

        Binds the heap and sequence counter once for the whole batch;
        returns the scheduled events in input order.
        """
        heap = self._heap
        now = self.now
        seq = self._seq
        out = []
        append = out.append
        for delay, fn in calls:
            if delay < 0:
                self._seq = seq
                raise ValueError(f"negative delay {delay}")
            ev = _Call.__new__(_Call)
            ev.sim = self
            ev.fn = fn
            ev.callbacks = [ev._invoke]
            ev._value = None
            ev._ok = True
            ev.triggered = True
            ev.processed = False
            _heappush(heap, (now + delay, NORMAL, seq, ev))
            seq += 1
            append(ev)
        self._seq = seq
        return out

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next event.

        Semantically identical to one iteration of :meth:`run` (which
        inlines this body into its tight loops); kept as the single-step
        API for tests and schedule tracing.
        """
        t, _prio, _seq, event = _heappop(self._heap)
        if t < self.now:
            raise SimulationError("time went backwards")
        self.now = t
        self.event_count += 1
        callbacks = event.callbacks
        event.callbacks = None
        event.processed = True
        for cb in callbacks:
            cb(event)

    def run(self, until: "float | Event | None" = None,
            max_events: Optional[int] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run to exhaustion; a float — run until virtual time
            reaches it; an :class:`Event` — run until it triggers and return
            its value.
        max_events:
            Safety valve; raise once exactly ``max_events`` events have been
            processed and more remain (the run may *complete* in exactly
            ``max_events``).
        """
        stop_event: Optional[Event] = None
        deadline: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
        elif until is not None:
            deadline = float(until)

        heap = self._heap
        pop = _heappop
        limit = max_events if max_events is not None else float("inf")
        now = self.now
        processed = 0
        try:
            if deadline is None:
                # Hot path: run to exhaustion or until ``stop_event``
                # triggers, with the step() body inlined.
                while heap:
                    if stop_event is not None \
                            and stop_event.callbacks is None:
                        break
                    if processed >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(possible livelock)")
                    item = pop(heap)
                    t = item[0]
                    if t < now:
                        raise SimulationError("time went backwards")
                    self.now = now = t
                    processed += 1
                    event = item[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event.processed = True
                    for cb in callbacks:
                        cb(event)
            else:
                # Deadline path: peek before popping so events beyond the
                # deadline stay scheduled.
                while heap:
                    if stop_event is not None \
                            and stop_event.callbacks is None:
                        break
                    t = heap[0][0]
                    if t > deadline:
                        self.now = deadline
                        break
                    if processed >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            f"(possible livelock)")
                    item = pop(heap)
                    if t < now:
                        raise SimulationError("time went backwards")
                    self.now = now = t
                    processed += 1
                    event = item[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    event.processed = True
                    for cb in callbacks:
                        cb(event)
        finally:
            self.event_count += processed
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before `until` triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if deadline is not None and not self._heap:
            self.now = max(self.now, deadline)
        return None

    def run_window(self, stop_before: float,
                   stop_event: Optional[Event] = None,
                   deadline: Optional[float] = None,
                   max_events: Optional[int] = None) -> int:
        """Process events strictly before ``stop_before``; return the count.

        The sharded engine's inner loop (see :mod:`repro.sim.shard`): one
        conservative time window executes every event with
        ``t < stop_before`` — the exclusive bound is what guarantees a
        cross-shard delivery scheduled *at* the horizon is never outrun.
        ``stop_event`` mirrors :meth:`run`'s until-event cut (stop as soon
        as it has been processed, leaving later events scheduled) and
        ``deadline`` mirrors the inclusive float-until cut (``t <=
        deadline``), so a windowed run makes exactly the sequential
        kernel's stopping decision, just in horizon-sized slices.  Unlike
        :meth:`run`, the clock is *not* advanced to the horizon — virtual
        time only moves with events, and the barrier protocol reads
        :meth:`peek` to agree on the next horizon.
        """
        heap = self._heap
        pop = _heappop
        limit = max_events if max_events is not None else float("inf")
        now = self.now
        processed = 0
        try:
            while heap:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                t = heap[0][0]
                if t >= stop_before:
                    break
                if deadline is not None and t > deadline:
                    break
                if processed >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(possible livelock)")
                item = pop(heap)
                if t < now:
                    raise SimulationError("time went backwards")
                self.now = now = t
                processed += 1
                event = item[3]
                callbacks = event.callbacks
                event.callbacks = None
                event.processed = True
                for cb in callbacks:
                    cb(event)
        finally:
            self.event_count += processed
        return processed

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process
