"""Lightweight statistics collection for simulated components.

Every layer (NIC, progress engine, parcelport, scheduler) owns a
:class:`StatSet`, so the benchmark harness can report paper-style breakdowns
(lock wait time, progress-call counts, messages by protocol) without the
components knowing about the harness.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["StatSet", "TimeSeries", "percentile", "summarize"]


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Matches numpy's default ("linear") method so histogram metrics and
    ad-hoc report scripts agree on the same numbers.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    vals = sorted(values)
    if len(vals) == 1:
        return vals[0]
    rank = (q / 100.0) * (len(vals) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return vals[lo]
    frac = rank - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


class TimeSeries:
    """Append-only (time, value) samples with summary helpers."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, v: float) -> None:
        self.samples.append((t, v))

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        vals = self.values()
        return sum(vals) / len(vals) if vals else 0.0

    def max(self) -> float:
        vals = self.values()
        return max(vals) if vals else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the recorded values."""
        return percentile(self.values(), q)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p90(self) -> float:
        return self.percentile(90.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        """The 99.9th percentile — the serving layer's tail-SLO number.

        Same linear-interpolation semantics as every other percentile
        here: with fewer than 1001 samples it interpolates between the
        two largest order statistics and degenerates to :meth:`max` at
        ``n == 1`` (exact small-sample behavior pinned by tests).
        """
        return self.percentile(99.9)

    def __len__(self) -> int:
        return len(self.samples)


class StatSet:
    """A named bag of counters, accumulators and time series."""

    def __init__(self, name: str = ""):
        self.name = name
        self.counters: Dict[str, int] = defaultdict(int)
        self.accum: Dict[str, float] = defaultdict(float)
        self.series: Dict[str, TimeSeries] = defaultdict(TimeSeries)

    def inc(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    def get(self, key: str, default: int = 0) -> int:
        """A counter's value without creating it (defaultdict-safe)."""
        return self.counters.get(key, default)

    def add(self, key: str, v: float) -> None:
        self.accum[key] += v

    def sample(self, key: str, t: float, v: float) -> None:
        self.series[key].record(t, v)

    def merge(self, other: "StatSet") -> None:
        for k, v in other.counters.items():
            self.counters[k] += v
        for k, v in other.accum.items():
            self.accum[k] += v
        for k, ts in other.series.items():
            self.series[k].samples.extend(ts.samples)

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        out.update(self.counters)
        out.update(self.accum)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{k}={v}" for k, v in sorted(self.as_dict().items())]
        return f"<StatSet {self.name}: {', '.join(parts)}>"


def summarize(values: List[float]) -> Dict[str, float]:
    """mean/std/min/max of a sample list (population std, paper-style)."""
    if not values:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "n": 0}
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {"mean": mean, "std": math.sqrt(var),
            "min": min(values), "max": max(values), "n": n}
