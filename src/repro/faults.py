"""Deterministic fault injection for the simulated network stack.

Real InfiniBand fabrics (and the LCI runtime itself) must tolerate
transient faults: lost or corrupted packets, links that flap, NICs that
stall while firmware recovers.  This module supplies a *seeded,
reproducible* model of those faults so every recovery path in the stack
above (:mod:`repro.lci_sim`, :mod:`repro.mpi_sim`, the parcelports) can
be exercised bit-identically:

* :class:`FaultPlan` — a frozen configuration describing *what* goes
  wrong: message drop probability, corruption probability, scheduled
  link-flap windows, NIC stall intervals, and optional per-endpoint
  targeting.  Plans can be written in code or parsed from the compact
  DSL used by the ``--faults`` benchmark knob.
* :class:`FaultInjector` — the runtime object consulted by
  :class:`~repro.netsim.fabric.Fabric` on every transmit and by
  :class:`~repro.netsim.nic.Nic` on every delivery.  All random draws
  come from one named :class:`~repro.sim.rng.RngPool` stream and happen
  in deterministic event order, so the same seed + plan reproduces the
  same fault schedule exactly.
* :class:`RetryPolicy` — how the parcelports recover: per-message
  timeout, bounded retries with exponential backoff + jitter.

A ``None`` injector (the default everywhere) adds zero simulated cost
and zero behavioral change: fault-free runs are byte-identical to a
build without this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, TYPE_CHECKING

from .sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from .netsim.message import NetMsg
    from .sim.core import Simulator

__all__ = [
    "TransportError", "ParcelSendError",
    "LinkFlap", "NicStall", "SlowReceiver", "PoolSqueeze", "CreditStarve",
    "FaultPlan", "FaultInjector", "RetryPolicy",
    "DELIVER", "DROP", "CORRUPT", "ACK_TAG",
]

#: verdicts returned by :meth:`FaultInjector.on_transmit`
DELIVER = "deliver"
DROP = "drop"
CORRUPT = "corrupt"

#: wire tag of end-to-end ack messages (both parcelports; defined here —
#: not in the parcelport layer — so the injector's credit-starvation mode
#: can recognize acks without an upward import)
ACK_TAG = 2


class TransportError(Exception):
    """A simulated transport-level failure (corrupted or aborted op)."""


class ParcelSendError(Exception):
    """An HPX message exhausted its retries and was reported failed."""


@dataclass(frozen=True)
class LinkFlap:
    """A time window during which a link (or every link) is down.

    ``src``/``dst`` of ``None`` are wildcards; a flap with both ``None``
    takes the whole fabric down for the window.  Messages entering the
    wire inside [start_us, end_us) are dropped deterministically.
    """

    start_us: float
    end_us: float
    src: Optional[int] = None
    dst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(f"empty flap window [{self.start_us}, "
                             f"{self.end_us})")

    def covers(self, src: int, dst: int, t: float) -> bool:
        if not (self.start_us <= t < self.end_us):
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class NicStall:
    """A window during which one node's NIC defers all RX deliveries.

    Messages arriving inside [start_us, end_us) sit in the (modelled)
    hardware queue and land at ``end_us`` instead — in arrival order,
    since the deferral preserves the original schedule ordering.
    """

    node: int
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(f"empty stall window [{self.start_us}, "
                             f"{self.end_us})")

    def covers(self, node: int, t: float) -> bool:
        return node == self.node and self.start_us <= t < self.end_us


@dataclass(frozen=True)
class SlowReceiver:
    """A window during which one node's RX deliveries are each delayed.

    Unlike :class:`NicStall` (which parks everything until the window
    ends), a slow receiver keeps consuming — just ``delay_us`` late per
    message, modelling a receiver that cannot keep up with the offered
    load.  Each message is delayed at most once (no compounding).
    """

    node: int
    start_us: float
    end_us: float
    delay_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(f"empty slow window [{self.start_us}, "
                             f"{self.end_us})")
        if self.delay_us <= 0.0:
            raise ValueError("slow-receiver delay must be positive")

    def covers(self, node: int, t: float) -> bool:
        return node == self.node and self.start_us <= t < self.end_us


@dataclass(frozen=True)
class PoolSqueeze:
    """A window during which one node's packet pools shrink to ``cap``.

    Models registered-memory pressure: :class:`~repro.lci_sim.packet_pool.
    PacketPool.try_acquire` fails (retry status) whenever ``in_use``
    would exceed the squeezed capacity — exactly the exhaustion signal
    the paper's eager protocol exposes to the layers above.
    """

    node: int
    start_us: float
    end_us: float
    cap: int

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(f"empty squeeze window [{self.start_us}, "
                             f"{self.end_us})")
        if self.cap < 0:
            raise ValueError("squeeze cap must be >= 0")

    def covers(self, node: int, t: float) -> bool:
        return node == self.node and self.start_us <= t < self.end_us


@dataclass(frozen=True)
class CreditStarve:
    """A window during which acks destined to ``node`` are held back.

    Every wire message with the end-to-end ack tag headed to ``node``
    sits in the (modelled) hardware queue until the window ends, so the
    sender's credit window drains and stays empty — the targeted test
    mode for credit-starvation behavior.  Acks are delayed, never lost:
    exactly-once delivery must survive.
    """

    node: int
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ValueError(f"empty starve window [{self.start_us}, "
                             f"{self.end_us})")

    def covers(self, node: int, t: float) -> bool:
        return node == self.node and self.start_us <= t < self.end_us


@dataclass(frozen=True)
class FaultPlan:
    """Everything that is allowed to go wrong, and to whom.

    ``targets`` restricts the *random* faults (drop/corrupt) to matching
    (src, dst) pairs; ``None`` in a pair is a wildcard, and a ``None``
    targets tuple means all traffic is eligible.  Flaps and stalls carry
    their own endpoint selectors and ignore ``targets``.
    """

    drop_prob: float = 0.0
    corrupt_prob: float = 0.0
    flaps: Tuple[LinkFlap, ...] = ()
    stalls: Tuple[NicStall, ...] = ()
    slows: Tuple[SlowReceiver, ...] = ()
    squeezes: Tuple[PoolSqueeze, ...] = ()
    starves: Tuple[CreditStarve, ...] = ()
    targets: Optional[Tuple[Tuple[Optional[int], Optional[int]], ...]] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.drop_prob <= 1.0):
            raise ValueError(f"drop_prob {self.drop_prob} not in [0, 1]")
        if not (0.0 <= self.corrupt_prob <= 1.0):
            raise ValueError(
                f"corrupt_prob {self.corrupt_prob} not in [0, 1]")
        if self.drop_prob + self.corrupt_prob > 1.0:
            raise ValueError("drop_prob + corrupt_prob exceeds 1")

    @property
    def is_zero(self) -> bool:
        """True if this plan perturbs nothing (a strict no-op)."""
        return (self.drop_prob == 0.0 and self.corrupt_prob == 0.0
                and not self.flaps and not self.stalls
                and not self.slows and not self.squeezes
                and not self.starves)

    # -- DSL -----------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the compact ``--faults`` DSL.

        Comma-separated tokens::

            drop=0.01                  # drop probability
            corrupt=0.002              # corruption probability
            flap=100:200               # all links down for t in [100, 200)
            flap=100:200@0>1           # only the 0 -> 1 link
            stall=50:80@1              # node 1's NIC defers RX in [50, 80)
            slow=50:80@1*2.5           # node 1 delivers 2.5 us late in window
            squeeze=0:500@0*8          # node 0's packet pools capped at 8
            starve=0:500@0             # acks to node 0 held until 500
            target=0>1                 # random faults only on 0 -> 1
            target=0>*                 # ... or on everything 0 sends

        Example: ``"drop=0.05,corrupt=0.01,flap=500:900@0>1"``.
        """
        drop = 0.0
        corrupt = 0.0
        flaps = []
        stalls = []
        slows = []
        squeezes = []
        starves = []
        targets = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(f"malformed fault token {token!r}")
            key, _, val = token.partition("=")
            key = key.strip()
            val = val.strip()
            if key == "drop":
                drop = float(val)
            elif key == "corrupt":
                corrupt = float(val)
            elif key == "flap":
                window, _, link = val.partition("@")
                t0, t1 = _parse_window(window, token)
                src = dst = None
                if link:
                    src, dst = _parse_link(link, token)
                flaps.append(LinkFlap(t0, t1, src=src, dst=dst))
            elif key == "stall":
                window, sep, node = val.partition("@")
                if not sep:
                    raise ValueError(
                        f"stall needs a node: {token!r} (stall=T0:T1@N)")
                t0, t1 = _parse_window(window, token)
                stalls.append(NicStall(int(node), t0, t1))
            elif key == "slow":
                window, sep, rest = val.partition("@")
                node_s, sep2, delay = rest.partition("*")
                if not sep or not sep2:
                    raise ValueError(f"slow needs a node and delay: "
                                     f"{token!r} (slow=T0:T1@N*D)")
                t0, t1 = _parse_window(window, token)
                slows.append(SlowReceiver(int(node_s), t0, t1, float(delay)))
            elif key == "squeeze":
                window, sep, rest = val.partition("@")
                node_s, sep2, cap = rest.partition("*")
                if not sep or not sep2:
                    raise ValueError(f"squeeze needs a node and cap: "
                                     f"{token!r} (squeeze=T0:T1@N*CAP)")
                t0, t1 = _parse_window(window, token)
                squeezes.append(PoolSqueeze(int(node_s), t0, t1, int(cap)))
            elif key == "starve":
                window, sep, node = val.partition("@")
                if not sep:
                    raise ValueError(
                        f"starve needs a node: {token!r} (starve=T0:T1@N)")
                t0, t1 = _parse_window(window, token)
                starves.append(CreditStarve(int(node), t0, t1))
            elif key == "target":
                targets.append(_parse_link(val, token))
            else:
                raise ValueError(f"unknown fault key {key!r} in {token!r}")
        return cls(drop_prob=drop, corrupt_prob=corrupt,
                   flaps=tuple(flaps), stalls=tuple(stalls),
                   slows=tuple(slows), squeezes=tuple(squeezes),
                   starves=tuple(starves),
                   targets=tuple(targets) if targets else None)

    def describe(self) -> str:
        """One-line human summary (used by benchmark reports)."""
        parts = []
        if self.drop_prob:
            parts.append(f"drop={self.drop_prob:g}")
        if self.corrupt_prob:
            parts.append(f"corrupt={self.corrupt_prob:g}")
        for f in self.flaps:
            link = ("" if f.src is None and f.dst is None
                    else f"@{_show(f.src)}>{_show(f.dst)}")
            parts.append(f"flap={f.start_us:g}:{f.end_us:g}{link}")
        for s in self.stalls:
            parts.append(f"stall={s.start_us:g}:{s.end_us:g}@{s.node}")
        for s in self.slows:
            parts.append(f"slow={s.start_us:g}:{s.end_us:g}@{s.node}"
                         f"*{s.delay_us:g}")
        for s in self.squeezes:
            parts.append(f"squeeze={s.start_us:g}:{s.end_us:g}@{s.node}"
                         f"*{s.cap}")
        for s in self.starves:
            parts.append(f"starve={s.start_us:g}:{s.end_us:g}@{s.node}")
        if self.targets:
            parts.extend(f"target={_show(s)}>{_show(d)}"
                         for s, d in self.targets)
        return ",".join(parts) if parts else "none"


def _parse_window(window: str, token: str) -> Tuple[float, float]:
    t0, sep, t1 = window.partition(":")
    if not sep:
        raise ValueError(f"window must be T0:T1 in {token!r}")
    return float(t0), float(t1)


def _parse_link(link: str, token: str
                ) -> Tuple[Optional[int], Optional[int]]:
    src, sep, dst = link.partition(">")
    if not sep:
        raise ValueError(f"link must be SRC>DST in {token!r}")
    return (None if src.strip() == "*" else int(src),
            None if dst.strip() == "*" else int(dst))


def _show(v: Optional[int]) -> str:
    return "*" if v is None else str(v)


@dataclass(frozen=True)
class RetryPolicy:
    """How the parcelports recover from lost/failed transfers.

    An HPX message is retransmitted when its end-to-end ack has not
    arrived within ``timeout_us``; retry ``k`` waits
    ``timeout_us * backoff**k * (1 + jitter * u)`` with ``u`` uniform in
    [0, 1) drawn from a named rng stream (deterministic given the seed).
    After ``max_retries`` retransmissions the message is reported to the
    parcel layer as failed — a failed future, never a hang.
    """

    timeout_us: float = 1000.0
    max_retries: int = 6
    backoff: float = 2.0
    jitter: float = 0.1
    #: wire bytes of one ack message
    ack_bytes: int = 16
    #: receiver connections idle longer than timeout_us * this factor are
    #: reaped (their posted receives cancelled) — bounds completion leaks
    recv_expiry_factor: float = 8.0
    #: CPU charged per reliability poll / per retransmit initiation
    poll_cost_us: float = 0.02
    retransmit_cpu_us: float = 0.2
    #: max expired senders/receivers drained per reliability poll slice
    #: (bounds the work one background call can absorb under an expiry
    #: burst; larger values clear bursts faster at the cost of latency
    #: spikes in the polling thread)
    drain_limit: int = 8

    def __post_init__(self) -> None:
        if self.timeout_us <= 0.0:
            raise ValueError("timeout_us must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter < 0.0:
            raise ValueError("jitter must be >= 0")
        if self.drain_limit < 1:
            raise ValueError("drain_limit must be >= 1")

    @property
    def recv_expiry_us(self) -> float:
        return self.timeout_us * self.recv_expiry_factor


class FaultInjector:
    """Runtime fault oracle consulted by the fabric and the NICs.

    One injector per runtime; all Bernoulli draws come from ``rng`` (a
    dedicated named stream) in deterministic event order.  Counters live
    in :attr:`stats` (drops/corrupts by wire kind, flap drops, stall
    deferrals) for the benchmark harness to report.
    """

    def __init__(self, sim: "Simulator", plan: FaultPlan, rng,
                 name: str = "faults"):
        self.sim = sim
        self.plan = plan
        self.rng = rng
        self.stats = StatSet(name)
        self._random = plan.drop_prob > 0.0 or plan.corrupt_prob > 0.0
        #: when set (the sharded engine does this), random drop/corrupt
        #: draws are *keyed* by (src, per-src transmit seq) instead of
        #: consumed from the sequential rng stream: each message's fate is
        #: then a pure function of its traffic identity, so the fault
        #: schedule is invariant across shard counts (sequential-stream
        #: draws would depend on the global transmit interleaving, which
        #: shard partitioning legitimately changes).
        self.keyed_base: Optional[str] = None

    # -- deterministic schedules --------------------------------------------
    def link_down(self, src: int, dst: int, t: float) -> bool:
        return any(f.covers(src, dst, t) for f in self.plan.flaps)

    def stalled_until(self, node: int, t: float) -> float:
        """Latest stall-window end covering (node, t); ``t`` if none."""
        end = t
        for s in self.plan.stalls:
            if s.covers(node, t) and s.end_us > end:
                end = s.end_us
        return end

    def deferred_until(self, msg: "NetMsg", node: int, t: float,
                       redelivery: bool = False) -> float:
        """When a message landing at ``node`` at ``t`` may actually be
        delivered; ``t`` means "now" (no hold).

        Combines every RX-side hold: NIC stalls (everything parked to
        window end), slow-receiver windows (each message ``delay_us``
        late — skipped on ``redelivery`` so holds never compound), and
        credit starvation (ack-tagged messages parked to window end).
        Counters are bumped per category the first time each applies.
        """
        until = t
        stall_end = self.stalled_until(node, t)
        if stall_end > t:
            self.stats.inc("stall_deferrals")
            until = stall_end
        if not redelivery:
            for s in self.plan.slows:
                if s.covers(node, t):
                    self.stats.inc("slow_deferrals")
                    until = max(until, t + s.delay_us)
                    break
        if msg.tag == ACK_TAG and self.plan.starves:
            for s in self.plan.starves:
                if s.covers(node, t) and s.end_us > until:
                    self.stats.inc("ack_holds")
                    until = s.end_us
        return until

    def pool_cap(self, node: int, t: float) -> Optional[int]:
        """Squeezed packet-pool capacity for ``node`` at ``t`` (None = no
        squeeze active)."""
        cap: Optional[int] = None
        for s in self.plan.squeezes:
            if s.covers(node, t) and (cap is None or s.cap < cap):
                cap = s.cap
        return cap

    # -- per-message verdict -------------------------------------------------
    def _targeted(self, msg: "NetMsg") -> bool:
        targets = self.plan.targets
        if targets is None:
            return True
        return any((s is None or s == msg.src)
                   and (d is None or d == msg.dst)
                   for s, d in targets)

    def on_transmit(self, msg: "NetMsg",
                    key: Optional[Tuple[int, int]] = None) -> str:
        """Decide this message's fate: DELIVER, DROP or CORRUPT.

        ``key`` is the fabric's intrinsic (src, per-src seq) delivery key;
        it feeds the keyed-draw mode (:attr:`keyed_base`) and is otherwise
        ignored.
        """
        if self.link_down(msg.src, msg.dst, self.sim.now):
            self.stats.inc("flap_drops")
            self.stats.inc(f"drop.{msg.kind}")
            return DROP
        if self._random and self._targeted(msg):
            if self.keyed_base is not None and key is not None:
                digest = hashlib.sha256(
                    f"{self.keyed_base}:{key[0]}:{key[1]}".encode()
                ).digest()
                r = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            else:
                r = float(self.rng.random())
            if r < self.plan.drop_prob:
                self.stats.inc("drops")
                self.stats.inc(f"drop.{msg.kind}")
                return DROP
            if r < self.plan.drop_prob + self.plan.corrupt_prob:
                self.stats.inc("corrupts")
                self.stats.inc(f"corrupt.{msg.kind}")
                return CORRUPT
        return DELIVER
