"""Simulated kernel TCP stack (substrate for HPX's legacy TCP parcelport)."""

from .params import DEFAULT_TCP_PARAMS, TcpParams
from .stack import TcpStack, TcpStream

__all__ = ["TcpStack", "TcpStream", "TcpParams", "DEFAULT_TCP_PARAMS"]
