"""Tuning constants of the simulated kernel TCP stack.

TCP goes through the operating system: every send/receive pays a syscall
and a kernel/user copy, segments are limited by the MSS, and receives are
discovered by polling readiness (the HPX TCP parcelport sits on asio's
epoll loop).  These constants are what make the TCP parcelport the slowest
backend, as the paper's introduction takes as given.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TcpParams", "DEFAULT_TCP_PARAMS"]


@dataclass(frozen=True)
class TcpParams:
    """Cost model of the in-kernel TCP path (µs / bytes)."""

    #: one send()/recv() syscall (user->kernel transition and back)
    syscall_us: float = 1.8
    #: kernel/user copy throughput (µs per byte; slower than userspace
    #: memcpy because of the uncached socket buffers)
    copy_per_byte_us: float = 0.00025
    #: maximum segment size on the wire
    mss_bytes: int = 65536
    #: per-segment kernel processing (protocol stack traversal)
    segment_us: float = 0.9
    #: TCP/IP header bytes per segment
    segment_header_bytes: int = 66
    #: epoll_wait-style readiness poll when nothing is pending
    poll_idle_us: float = 0.4
    #: connection-establishment handshake time (3-way, one RTT + work)
    connect_us: float = 30.0

    def with_(self, **kw) -> "TcpParams":
        return replace(self, **kw)


DEFAULT_TCP_PARAMS = TcpParams()
