"""Simulated TCP: in-order byte streams over the NIC fabric.

One :class:`TcpStack` per locality; a :class:`TcpStream` per peer (lazily
connected).  Sends segment the payload at the MSS, pay syscall + copy +
per-segment kernel costs, and ride the same simulated NIC/fabric as the
RDMA-style traffic — so bandwidth and wire latency are shared, but TCP
additionally pays the operating-system toll on both ends.

Message framing is length-prefixed: the application hands whole messages
to :meth:`TcpStack.send_msg`; the receive side reassembles segments in
order and surfaces complete messages via :meth:`TcpStack.poll`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..netsim.message import NetMsg
from ..netsim.nic import Nic
from ..sim.core import Simulator
from ..sim.stats import StatSet
from .params import DEFAULT_TCP_PARAMS, TcpParams

__all__ = ["TcpStack", "TcpStream"]


class TcpStream:
    """One established connection's per-peer state."""

    __slots__ = ("peer", "connected_at", "rx_segments", "rx_expected",
                 "rx_have", "rx_meta", "tx_msgs", "rx_msgs")

    def __init__(self, peer: int, now: float):
        self.peer = peer
        self.connected_at = now
        #: reassembly state for the message currently being received
        self.rx_expected = 0
        self.rx_have = 0
        self.rx_meta: Any = None
        self.tx_msgs = 0
        self.rx_msgs = 0


class TcpStack:
    """One locality's TCP endpoint (socket table + readiness polling)."""

    def __init__(self, sim: Simulator, nic: Nic, rank: int,
                 params: TcpParams = DEFAULT_TCP_PARAMS):
        self.sim = sim
        self.nic = nic
        self.rank = rank
        self.params = params
        self.streams: Dict[int, TcpStream] = {}
        #: fully reassembled incoming messages, ready for the application
        self._ready: Deque[Tuple[int, Any]] = deque()
        self.stats = StatSet(f"tcp{rank}")

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def stream_to(self, worker, peer: int):
        """Generator → :class:`TcpStream`; connects lazily (3-way cost)."""
        stream = self.streams.get(peer)
        if stream is None:
            yield worker.cpu(self.params.connect_us)
            stream = TcpStream(peer, self.sim.now)
            self.streams[peer] = stream
            self.stats.inc("connects")
        return stream

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send_msg(self, worker, peer: int, size: int, meta: Any = None):
        """Generator: write one length-prefixed message to ``peer``.

        Segments at the MSS; each segment pays a syscall, the kernel copy
        of its bytes, and per-segment stack traversal.  Returns once the
        last byte is handed to the NIC (socket-buffer semantics: the
        sender does not wait for delivery).
        """
        p = self.params
        stream = yield from self.stream_to(worker, peer)
        remaining = max(size, 1)
        first = True
        while remaining > 0:
            seg = min(p.mss_bytes, remaining)
            remaining -= seg
            yield worker.cpu(p.syscall_us + p.segment_us
                             + seg * p.copy_per_byte_us)
            last = remaining == 0
            post_cost = self.nic.post_send(NetMsg(
                src=self.rank, dst=peer,
                size=seg + p.segment_header_bytes, kind="tcp_seg",
                payload=("seg", seg, size if first else None,
                         meta if first else None, last)))
            yield worker.cpu(post_cost)
            first = False
            self.stats.inc("segments_sent")
        stream.tx_msgs += 1
        self.stats.inc("msgs_sent")
        self.stats.add("bytes_sent", size)

    # ------------------------------------------------------------------
    # receive path (polled, epoll style)
    # ------------------------------------------------------------------
    def poll(self, worker, max_segments: int = 16):
        """Generator → list of ``(src, meta)`` completed messages.

        Drains up to ``max_segments`` TCP segments from the NIC RX ring,
        paying the kernel receive costs, and reassembles streams in order.
        An empty poll costs the idle epoll check.
        """
        p = self.params
        out: List[Tuple[int, Any]] = []
        if not self.nic.rx_ring:
            yield worker.cpu(p.poll_idle_us)
            while self._ready:
                out.append(self._ready.popleft())
            return out
        handled = 0
        while handled < max_segments:
            msg = self.nic.poll_rx()
            if msg is None:
                break
            if msg.kind != "tcp_seg":  # pragma: no cover - misuse guard
                raise ValueError(f"TCP stack got {msg.kind!r} traffic")
            handled += 1
            _tag, seg, total, meta, last = msg.payload
            yield worker.cpu(p.syscall_us + p.segment_us
                             + seg * p.copy_per_byte_us)
            stream = self.streams.get(msg.src)
            if stream is None:
                stream = TcpStream(msg.src, self.sim.now)
                self.streams[msg.src] = stream
                self.stats.inc("accepts")
            if total is not None:       # first segment of a message
                stream.rx_expected = total
                stream.rx_have = 0
                stream.rx_meta = meta
            stream.rx_have += seg
            self.stats.inc("segments_recv")
            if last:
                stream.rx_msgs += 1
                self.stats.inc("msgs_recv")
                self.stats.add("bytes_recv", stream.rx_expected)
                self._ready.append((msg.src, stream.rx_meta))
                stream.rx_meta = None
        while self._ready:
            out.append(self._ready.popleft())
        return out

    # -- introspection ---------------------------------------------------
    @property
    def ready_count(self) -> int:
        return len(self._ready)
