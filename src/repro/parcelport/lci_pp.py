"""The LCI parcelport (§3.2): baseline and all research variants.

Variant axes (all combinations supported, cf. Table 1):

* **protocol** — ``psr`` (putsendrecv): the header travels as a one-sided
  dynamic put landing in a pre-configured completion queue; ``sr``
  (sendrecv): the header uses two-sided send/receive with one persistent
  posted receive, like the MPI parcelport.
* **completion** — ``cq``: one completion queue for all chunk completions;
  ``sy``: one synchronizer per operation, kept in a spinlock-protected
  pending list scanned round-robin (the paper's request-pool analogue).
  Header puts *always* complete into a CQ (a documented limitation of the
  current LCI put, §3.2.2).
* **progress** — ``pin``: one dedicated progress thread created through the
  HPX resource partitioner and pinned to core 0; ``worker``: every worker
  thread calls the (thread-safe, try-lock) progress function when idle.

Tag management: a distinct tag per *follow-up message* (not per
connection), because LCI does not guarantee in-order delivery (§3.2.1);
a block of ``n`` tags is drawn from the shared atomic counter per message.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

from ..hpx_rt.parcel import HpxMessage
from ..lci_sim.completion import CompletionQueue, Synchronizer
from ..lci_sim.device import LciDevice
from ..lci_sim.params import DEFAULT_LCI_PARAMS, LciParams
from ..sim.primitives import SpinLock
from .base import Connection, DetachedWorker, Parcelport
from .config import PPConfig
from .header import plan_header
from .reliability import ACK_TAG
from .tagging import TagAllocator

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.runtime import Locality

__all__ = ["LciParcelport"]

#: LCI tag reserved for header messages in the ``sr`` protocol.
HEADER_TAG = 0
#: retry backoff when the packet pool is exhausted (LCI ops never block)
RETRY_US = 1.0
#: LCI tags are wide; wraparound is effectively never exercised
LCI_MAX_TAG = 1 << 20
#: CPU cost to decode one header message
HEADER_DECODE_US = 0.20
#: CQ entries drained per background slice
CQ_POPS_PER_SLICE = 8
#: synchronizers tested per background slice (sy mode)
SYNC_SCAN_LIMIT = 8


class LciParcelport(Parcelport):
    """HPX's LCI parcelport on the simulated LCI library."""

    supports_reliability = True

    def __init__(self, locality: "Locality", config: Optional[PPConfig] = None,
                 lci_params: LciParams = DEFAULT_LCI_PARAMS):
        super().__init__(locality)
        self.config = config or PPConfig(backend="lci")
        if self.config.backend != "lci":
            raise ValueError("LciParcelport needs an lci config")
        self.protocol = self.config.protocol
        self.completion = self.config.completion
        self.reserves_progress_core = self.config.progress == "pin"
        # One or more LCI devices (num_devices > 1 implements the paper's
        # §7.2 future work: replicated network resources, each with its
        # own packet pool, matching table, progress engine and RX channel).
        self.devices = []
        self.header_cqs = []
        for d in range(max(1, lci_params.num_devices)):
            dev = LciDevice(self.sim, self.nic, rank=locality.lid,
                            params=lci_params, vchan=d)
            dev.notify = locality.sched.notify
            # Pre-configured remote completion queue for dynamic puts.
            cq = CompletionQueue(self.sim, lci_params,
                                 name=f"L{locality.lid}.hdr_cq{d}")
            dev.put_target_cq = cq
            self.devices.append(dev)
            self.header_cqs.append(cq)
        self.device = self.devices[0]
        self.header_cq = self.header_cqs[0]
        # Single completion queue for all chunk completions (cq mode).
        self.comp_cq = CompletionQueue(self.sim, lci_params,
                                       name=f"L{locality.lid}.comp_cq")
        # Pending synchronizer list (sy mode).
        self.sync_pending: Deque[Synchronizer] = deque()
        self.sync_lock = SpinLock(self.sim, f"L{locality.lid}.sync_pending",
                                  acquire_cost=self.cost.spinlock_acquire_us)
        self.tags = TagAllocator(self.sim, LCI_MAX_TAG)
        self._sys = DetachedWorker(locality, name="lci_boot")
        self._progress_worker = DetachedWorker(locality, name="lci_progress")
        for dev in self.devices:
            dev.obs = self.obs

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.protocol == "sr":
            self.sim.process(self._boot_sr(),
                             name=f"L{self.locality.lid}.lci_boot")
        if self.reliability is not None:
            self.sim.process(self._boot_ack(),
                             name=f"L{self.locality.lid}.lci_ack_boot")
        # The progress loop also boots (parked) when the adaptive
        # controller may pin progress mid-run; with adapt off the
        # condition is exactly the seed's.
        if self.reserves_progress_core or (
                self.adapt is not None and self.adapt.spec.switch_progress):
            self.sim.process(self._progress_loop(),
                             name=f"L{self.locality.lid}.lci_progress")

    def _boot_sr(self):
        for dev in self.devices:
            yield from self._post_header_recv(self._sys, dev)

    def _boot_ack(self):
        yield from self._post_ack_recv(self._sys, self.devices[0])

    def _post_header_recv(self, worker, dev):
        """``sr`` protocol: keep exactly one header receive posted
        per device."""
        comp = self._new_completion()
        if isinstance(comp, Synchronizer):
            yield from self._register_sync(worker, comp)
        yield from dev.recvm(worker, HEADER_TAG,
                             self.cost.max_header_size, comp,
                             ctx=("header", dev.vchan))

    def _post_ack_recv(self, worker, dev):
        """Reliability: keep one end-to-end ack receive posted (device 0)."""
        comp = self._new_completion()
        if isinstance(comp, Synchronizer):
            yield from self._register_sync(worker, comp)
        yield from dev.recvm(worker, ACK_TAG,
                             self.reliability.policy.ack_bytes, comp,
                             ctx=("ack", dev.vchan))

    # ------------------------------------------------------------------
    # dedicated progress thread (the ``pin`` / ``rp`` mode)
    # ------------------------------------------------------------------
    def _progress_loop(self):
        w = self._progress_worker
        rt = self.locality.runtime
        sched = self.locality.sched
        while rt.running:
            ad = self.adapt
            if ad is not None and not ad.progress_pinned:
                # Adaptive worker mode: the pinned thread parks and the
                # workers' background_work drives progress; poll the flag
                # on the controller cadence.
                yield self.sim.timeout(ad.spec.interval_us)
                continue
            handled = 0
            for dev in self.devices:
                # split progress(): no generator built on a contended poll
                ok, val = dev.try_begin_progress("pin")
                if ok:
                    n = yield from dev._progress_body(w, val)
                    if n > 0:
                        handled += n
                else:
                    yield w.cpu(val)
            if handled:
                # Completions were pushed; make sure a worker notices.
                sched.notify()
                continue
            if self.nic.rx_pending() == 0:
                yield self.nic.arrival_event()

    # ------------------------------------------------------------------
    # completion plumbing
    # ------------------------------------------------------------------
    def _new_completion(self):
        """A completion object per the configured mechanism."""
        if self.completion == "cq":
            return self.comp_cq
        return Synchronizer()

    def _register_sync(self, worker, sync: Synchronizer):
        """sy mode: track one pending synchronizer (spinlock-guarded list)."""
        yield from worker.lock(self.sync_lock)
        self.sync_pending.append(sync)
        self.sync_lock.release()

    def _device_for(self, tag_raw: int):
        """Device selection: both ends derive it from the tag block."""
        return self.devices[tag_raw % len(self.devices)]

    # ------------------------------------------------------------------
    # packet-pool exhaustion reaction
    # ------------------------------------------------------------------
    def _pool_wait(self, worker, attempt: int):
        """Generator: wait out a pool exhaustion before retrying.

        Without a flow policy this is the seed's fixed ``RETRY_US`` spin;
        with one, consecutive exhaustions back off exponentially up to
        the policy ceiling instead of hammering a dry pool.
        """
        self.stats.inc("pool_retries")
        if self.obs is not None:
            self.obs.instant("flow", "pool_retry", loc=self.locality.lid,
                             tid=worker.name, attempt=attempt)
        fl = self.flow
        if fl is None:
            yield self.sim.timeout(RETRY_US)
            return
        if attempt > 0:
            self.stats.inc("pool_backoffs")
        yield self.sim.timeout(fl.pool_wait_us(attempt))

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send_message(self, worker, conn: Connection, msg: HpxMessage,
                     on_complete):
        cost = self.cost
        conn.reset()
        conn.msg = msg
        conn.on_complete = on_complete
        plan = plan_header(msg, cost.max_header_size, piggyback_trans=True)
        conn.plan = plan.followups
        conn.piggy_bytes = plan.piggybacked_bytes
        n = len(plan.followups)
        # Always draw a tag block: it also selects the device, which both
        # ends must agree on (the header carries the raw value).
        conn.tag_raw = yield from self.tags.draw(worker, max(1, n))
        device = self._device_for(conn.tag_raw)
        if self.obs is not None:
            self.obs.instant("msg", "send", loc=self.locality.lid,
                             tid=worker.name, mid=msg.mid, dest=msg.dest,
                             proto=self.protocol, chunks=n,
                             bytes=msg.total_bytes)
        if self.reliability is not None:
            # Fresh sends get a seq + in-flight entry; retransmits (seq
            # already set) just re-attach their entry to this connection.
            self.reliability.track(msg, conn)
            conn.seq = msg.seq
        # The header is assembled directly in an LCI-provided buffer —
        # the memcpy the MPI parcelport pays here is saved (§3.2.1).
        yield worker.cpu(cost.alloc_us)
        payload = ("hdr", msg, plan.followups, conn.tag_raw,
                   plan.piggybacked_bytes, msg.seq)
        if self.protocol == "psr":
            attempt = 0
            while True:
                ok = yield from device.putva(
                    worker, msg.dest, plan.header_size, payload=payload,
                    assembled_in_place=True)
                if ok:
                    break
                yield from self._pool_wait(worker, attempt)
                attempt += 1
                if conn.aborted:
                    return
        else:  # sr: two-sided header
            attempt = 0
            while True:
                ok = yield from device.sendm(
                    worker, msg.dest, plan.header_size, HEADER_TAG,
                    comp=None, payload=payload)
                if ok:
                    break
                yield from self._pool_wait(worker, attempt)
                attempt += 1
                if conn.aborted:
                    return
        self.stats.inc("header_sends")
        # Header is locally complete at injection; continue with chunks.
        if n == 0:
            yield from self._finish(worker, conn)
        else:
            yield from self._post_next_send(worker, conn)

    def _post_next_send(self, worker, conn: Connection):
        if conn.aborted:
            return
        device = self._device_for(conn.tag_raw)
        kind, size = conn.plan[conn.stage]
        tag = self.tags.tag(conn.tag_raw, conn.stage)
        conn.stage += 1
        comp = self._new_completion()
        conn.cur = comp
        if isinstance(comp, Synchronizer):
            yield from self._register_sync(worker, comp)
        ad = self.adapt
        eager_max = (device.params.eager_threshold if ad is None
                     else ad.eager_cutoff(device.params.eager_threshold))
        use_rendezvous = size > eager_max
        if not use_rendezvous:
            fl = self.flow
            attempt = 0
            while True:
                ok = yield from device.sendm(
                    worker, conn.dest, size, tag, comp,
                    ctx=("send", conn),
                    payload=("chunk", kind, conn.msg.mid))
                if ok:
                    break
                if fl is not None \
                        and attempt + 1 >= fl.rendezvous_fallback_after:
                    # The pool stayed dry: switch this chunk to the
                    # rendezvous path, which needs no pool packet (the
                    # receiver's posted eager receive matches the RTS).
                    self.stats.inc("eager_fallbacks")
                    if self.obs is not None:
                        self.obs.instant("msg", "eager_fallback",
                                         loc=self.locality.lid,
                                         tid=worker.name,
                                         mid=conn.msg.mid, size=size)
                    use_rendezvous = True
                    break
                yield from self._pool_wait(worker, attempt)
                attempt += 1
                if conn.aborted:
                    return
        if use_rendezvous:
            yield from device.sendl(worker, conn.dest, size, tag, comp,
                                    ctx=("send", conn),
                                    payload=("chunk", kind, conn.msg.mid))
        self.stats.inc("chunk_sends")
        if self.obs is not None:
            self.obs.instant("chunk", "posted", loc=self.locality.lid,
                             tid=worker.name, mid=conn.msg.mid, kind=kind,
                             size=size, stage=conn.stage,
                             rndv=use_rendezvous)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _handle_header(self, worker, payload):
        _kind, msg, followups, tag_raw, piggy_bytes, seq = payload
        yield worker.cpu(HEADER_DECODE_US)
        if not followups:
            # Deserialization reads straight out of the LCI buffer — no
            # copy-out (unlike the MPI parcelport's header path).
            yield from self._complete_receive(worker, msg, seq)
            return
        conn = Connection(msg.src, role="recv")
        conn.msg = msg
        conn.plan = list(followups)
        conn.tag_raw = tag_raw
        conn.src = msg.src
        conn.seq = seq
        if self.reliability is not None and seq is not None:
            self.reliability.watch_recv(conn)
        yield worker.cpu(self.cost.alloc_us)
        self.stats.inc("recv_connections")
        yield from self._post_next_recv(worker, conn)

    def _post_next_recv(self, worker, conn: Connection):
        if conn.aborted:
            return
        device = self._device_for(conn.tag_raw)
        kind, size = conn.plan[conn.stage]
        tag = self.tags.tag(conn.tag_raw, conn.stage)
        conn.stage += 1
        comp = self._new_completion()
        conn.cur = comp
        if isinstance(comp, Synchronizer):
            yield from self._register_sync(worker, comp)
        ad = self.adapt
        eager_max = (device.params.eager_threshold if ad is None
                     else ad.eager_cutoff(device.params.eager_threshold))
        if size <= eager_max:
            yield from device.recvm(worker, tag, size, comp,
                                    ctx=("recv", conn))
        else:
            yield from device.recvl(worker, tag, size, comp,
                                    ctx=("recv", conn))
        self.stats.inc("chunk_recvs")
        if self.obs is not None:
            self.obs.instant("chunk", "recv_posted",
                             loc=self.locality.lid, tid=worker.name,
                             mid=conn.msg.mid, kind=kind, size=size,
                             stage=conn.stage)

    # ------------------------------------------------------------------
    # completion dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, worker, entry: Tuple):
        """Advance whatever a completion entry belongs to."""
        what = entry[0]
        if what == "put":
            # ("put", ctx, payload, size) — header arrival (psr)
            _w, _ctx, payload, _size = entry
            yield from self._handle_header(worker, payload)
            self.stats.inc("headers_received")
            return
        if what == "send":
            # ("send", ("send", conn)) — a chunk send completed
            _w, ctx = entry
            conn = ctx[1]
            if conn.aborted:
                # Chain withdrawn by the reliability layer; a late local
                # completion must not advance (or recycle) it.
                self.stats.inc("aborted_completions")
                return
            if conn.finished_chunks:
                yield from self._finish(worker, conn)
            else:
                yield from self._post_next_send(worker, conn)
            return
        if what == "recv":
            ctx = entry[1]
            if isinstance(ctx, tuple) and ctx[0] == "header":
                # sr-protocol header arrived: repost, then decode.
                payload = entry[2]
                yield from self._post_header_recv(worker,
                                                  self.devices[ctx[1]])
                yield from self._handle_header(worker, payload)
                self.stats.inc("headers_received")
                return
            if isinstance(ctx, tuple) and ctx[0] == "ack":
                # End-to-end ack arrived: stop tracking, repost.
                payload = entry[2]
                self.reliability.on_ack(payload[1])
                yield from self._post_ack_recv(worker, self.devices[ctx[1]])
                return
            conn = ctx[1]
            if conn.aborted:
                self.stats.inc("aborted_completions")
                return
            if conn.finished_chunks:
                if self.reliability is not None:
                    self.reliability.unwatch_recv(conn)
                yield from self._complete_receive(worker, conn.msg, conn.seq)
            else:
                if self.reliability is not None and conn.seq is not None:
                    self.reliability.touch_recv(conn)
                yield from self._post_next_recv(worker, conn)
            return
        if what == "error":
            # ("error", ctx, reason) — an op completed with error status
            # (corrupted message matched it).  Recovery is sender-driven:
            # repost persistent receives, abandon chunk chains and let the
            # retransmission timer resend the whole message.
            _w, ctx, _reason = entry
            self.stats.inc("comp_errors")
            if isinstance(ctx, tuple) and ctx[0] == "header":
                yield from self._post_header_recv(worker,
                                                  self.devices[ctx[1]])
                return
            if isinstance(ctx, tuple) and ctx[0] == "ack":
                yield from self._post_ack_recv(worker, self.devices[ctx[1]])
                return
            if isinstance(ctx, tuple) and ctx[0] == "recv":
                conn = ctx[1]
                if not conn.aborted:
                    conn.aborted = True
                    if self.reliability is not None:
                        self.reliability.unwatch_recv(conn)
                return
            if isinstance(ctx, tuple) and ctx[0] == "send":
                conn = ctx[1]
                if self.reliability is not None and conn.msg is not None:
                    self.reliability.expedite(conn.msg.seq)
                return
            return
        raise ValueError(f"unknown completion entry {entry!r}")

    # ------------------------------------------------------------------
    # reliability hooks (active only under fault injection)
    # ------------------------------------------------------------------
    def _send_ack(self, worker, dst: int, seq: int):
        """End-to-end ack: a small two-sided eager send on device 0."""
        device = self.devices[0]
        size = self.reliability.policy.ack_bytes
        attempt = 0
        while True:
            ok = yield from device.sendm(worker, dst, size, ACK_TAG,
                                         comp=None, payload=("ack", seq))
            if ok:
                break
            yield from self._pool_wait(worker, attempt)
            attempt += 1
        self.stats.inc("ack_sends")

    def _abort_send_conn(self, worker, conn: Connection):
        super()._abort_send_conn(worker, conn)
        # A pending synchronizer for the withdrawn op would otherwise sit
        # in sync_pending forever (sy mode); mark it for discard.
        if isinstance(conn.cur, Synchronizer):
            conn.cur.cancelled = True
        return None

    def _abort_recv_conn(self, worker, conn: Connection):
        conn.aborted = True
        if self.reliability is not None:
            self.reliability.unwatch_recv(conn)
        if conn.stage > 0 and conn.cur is not None:
            # Withdraw the posted receive for the current stage.
            device = self._device_for(conn.tag_raw)
            tag = self.tags.tag(conn.tag_raw, conn.stage - 1)
            device.cancel_recv(tag, conn.cur)
            if isinstance(conn.cur, Synchronizer):
                conn.cur.cancelled = True
        return None

    # ------------------------------------------------------------------
    # background work (§3.2.1 "Threads and background work")
    # ------------------------------------------------------------------
    def background_work(self, worker, rounds=None):
        """Generator → bool: up to ``poll_rounds`` background slices.

        The round body is :meth:`_background_once` inlined — one generator
        for the whole call instead of one per round — with the sub-polls
        that yield nothing and charge nothing when idle (sync scan, flow
        pump) elided at the call site, so idle polling stops churning
        generator objects while the event schedule stays bit-identical.
        """
        did_any = False
        idle_rounds = 0
        for _ in range(rounds if rounds is not None else self.poll_rounds):
            yield worker.cpu(self.cost.background_call_us)
            did = False
            ad = self.adapt
            pinned = (self.reserves_progress_core if ad is None
                      else ad.progress_pinned)
            if not pinned:
                # worker-progress mode: idle threads drive the LCI
                # engines (split progress(): a contended poll charges its
                # try-lock cost without building a generator)
                for dev in self.devices:
                    ok, val = dev.try_begin_progress(id(worker))
                    if ok:
                        n = yield from dev._progress_body(worker, val)
                        if n > 0:
                            did = True
                    else:
                        yield worker.cpu(val)
            # Drain header completions (always a CQ — LCI put limitation).
            if self.protocol == "psr":
                for cq in self.header_cqs:
                    for _ in range(CQ_POPS_PER_SLICE):
                        entry, pop_cost = cq.pop()
                        yield worker.cpu(pop_cost)
                        if entry is None:
                            break
                        yield from self._dispatch(worker, entry)
                        did = True
            # Drain chunk completions.
            if self.completion == "cq":
                for _ in range(CQ_POPS_PER_SLICE):
                    entry, pop_cost = self.comp_cq.pop()
                    yield worker.cpu(pop_cost)
                    if entry is None:
                        break
                    yield from self._dispatch(worker, entry)
                    did = True
            elif self.sync_pending:
                did = (yield from self._scan_syncs(worker)) or did
            if self.reliability is not None:
                did = (yield from self._reliability_poll(worker)) or did
            if self.flow is not None and (self._backlog_total
                                          or self._accept_waiters):
                did = (yield from self._flow_pump(worker)) or did
            if did:
                did_any = True
                idle_rounds = 0
            else:
                idle_rounds += 1
                if idle_rounds >= 2:
                    break
        return did_any

    def _background_once(self, worker):
        """One unguarded background round (the seed shape: every sub-poll
        delegated unconditionally).  :meth:`background_work` inlines this
        body; the frozen reference loop (repro.bench.seedpaths) still
        drives it round-by-round."""
        yield worker.cpu(self.cost.background_call_us)
        did = False
        if not self.reserves_progress_core:
            # worker-progress mode: idle threads drive the LCI engines
            for dev in self.devices:
                n = yield from dev.progress(worker, caller=id(worker))
                if n > 0:
                    did = True
        # Drain header completions (always a CQ — LCI put limitation).
        if self.protocol == "psr":
            for cq in self.header_cqs:
                for _ in range(CQ_POPS_PER_SLICE):
                    entry, pop_cost = cq.pop()
                    yield worker.cpu(pop_cost)
                    if entry is None:
                        break
                    yield from self._dispatch(worker, entry)
                    did = True
        # Drain chunk completions.
        if self.completion == "cq":
            for _ in range(CQ_POPS_PER_SLICE):
                entry, pop_cost = self.comp_cq.pop()
                yield worker.cpu(pop_cost)
                if entry is None:
                    break
                yield from self._dispatch(worker, entry)
                did = True
        else:
            did = (yield from self._scan_syncs(worker)) or did
        if self.reliability is not None:
            did = (yield from self._reliability_poll(worker)) or did
        if self.flow is not None:
            did = (yield from self._flow_pump(worker)) or did
        return did

    def _scan_syncs(self, worker):
        """sy mode: round-robin test the pending synchronizer list.

        The scan happens *while holding* the pending-list spinlock (as the
        HPX pending-connection scan does) — this serialization across
        worker threads is precisely the request-pool overhead that makes
        ``sy`` trail ``cq`` by 25-30 % in Figs 5/6.
        """
        if not self.sync_pending:
            return False
        t0 = self.sim.now
        yield self.sync_lock.acquire()       # inlined worker.lock()
        worker.lock_acquired(self.sync_lock, t0)
        did = False
        ready = []
        keep = []
        for _ in range(min(SYNC_SCAN_LIMIT, len(self.sync_pending))):
            sync = self.sync_pending.popleft()
            if sync.cancelled:
                # Its op was withdrawn (aborted chain): drop silently —
                # this is the leak the reliability layer would otherwise
                # cause in the pending list.
                self.stats.inc("syncs_cancelled")
                continue
            yield worker.cpu(self.device.params.sync_test_us)
            if sync.test():
                ready.append(sync)
            else:
                keep.append(sync)
        self.sync_pending.extend(keep)
        self.sync_lock.release()
        for sync in ready:
            did = True
            yield from self._dispatch(worker, sync.value)
        return did
