"""Tag management for parcelport connections.

Both parcelports draw tags from a shared atomic counter (§3.1/§3.2) that
wraps around at the tag upper bound; tag 0 is reserved for header messages,
tag 1 for the original MPI variant's tag-release protocol, and tag 2 for
the reliability layer's end-to-end acks (fault-injection runs).  Safety
relies on the paper's stated assumption: a connection pair reusing a tag
value is always complete before the value comes around again.

The original MPI parcelport used a **tag provider**: a lock-protected
free-list refilled by "tag release" messages; :class:`TagProvider`
reproduces it for the §3.1 ablation.
"""

from __future__ import annotations

from typing import List

from ..sim.core import Simulator
from ..sim.primitives import AtomicCell, SpinLock

__all__ = ["TagAllocator", "TagProvider", "tag_of", "FIRST_DYNAMIC_TAG"]

#: 0 = header messages, 1 = tag-release messages (original MPI variant),
#: 2 = end-to-end ack messages (reliability layer under fault injection).
FIRST_DYNAMIC_TAG = 3


def tag_of(raw: int, offset: int, max_tag: int) -> int:
    """Map a raw counter value (+offset) into the dynamic tag range."""
    span = max_tag - FIRST_DYNAMIC_TAG + 1
    return FIRST_DYNAMIC_TAG + (raw + offset) % span


class TagAllocator:
    """Shared atomic tag counter (the current scheme in both parcelports)."""

    __slots__ = ("max_tag", "_counter")

    def __init__(self, sim: Simulator, max_tag: int, name: str = "tags"):
        self.max_tag = max_tag
        self._counter = AtomicCell(sim, name, op_cost=0.02)

    def draw(self, worker, count: int = 1):
        """Generator → raw counter base for ``count`` consecutive tags."""
        raw = yield self._counter.fetch_add(count)
        return raw

    def tag(self, raw: int, offset: int = 0) -> int:
        return tag_of(raw, offset, self.max_tag)


class TagProvider:
    """Original-variant tag provider: lock-protected free list + counter.

    ``draw`` pops a released tag if available, else mints a new one;
    ``release`` pushes a tag back (fed by "tag release" messages from the
    receiver in the original MPI parcelport).
    """

    __slots__ = ("sim", "max_tag", "lock", "list_op_us", "_free",
                 "_free_set", "duplicate_releases", "_next")

    def __init__(self, sim: Simulator, max_tag: int, name: str = "tagprov",
                 list_op_us: float = 0.05):
        self.sim = sim
        self.max_tag = max_tag
        self.lock = SpinLock(sim, name + ".lock")
        self.list_op_us = list_op_us
        self._free: List[int] = []
        self._free_set = set()
        self.duplicate_releases = 0
        self._next = 0

    def draw(self, worker):
        """Generator → a concrete tag (not a raw counter)."""
        yield from worker.lock(self.lock)
        yield worker.cpu(self.list_op_us)
        if self._free:
            tag = self._free.pop()
            self._free_set.discard(tag)
        else:
            tag = tag_of(self._next, 0, self.max_tag)
            self._next += 1
        self.lock.release()
        return tag

    def release(self, worker, tag: int):
        """Generator: return a tag to the free list.

        Duplicate releases are ignored (counted in
        ``duplicate_releases``): under fault recovery the same tag can be
        released both locally (aborted send) and by a late tag-release
        message — pushing it twice would hand one tag to two concurrent
        connections.
        """
        yield from worker.lock(self.lock)
        yield worker.cpu(self.list_op_us)
        if tag in self._free_set:
            self.duplicate_releases += 1
        else:
            self._free.append(tag)
            self._free_set.add(tag)
        self.lock.release()

    @property
    def free_count(self) -> int:
        return len(self._free)
