"""HPX parcelports: the paper's core contribution layer.

Typical use::

    from repro.parcelport import PPConfig, make_parcelport_factory
    from repro.hpx_rt import HpxRuntime, EXPANSE

    cfg = PPConfig.parse("lci_psr_cq_pin_i")
    rt = HpxRuntime(EXPANSE, n_localities=2,
                    parcelport_factory=make_parcelport_factory(cfg),
                    immediate=cfg.immediate)
"""

from typing import Callable, Optional

from ..lci_sim.params import DEFAULT_LCI_PARAMS, LciParams
from ..mpi_sim.params import DEFAULT_MPI_PARAMS, MpiParams
from ..tcp_sim.params import DEFAULT_TCP_PARAMS, TcpParams
from .base import Connection, DetachedWorker, Parcelport
from .config import ALL_LCI_VARIANTS, PPConfig, TABLE1
from .header import HEADER_BASE_BYTES, HeaderPlan, plan_header
from .lci_pp import LciParcelport
from .mpi_pp import MpiParcelport
from .tcp_pp import TcpParcelport
from .tagging import TagAllocator, TagProvider, tag_of

__all__ = [
    "Parcelport", "Connection", "DetachedWorker",
    "MpiParcelport", "LciParcelport", "TcpParcelport",
    "PPConfig", "TABLE1", "ALL_LCI_VARIANTS",
    "HeaderPlan", "plan_header", "HEADER_BASE_BYTES",
    "TagAllocator", "TagProvider", "tag_of",
    "create_parcelport", "make_parcelport_factory",
]


def create_parcelport(locality, config: PPConfig,
                      mpi_params: MpiParams = DEFAULT_MPI_PARAMS,
                      lci_params: LciParams = DEFAULT_LCI_PARAMS,
                      tcp_params: TcpParams = DEFAULT_TCP_PARAMS):
    """Instantiate the parcelport described by ``config`` on ``locality``."""
    if config.backend == "mpi":
        return MpiParcelport(locality, config, mpi_params=mpi_params)
    if config.backend == "tcp":
        return TcpParcelport(locality, config, tcp_params=tcp_params)
    return LciParcelport(locality, config, lci_params=lci_params)


def make_parcelport_factory(config: "PPConfig | str",
                            mpi_params: MpiParams = DEFAULT_MPI_PARAMS,
                            lci_params: LciParams = DEFAULT_LCI_PARAMS,
                            tcp_params: TcpParams = DEFAULT_TCP_PARAMS,
                            ) -> Callable:
    """A per-locality factory suitable for :class:`HpxRuntime`."""
    if isinstance(config, str):
        config = PPConfig.parse(config)

    def factory(locality):
        return create_parcelport(locality, config,
                                 mpi_params=mpi_params,
                                 lci_params=lci_params,
                                 tcp_params=tcp_params)

    factory.config = config
    return factory
