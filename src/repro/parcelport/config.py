"""Parcelport configuration and the paper's Table-1 naming scheme.

A configuration string is parsed exactly as the paper abbreviates it::

    mpi            MPI parcelport (aggregation on)
    mpi_i          MPI parcelport + send-immediate
    mpi_orig       the original (pre-improvement) MPI parcelport of §3.1
    lci            LCI baseline == lci_psr_cq_pin
    lci_psr_cq_pin_i
    lci_sr_sy_mt_i
    ...

Tokens: ``psr``/``sr`` (protocol), ``cq``/``sy`` (completion type),
``pin``/``rp``/``mt``/``worker`` (progress model), trailing ``i``
(send-immediate optimization), ``orig`` (original MPI variant).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

__all__ = ["PPConfig", "ALL_LCI_VARIANTS", "TABLE1"]


#: The paper's Table 1 (abbreviation -> meaning), reproduced verbatim
#: (plus the legacy TCP parcelport the paper's introduction mentions).
TABLE1 = {
    "tcp": "Use the TCP parcelport (legacy)",
    "mpi": "Use the MPI parcelport",
    "lci": "Use the LCI parcelport",
    "sr": "Use the sendrecv protocol",
    "psr": "Use the putsendrecv protocol",
    "sy": "Use synchronizer as the completion type",
    "cq": "Use completion queue as the completion type",
    "pin": "Use a pinned dedicated progress thread",
    "mt": "Use all worker threads to make progress",
    "i": "Enable the send immediate optimization",
}


@dataclass(frozen=True)
class PPConfig:
    """Fully-resolved parcelport configuration."""

    backend: str = "lci"        # "mpi" | "lci"
    protocol: str = "psr"       # "psr" | "sr"          (LCI only)
    completion: str = "cq"      # "cq" | "sy"           (LCI only)
    progress: str = "pin"       # "pin" | "worker"      (LCI only)
    immediate: bool = False     # send-immediate optimization
    mpi_variant: str = "improved"   # "improved" | "original"

    def __post_init__(self) -> None:
        if self.backend not in ("mpi", "lci", "tcp"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.protocol not in ("psr", "sr"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.completion not in ("cq", "sy"):
            raise ValueError(f"unknown completion {self.completion!r}")
        if self.progress not in ("pin", "worker"):
            raise ValueError(f"unknown progress {self.progress!r}")
        if self.mpi_variant not in ("improved", "original"):
            raise ValueError(f"unknown MPI variant {self.mpi_variant!r}")
        # Normalize fields that do not apply to this backend to their
        # canonical defaults, so two configs that behave identically
        # compare (and hash, and round-trip through parse) identically —
        # e.g. PPConfig(backend="tcp", protocol="sr") used to be a
        # distinct object whose label parsed back to a different config.
        if self.backend != "lci":
            object.__setattr__(self, "protocol", "psr")
            object.__setattr__(self, "completion", "cq")
            object.__setattr__(self, "progress", "pin")
        if self.backend != "mpi":
            object.__setattr__(self, "mpi_variant", "improved")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "PPConfig":
        """Parse a Table-1-style configuration string."""
        tokens: List[str] = [t for t in spec.strip().lower().split("_") if t]
        if not tokens:
            raise ValueError("empty parcelport spec")
        backend = tokens.pop(0)
        if backend not in ("mpi", "lci", "tcp"):
            raise ValueError(f"spec must start with mpi/lci/tcp: {spec!r}")
        kw = dict(backend=backend)
        for tok in tokens:
            if tok in ("psr", "sr"):
                kw["protocol"] = tok
            elif tok in ("cq", "sy"):
                kw["completion"] = tok
            elif tok in ("pin", "rp"):
                kw["progress"] = "pin"
            elif tok in ("mt", "worker"):
                kw["progress"] = "worker"
            elif tok == "i":
                kw["immediate"] = True
            elif tok == "orig":
                kw["mpi_variant"] = "original"
            else:
                raise ValueError(f"unknown token {tok!r} in spec {spec!r}")
        cfg = cls(**kw)
        if backend in ("mpi", "tcp"):
            for field_ in ("protocol", "completion", "progress"):
                if field_ in kw:
                    raise ValueError(
                        f"{field_} token is LCI-only (spec {spec!r})")
        if backend == "tcp" and "mpi_variant" in kw:
            raise ValueError(f"orig token is MPI-only (spec {spec!r})")
        return cfg

    @property
    def label(self) -> str:
        """The paper-style abbreviation for this configuration."""
        if self.backend in ("mpi", "tcp"):
            parts = [self.backend]
            if self.backend == "mpi" and self.mpi_variant == "original":
                parts.append("orig")
        else:
            parts = ["lci", self.protocol, self.completion,
                     "pin" if self.progress == "pin" else "mt"]
        if self.immediate:
            parts.append("i")
        return "_".join(parts)

    @property
    def canonical_name(self) -> str:
        """The unique spec string this config round-trips through:

        ``PPConfig.parse(cfg.canonical_name) == cfg`` for every config,
        and ``PPConfig.parse(spec).canonical_name == spec`` for every
        canonical Table-1 spec (tcp included).
        """
        return self.label

    def with_(self, **kw) -> "PPConfig":
        return replace(self, **kw)


def _lci_variants() -> List[str]:
    out = []
    for proto in ("psr", "sr"):
        for comp in ("cq", "sy"):
            for prog in ("pin", "mt"):
                out.append(f"lci_{proto}_{comp}_{prog}_i")
    return out


#: The eight immediate-mode LCI variants of Figs 2/5.
ALL_LCI_VARIANTS = _lci_variants()
