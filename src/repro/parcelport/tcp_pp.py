"""The TCP parcelport — HPX's legacy backend (paper §1).

Before the LCI work, HPX shipped two parcelports: TCP and MPI, with MPI
being the faster one.  This reproduction includes the TCP parcelport both
for completeness and as the sanity floor every comparison should clear.

Design: one kernel TCP stream per destination; an HPX message travels as a
single length-prefixed blob (streams preserve order and have no tag
matching, so the header/chunk chain of the RDMA-style parcelports is
unnecessary — the "header" is just the frame's metadata).  Receives are
polled from background work via the stack's epoll-style :meth:`poll`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..hpx_rt.parcel import HpxMessage
from ..tcp_sim.params import DEFAULT_TCP_PARAMS, TcpParams
from ..tcp_sim.stack import TcpStack
from .base import Connection, Parcelport
from .config import PPConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.runtime import Locality

__all__ = ["TcpParcelport"]

#: frame metadata bytes prepended to every HPX message on the stream
FRAME_HEADER_BYTES = 24


class TcpParcelport(Parcelport):
    """HPX's TCP parcelport on the simulated kernel TCP stack."""

    reserves_progress_core = False

    def __init__(self, locality: "Locality",
                 config: Optional[PPConfig] = None,
                 tcp_params: TcpParams = DEFAULT_TCP_PARAMS):
        super().__init__(locality)
        self.config = config
        self.tcp = TcpStack(self.sim, self.nic, rank=locality.lid,
                            params=tcp_params)

    # ------------------------------------------------------------------
    def send_message(self, worker, conn: Connection, msg: HpxMessage,
                     on_complete):
        conn.reset()
        conn.msg = msg
        conn.on_complete = on_complete
        size = FRAME_HEADER_BYTES + msg.total_bytes
        yield from self.tcp.send_msg(worker, msg.dest, size, meta=msg)
        self.stats.inc("frames_sent")
        # Stream semantics: the send completes once buffered; the
        # connection is immediately reusable.
        yield from self._finish(worker, conn)

    def background_work(self, worker, rounds=None):
        did = False
        for _ in range(rounds if rounds is not None else self.poll_rounds):
            ready = yield from self.tcp.poll(worker)
            if not ready:
                break
            did = True
            for _src, msg in ready:
                self._deliver(msg)
        return did
