"""The MPI parcelport (§3.1), improved and original variants.

Data path for one HPX message (sender):

1. draw a connection tag from the shared atomic counter (tag 0 is reserved
   for headers);
2. build the header message, piggybacking the non-zero-copy chunk and (in
   the improved variant) the transmission chunk when they fit;
3. ``MPI_Isend`` the header with tag 0, then each remaining chunk with the
   connection tag — one operation in flight at a time, advanced by
   background work testing the pending-connection list round-robin.

Receiver: one persistent ``MPI_Irecv`` with the maximum header size and
tag 0; background work tests it, decodes arrivals, creates receiver
connections and chains their chunk receives the same way.

The **original** variant (§3.1 "The original version") differs in exactly
the two ways the paper describes: a static 512-byte header buffer that can
piggyback only the non-zero-copy chunk, and a tag provider with
"tag release" messages from the receiver.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from ..hpx_rt.parcel import HpxMessage
from ..mpi_sim.comm import MpiComm
from ..mpi_sim.params import MAX_TAG, DEFAULT_MPI_PARAMS, MpiParams
from ..mpi_sim.request import ANY_SOURCE
from ..sim.primitives import SpinLock, TryLock
from .base import Connection, DetachedWorker, Parcelport
from .config import PPConfig
from .header import HEADER_BASE_BYTES, ORIGINAL_MAX_HEADER, plan_header
from .reliability import ACK_TAG
from .tagging import TagAllocator, TagProvider

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.runtime import Locality

__all__ = ["MpiParcelport"]

#: MPI tag reserved for header messages.
HEADER_TAG = 0
#: MPI tag reserved for tag-release messages (original variant only).
RELEASE_TAG = 1

#: CPU cost to decode one header message.
HEADER_DECODE_US = 0.20


class MpiParcelport(Parcelport):
    """HPX's MPI parcelport on the simulated MPI library.

    Adaptive policies (``repro.adapt``) reach this parcelport one layer
    down on each side: the eager/rendezvous cutoff is scaled inside
    :meth:`MpiComm.isend <repro.mpi_sim.comm.MpiComm.isend>` and the
    aggregation hold inside the shared parcel layer, both via the
    ``adapt`` state the controller installs on ``self`` and
    ``self.mpi``.  There is no pinned progress thread to switch
    (``reserves_progress_core`` is ``False``), so the progress knob is
    LCI-only.
    """

    reserves_progress_core = False  # no dedicated progress thread in MPI pp
    supports_reliability = True

    def __init__(self, locality: "Locality", config: Optional[PPConfig] = None,
                 mpi_params: MpiParams = DEFAULT_MPI_PARAMS,
                 scan_limit: int = 8):
        super().__init__(locality)
        self.config = config or PPConfig(backend="mpi")
        if self.config.backend != "mpi":
            raise ValueError("MpiParcelport needs an mpi config")
        self.original = self.config.mpi_variant == "original"
        self.mpi = MpiComm(self.sim, self.nic, rank=locality.lid,
                           params=mpi_params)
        self.scan_limit = scan_limit
        self.pending: Deque[Connection] = deque()
        self.pending_lock = SpinLock(
            self.sim, f"L{locality.lid}.mpi_pending",
            acquire_cost=self.cost.spinlock_acquire_us)
        self._header_guard = TryLock(self.sim, f"L{locality.lid}.hdr_guard")
        self._header_req = None
        self._release_req = None
        self._ack_req = None
        self._sys = DetachedWorker(locality, name="mpi_boot")
        if self.original:
            self.tag_provider = TagProvider(self.sim, MAX_TAG)
        else:
            self.tags = TagAllocator(self.sim, MAX_TAG)
        # Wake sleeping workers when timer-driven completions land
        # (rendezvous sends finishing after NIC drain).
        self.mpi.notify = locality.sched.notify
        self.mpi.obs = self.obs
        self.max_header = (ORIGINAL_MAX_HEADER if self.original
                           else self.cost.max_header_size)

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.process(self._boot(), name=f"L{self.locality.lid}.mpi_boot")

    def _boot(self):
        self._header_req = yield from self.mpi.irecv(
            self._sys, ANY_SOURCE, self.max_header, HEADER_TAG)
        if self.original:
            self._release_req = yield from self.mpi.irecv(
                self._sys, ANY_SOURCE, 16, RELEASE_TAG)
        if self.reliability is not None:
            self._ack_req = yield from self.mpi.irecv(
                self._sys, ANY_SOURCE, self.reliability.policy.ack_bytes,
                ACK_TAG)

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send_message(self, worker, conn: Connection, msg: HpxMessage,
                     on_complete):
        cost = self.cost
        conn.reset()
        conn.msg = msg
        conn.on_complete = on_complete
        plan = plan_header(msg, self.max_header,
                           piggyback_trans=not self.original)
        conn.plan = plan.followups
        conn.piggy_bytes = plan.piggybacked_bytes
        if self.original:
            conn.tag = yield from self.tag_provider.draw(worker)
        else:
            raw = yield from self.tags.draw(worker)
            conn.tag = self.tags.tag(raw)
        if self.reliability is not None:
            # Fresh sends get a seq + in-flight entry; retransmits (seq
            # already set) just re-attach their entry to this connection.
            self.reliability.track(msg, conn)
            conn.seq = msg.seq
        if self.obs is not None:
            self.obs.instant("msg", "send", loc=self.locality.lid,
                             tid=worker.name, mid=msg.mid, dest=msg.dest,
                             proto="mpi", chunks=len(plan.followups),
                             bytes=msg.total_bytes)
        # Build the header: the improved variant allocates it dynamically,
        # the original uses a fixed 512 B stack buffer (no alloc, but the
        # full 512 B always go on the wire).
        header_size = ORIGINAL_MAX_HEADER if self.original \
            else plan.header_size
        if not self.original:
            yield worker.cpu(cost.alloc_us)
        yield worker.cpu(cost.memcpy_cost(plan.piggybacked_bytes))
        payload = ("hdr", msg, plan.followups, conn.tag,
                   plan.piggybacked_bytes, msg.seq)
        req = yield from self.mpi.isend(worker, msg.dest, header_size,
                                        HEADER_TAG, payload)
        conn.cur = req
        self.stats.inc("header_sends")
        yield from self._enqueue_pending(worker, conn)

    def _advance_sender(self, worker, conn: Connection):
        """Post the next follow-up send, or finish the chain.

        Completion of the in-flight operation is only ever *observed* via
        ``MPI_Test`` from background work (§3.1) — even eager sends that
        completed at post time wait for the next pending-list scan, which
        is exactly the big-lock round trip the paper's profiling blames.
        """
        if conn.finished_chunks:
            yield from self._finish(worker, conn)
            return
        kind, size = conn.plan[conn.stage]
        conn.stage += 1
        req = yield from self.mpi.isend(
            worker, conn.dest, size, conn.tag,
            payload=("chunk", kind, conn.msg.mid))
        conn.cur = req
        self.stats.inc("chunk_sends")
        if self.obs is not None:
            self.obs.instant("chunk", "posted", loc=self.locality.lid,
                             tid=worker.name, mid=conn.msg.mid, kind=kind,
                             size=size, stage=conn.stage)
        yield from self._enqueue_pending(worker, conn)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _handle_header(self, worker, value):
        cost = self.cost
        _kind, msg, followups, tag, piggy_bytes, seq = value
        yield worker.cpu(HEADER_DECODE_US)
        yield worker.cpu(cost.memcpy_cost(piggy_bytes))
        if not followups:
            yield from self._complete_receive(worker, msg, seq)
            if self.original and tag is not None:
                # Even a duplicate delivery releases its tag: every header
                # (retransmissions included) consumed one draw.
                yield from self._send_release(worker, msg.src, tag)
            return
        conn = Connection(msg.src, role="recv")
        conn.msg = msg
        conn.plan = list(followups)
        conn.tag = tag
        conn.src = msg.src
        conn.seq = seq
        if self.reliability is not None and seq is not None:
            self.reliability.watch_recv(conn)
        yield worker.cpu(cost.alloc_us)  # receiver connection object
        self.stats.inc("recv_connections")
        yield from self._advance_receiver(worker, conn)

    def _advance_receiver(self, worker, conn: Connection):
        """Post the next chunk receive, or deliver the finished message.

        Like the sender side, completion is only observed through the
        pending-list ``MPI_Test`` scans of background work.
        """
        if conn.finished_chunks:
            if self.reliability is not None:
                self.reliability.unwatch_recv(conn)
            yield from self._complete_receive(worker, conn.msg, conn.seq)
            if self.original:
                yield from self._send_release(worker, conn.src, conn.tag)
            return
        if self.reliability is not None and conn.seq is not None:
            self.reliability.touch_recv(conn)
        kind, size = conn.plan[conn.stage]
        conn.stage += 1
        req = yield from self.mpi.irecv(worker, conn.src, size, conn.tag)
        conn.cur = req
        self.stats.inc("chunk_recvs")
        if self.obs is not None:
            self.obs.instant("chunk", "recv_posted",
                             loc=self.locality.lid, tid=worker.name,
                             mid=conn.msg.mid, kind=kind, size=size,
                             stage=conn.stage)
        yield from self._enqueue_pending(worker, conn)

    def _send_release(self, worker, dst: int, tag: int):
        """Original variant: tell the sender its tag is free again."""
        yield from self.mpi.isend(worker, dst, 16, RELEASE_TAG,
                                  payload=("tag_release", tag))
        self.stats.inc("tag_releases_sent")

    # ------------------------------------------------------------------
    # reliability hooks (active only under fault injection)
    # ------------------------------------------------------------------
    def _send_ack(self, worker, dst: int, seq: int):
        """End-to-end ack: a small eager isend (fire-and-forget)."""
        yield from self.mpi.isend(worker, dst,
                                  self.reliability.policy.ack_bytes,
                                  ACK_TAG, payload=("ack", seq))
        self.stats.inc("ack_sends")

    def _abort_send_conn(self, worker, conn: Connection):
        super()._abort_send_conn(worker, conn)
        if conn.cur is not None:
            # Withdraw the in-flight op so a pending rendezvous handshake
            # (CTS for a cancelled send) is ignored by the receiver side.
            self.mpi.cancel(conn.cur)
            conn.cur = None
        return None

    def _abort_recv_conn(self, worker, conn: Connection):
        conn.aborted = True
        if self.reliability is not None:
            self.reliability.unwatch_recv(conn)
        if conn.cur is not None:
            self.mpi.cancel(conn.cur)
            conn.cur = None
        if self.original and conn.tag is not None:
            # The sender's tag was consumed by this connection attempt.
            return self._send_release(worker, conn.src, conn.tag)
        return None

    def _handle_op_error(self, worker, conn: Connection):
        """A chunk op completed with a transport error (corruption)."""
        self.stats.inc("op_errors")
        conn.aborted = True
        if conn.role == "recv":
            if self.reliability is not None:
                self.reliability.unwatch_recv(conn)
            if self.original:
                yield from self._send_release(worker, conn.src, conn.tag)
        else:
            # Sender chain is dead; no point waiting out the full timeout.
            if self.reliability is not None and conn.msg is not None:
                self.reliability.expedite(conn.msg.seq)

    # ------------------------------------------------------------------
    # background work (§3.1 "Threads and background work")
    # ------------------------------------------------------------------
    def background_work(self, worker, rounds=None):
        """Generator → bool: up to ``poll_rounds`` background slices.

        The round body is :meth:`_background_once` inlined — one generator
        for the whole call instead of one per round — with the sub-polls
        that yield nothing and charge nothing when idle (pending scan,
        flow pump) elided at the call site, so idle polling stops churning
        generator objects while the event schedule stays bit-identical.
        """
        did_any = False
        idle_rounds = 0
        for _ in range(rounds if rounds is not None else self.poll_rounds):
            yield worker.cpu(self.cost.background_call_us)
            did = False
            # (a) check the persistent header receive for new parcels.
            # Only one thread decodes headers at a time, but every other
            # polling thread still enters MPI_Test — i.e. takes the big
            # progress lock for a bare progress pass.  That contention is
            # the §5 profiling result ("spinning on the blocking lock of
            # ucp_progress").
            if self._header_guard.try_acquire():
                try:
                    did = (yield from self._check_header(worker)) or did
                    if self.original:
                        did = (yield from self._check_release(worker)) or did
                    if self.reliability is not None:
                        did = (yield from self._check_ack(worker)) or did
                finally:
                    self._header_guard.release()
            else:
                yield from self.mpi.progress_only(worker)
            # (b) round-robin over the pending connection list
            if self.pending:
                did = (yield from self._scan_pending(worker)) or did
            if self.reliability is not None:
                did = (yield from self._reliability_poll(worker)) or did
            if self.flow is not None and (self._backlog_total
                                          or self._accept_waiters):
                did = (yield from self._flow_pump(worker)) or did
            if did:
                did_any = True
                idle_rounds = 0
            else:
                idle_rounds += 1
                if idle_rounds >= 2:
                    break
        return did_any

    def _background_once(self, worker):
        """One unguarded background round (the seed shape: every sub-poll
        delegated unconditionally).  :meth:`background_work` inlines this
        body; the frozen reference loop (repro.bench.seedpaths) still
        drives it round-by-round."""
        yield worker.cpu(self.cost.background_call_us)
        did = False
        if self._header_guard.try_acquire():
            try:
                did = (yield from self._check_header(worker)) or did
                if self.original:
                    did = (yield from self._check_release(worker)) or did
                if self.reliability is not None:
                    did = (yield from self._check_ack(worker)) or did
            finally:
                self._header_guard.release()
        else:
            yield from self.mpi.progress_only(worker)
        did = (yield from self._scan_pending(worker)) or did
        if self.reliability is not None:
            did = (yield from self._reliability_poll(worker)) or did
        if self.flow is not None:
            did = (yield from self._flow_pump(worker)) or did
        return did

    def _check_header(self, worker):
        req = self._header_req
        if req is None:
            return False
        done = yield from self.mpi.test(worker, req)
        if not done:
            return False
        value = req.value
        err = req.error
        # Repost before decoding so back-to-back headers keep flowing.
        self._header_req = yield from self.mpi.irecv(
            worker, ANY_SOURCE, self.max_header, HEADER_TAG)
        if err is not None:
            # Corrupted header: drop it, sender retransmits.
            self.stats.inc("header_recv_errors")
            return True
        yield from self._handle_header(worker, value)
        self.stats.inc("headers_received")
        return True

    def _check_release(self, worker):
        req = self._release_req
        if req is None:
            return False
        done = yield from self.mpi.test(worker, req)
        if not done:
            return False
        value = req.value
        err = req.error
        self._release_req = yield from self.mpi.irecv(
            worker, ANY_SOURCE, 16, RELEASE_TAG)
        if err is not None:
            self.stats.inc("release_recv_errors")
            return True
        _kind, tag = value
        yield from self.tag_provider.release(worker, tag)
        self.stats.inc("tag_releases_received")
        return True

    def _check_ack(self, worker):
        req = self._ack_req
        if req is None:
            return False
        done = yield from self.mpi.test(worker, req)
        if not done:
            return False
        value = req.value
        err = req.error
        self._ack_req = yield from self.mpi.irecv(
            worker, ANY_SOURCE, self.reliability.policy.ack_bytes, ACK_TAG)
        if err is not None:
            # Corrupted ack: the sender re-acks on the retransmit.
            self.stats.inc("ack_recv_errors")
            return True
        _kind, seq = value
        self.reliability.on_ack(seq)
        return True

    def _scan_pending(self, worker):
        if not self.pending:
            return False
        t0 = self.sim.now
        yield self.pending_lock.acquire()    # inlined worker.lock()
        worker.lock_acquired(self.pending_lock, t0)
        batch = []
        for _ in range(min(self.scan_limit, len(self.pending))):
            batch.append(self.pending.popleft())
        self.pending_lock.release()
        did = False
        keep = []
        for conn in batch:
            if conn.aborted:
                # Chain withdrawn by the reliability layer: drop it from
                # the pending list (its op was cancelled).
                did = True
                if conn.cur is not None:
                    self.mpi.cancel(conn.cur)
                    conn.cur = None
                self.stats.inc("aborted_completions")
                continue
            req = conn.cur
            done = yield from self.mpi.test(worker, req)
            if conn.aborted:
                # Withdrawn while we were inside MPI_Test (the reliability
                # poll on another thread): drop it, like the branch above.
                did = True
                if conn.cur is not None:
                    self.mpi.cancel(conn.cur)
                    conn.cur = None
                self.stats.inc("aborted_completions")
                continue
            if done:
                did = True
                conn.cur = None
                if req.error is not None:
                    yield from self._handle_op_error(worker, conn)
                elif conn.role == "send":
                    yield from self._advance_sender(worker, conn)
                else:
                    yield from self._advance_receiver(worker, conn)
            else:
                keep.append(conn)
        if keep:
            t0 = self.sim.now
            yield self.pending_lock.acquire()
            worker.lock_acquired(self.pending_lock, t0)
            self.pending.extend(keep)
            self.pending_lock.release()
        return did

    def _enqueue_pending(self, worker, conn: Connection):
        yield from worker.lock(self.pending_lock)
        self.pending.append(conn)
        self.pending_lock.release()
