"""Header-message planning with piggybacking.

Every HPX message starts with a protocol **header message** carrying
metadata (follow-up tag, chunk sizes/existence).  Small chunks piggyback on
it (§3.1): the improved parcelports can piggyback both the non-zero-copy
chunk *and* the transmission chunk up to ``max_header`` (== the zero-copy
serialization threshold); the original MPI variant had a static 512-byte
header and could piggyback only the non-zero-copy chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..hpx_rt.parcel import HpxMessage

__all__ = ["HeaderPlan", "plan_header", "HEADER_BASE_BYTES",
           "ORIGINAL_MAX_HEADER"]

#: bare metadata bytes in every header message
HEADER_BASE_BYTES = 40
#: static header size of the original MPI parcelport (§3.1)
ORIGINAL_MAX_HEADER = 512


@dataclass
class HeaderPlan:
    """What goes in the header message and what needs follow-up messages."""

    header_size: int
    piggy_non_zc: bool
    piggy_trans: bool
    #: ordered (kind, size) chunks that still need their own message
    followups: List[Tuple[str, int]]

    @property
    def piggybacked_bytes(self) -> int:
        return self.header_size - HEADER_BASE_BYTES

    @property
    def n_followups(self) -> int:
        return len(self.followups)


def plan_header(msg: HpxMessage, max_header: int,
                piggyback_trans: bool = True) -> HeaderPlan:
    """Decide piggybacking for ``msg`` given a header-size budget."""
    if max_header < HEADER_BASE_BYTES:
        raise ValueError(f"max_header {max_header} below metadata size")
    chunks = msg.chunk_plan()
    size = HEADER_BASE_BYTES
    piggy_non_zc = False
    piggy_trans = False
    followups: List[Tuple[str, int]] = []
    for kind, csize in chunks:
        if kind == "non_zc" and size + csize <= max_header:
            size += csize
            piggy_non_zc = True
        elif (kind == "trans" and piggyback_trans
              and size + csize <= max_header):
            size += csize
            piggy_trans = True
        else:
            followups.append((kind, csize))
    return HeaderPlan(header_size=size, piggy_non_zc=piggy_non_zc,
                      piggy_trans=piggy_trans, followups=followups)
