"""Parcelport abstract base and connection objects.

A **connection** (§3.1) manages the chain of sends or receives belonging to
one HPX message: at most one operation is outstanding per connection at any
time; the next is posted only when the previous completes.  Sender
connections are created by the upper layer (and cached unless
send-immediate); receiver connections are created when a header message
arrives.
"""

from __future__ import annotations

import abc
import itertools
from collections import deque
from typing import (Any, Callable, Deque, Dict, List, Optional, Tuple,
                    TYPE_CHECKING)

from ..faults import ParcelSendError
from ..flow import SEND_OK, SEND_QUEUED, SEND_WOULD_BLOCK, FlowControlPolicy
from ..hpx_rt.parcel import HpxMessage
from ..hpx_rt.scheduler import Worker
from ..sim.stats import StatSet
from .reliability import ReliabilityLayer

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.runtime import Locality

__all__ = ["Connection", "Parcelport", "DetachedWorker"]

_conn_ids = itertools.count()


class Connection:
    """Per-HPX-message chain state (sender or receiver role)."""

    __slots__ = ("dest", "role", "msg", "plan", "stage", "tag_raw", "tag",
                 "on_complete", "cur", "cid", "piggy_bytes", "src",
                 "seq", "aborted", "last_active")

    def __init__(self, dest: int, role: str = "send"):
        self.dest = dest
        self.role = role                   # "send" | "recv"
        self.cid = next(_conn_ids)
        self.reset()

    def reset(self) -> None:
        """Prepare for (re)use by a new HPX message."""
        self.msg: Optional[HpxMessage] = None
        self.plan: List[Tuple[str, int]] = []
        self.stage = 0
        self.tag_raw = 0
        self.tag = 0
        self.on_complete: Optional[Callable] = None
        self.cur: Any = None               # in-flight request / completion
        self.piggy_bytes = 0
        self.src = -1
        self.seq: Optional[int] = None     # end-to-end sequence number
        self.aborted = False               # chain withdrawn by reliability
        self.last_active = 0.0             # receiver-chain activity stamp

    @property
    def finished_chunks(self) -> bool:
        return self.stage >= len(self.plan)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Conn#{self.cid} {self.role}->{self.dest} "
                f"stage={self.stage}/{len(self.plan)}>")


class DetachedWorker(Worker):
    """A worker context not owned by the scheduler.

    Used for boot-time posting and dedicated progress threads: it provides
    the ``cpu``/``lock`` cost-charging interface without participating in
    task scheduling.
    """

    def __init__(self, locality: "Locality", name: str = "detached"):
        super().__init__(locality, core_id=-1)
        self.name = f"L{locality.lid}/{name}"

    def start(self) -> None:  # pragma: no cover - misuse guard
        raise RuntimeError("detached workers are not scheduled")


class Parcelport(abc.ABC):
    """Interface the HPX runtime expects from a parcelport (§2.2)."""

    #: True if this parcelport pins a progress thread to core 0 (the HPX
    #: resource partitioner's ``rp`` mode) — the runtime then starts one
    #: fewer worker thread.
    reserves_progress_core: bool = False

    #: True if this parcelport implements the ack/retransmit protocol
    #: (``_send_ack`` and the abort hooks) — required to run under an
    #: active fault plan.
    supports_reliability: bool = False

    def __init__(self, locality: "Locality"):
        self.locality = locality
        self.sim = locality.sim
        self.cost = locality.cost
        self.nic = locality.nic
        self.stats = StatSet(f"L{locality.lid}.pp")
        # One background call stands in for `thread_weight` physical
        # threads' worth of polling (see PlatformSpec docs).
        self.poll_rounds = max(1, round(locality.platform.thread_weight))
        # End-to-end reliability: only instantiated when the runtime asks
        # for it (active fault injector or explicit reliable=True) — a
        # None layer keeps every hot path byte-identical to the seed.
        self.reliability: Optional[ReliabilityLayer] = None
        runtime = locality.runtime
        if self.supports_reliability and getattr(runtime, "reliable", False):
            self.reliability = ReliabilityLayer(
                self.sim, runtime.retry_policy,
                runtime.rng.stream(f"retry{locality.lid}"),
                stats=self.stats)
        # End-to-end flow control: same contract as reliability — a None
        # policy keeps every hot path byte-identical to the seed.
        self.flow: Optional[FlowControlPolicy] = getattr(
            runtime, "flow_policy", None)
        #: per-destination backlog of (conn, msg, on_complete) waiting for
        #: credit; drained by :meth:`_flow_pump` from background work
        self._backlog: Dict[int, Deque[Tuple[Connection, HpxMessage,
                                             Optional[Callable]]]] = {}
        self._backlog_total = 0
        self.backlog_peak = 0
        #: (dest, callback) pairs fired when the dest backlog has room
        self._accept_waiters: List[Tuple[int, Callable[[], None]]] = []
        if (self.flow is not None and self.reliability is not None
                and self.flow.credit_window):
            self.reliability.set_credit_window(self.flow.credit_window)
        #: span recorder (None => tracing off, zero overhead)
        self.obs = getattr(runtime, "obs", None)
        #: adaptive state (repro.adapt); None => static policies, zero
        #: overhead.  Set by the AdaptiveController at boot.
        self.adapt = None
        #: open backlog-wait spans, keyed by message mid
        self._obs_backlog: Dict[int, Any] = {}
        if self.reliability is not None:
            self.reliability.obs = self.obs
            self.reliability.loc = locality.lid

    # -- upper-layer interface ------------------------------------------------
    def make_connection(self, dest: int) -> Connection:
        """A fresh (or recycled by the caller) sender connection."""
        return Connection(dest, role="send")

    @abc.abstractmethod
    def send_message(self, worker: Worker, conn: Connection,
                     msg: HpxMessage, on_complete):
        """Generator: start transferring ``msg`` over ``conn``.

        Returns once the chain is *initiated*; completion is driven by
        background work, which finally runs the ``on_complete(worker,
        conn)`` generator.
        """

    @abc.abstractmethod
    def background_work(self, worker: Worker, rounds: Optional[int] = None):
        """Generator → bool: a slice of parcelport progress.

        ``rounds`` overrides the weight-scaled default poll-round count
        (the scheduler passes ``rounds=1`` for its between-task slices).
        """

    # -- flow control (active only with a FlowControlPolicy) -----------------
    def submit_message(self, worker: Worker, conn: Connection,
                       msg: HpxMessage, on_complete):
        """Generator → status: the flow-controlled front of ``send_message``.

        Without a policy this is exactly ``send_message`` (``SEND_OK``).
        With one: the send starts immediately when nothing is backlogged
        ahead of it and a credit is available; otherwise it parks in the
        bounded per-destination backlog (``SEND_QUEUED``, drained by
        background work as acks return credits) — and when the backlog is
        full the caller gets ``SEND_WOULD_BLOCK`` and must defer or shed.
        Credit accounting is synchronous (no yield between the check and
        the decrement), so the window can never be overshot.
        """
        fl = self.flow
        if fl is None:
            yield from self.send_message(worker, conn, msg, on_complete)
            return SEND_OK
        rel = self.reliability
        dest = msg.dest
        q = self._backlog.get(dest)
        credits_on = rel is not None and rel.credit_window > 0
        if not q and (not credits_on or rel.consume_credit(dest)):
            if credits_on:
                msg.credited = True
            yield from self.send_message(worker, conn, msg, on_complete)
            return SEND_OK
        if q is None:
            q = self._backlog[dest] = deque()
        if fl.max_backlog and len(q) >= fl.max_backlog:
            self.stats.inc("backlog_refusals")
            return SEND_WOULD_BLOCK
        if self.obs is not None:
            sp = self.obs.begin("flow", "backlog_wait",
                                loc=self.locality.lid, tid=worker.name,
                                mid=msg.mid, dest=dest)
            if sp is not None:
                self._obs_backlog[msg.mid] = sp
        q.append((conn, msg, on_complete))
        self._backlog_total += 1
        if self._backlog_total > self.backlog_peak:
            self.backlog_peak = self._backlog_total
        self.stats.inc("backlogged_sends")
        return SEND_QUEUED

    def can_accept(self, dest: int) -> bool:
        """True if a submit for ``dest`` would not return WOULD_BLOCK."""
        fl = self.flow
        if fl is None or not fl.max_backlog:
            return True
        q = self._backlog.get(dest)
        return q is None or len(q) < fl.max_backlog

    def notify_when_accepting(self, dest: int,
                              callback: Callable[[], None]) -> None:
        """Register a one-shot callback fired (from background work) once
        the ``dest`` backlog has room again."""
        self._accept_waiters.append((dest, callback))

    def backlog_depths(self) -> Dict[int, int]:
        """Current backlog occupancy per destination (gauges)."""
        return {d: len(q) for d, q in self._backlog.items() if q}

    def _flow_pump(self, worker: Worker):
        """Generator → bool: drain backlogged sends as credits return and
        fire accept-waiters once room frees up.

        Pure bookkeeping when idle (no simulated cost) so a flow-enabled
        but unloaded run stays byte-identical to one without the policy.
        """
        did = False
        rel = self.reliability
        if self._backlog_total:
            credits_on = rel is not None and rel.credit_window > 0
            for dest in list(self._backlog.keys()):
                q = self._backlog.get(dest)
                while q:
                    # Peek first: a consume on an empty window would count
                    # a credit stall per background poll, drowning the
                    # one-per-submit signal the counters report.
                    if credits_on and not rel.has_credit(dest):
                        break
                    conn, msg, cb = q.popleft()
                    self._backlog_total -= 1
                    if self.obs is not None:
                        self.obs.end(self._obs_backlog.pop(msg.mid, None))
                    if credits_on:
                        rel.consume_credit(dest)
                        msg.credited = True
                    did = True
                    self.stats.inc("backlog_drains")
                    yield from self.send_message(worker, conn, msg, cb)
        if self._accept_waiters:
            keep: List[Tuple[int, Callable[[], None]]] = []
            fired: List[Callable[[], None]] = []
            for dest, cb in self._accept_waiters:
                if self.can_accept(dest):
                    fired.append(cb)
                else:
                    keep.append((dest, cb))
            self._accept_waiters = keep
            for cb in fired:
                did = True
                cb()
        return did

    def start(self) -> None:
        """Boot-time hook: post persistent receives, spawn progress thread."""

    # -- shared helpers ------------------------------------------------------
    def _finish(self, worker: Worker, conn: Connection):
        """Run the completion continuation of a finished sender chain."""
        self.stats.inc("sends_completed")
        if self.obs is not None and conn.msg is not None:
            self.obs.instant("msg", "send_done", loc=self.locality.lid,
                             tid=worker.name, mid=conn.msg.mid)
        if self.reliability is not None:
            # The conn may be recycled now; stop aborting it on retransmit.
            self.reliability.note_local_done(conn)
        cb = conn.on_complete
        conn.on_complete = None
        if cb is not None:
            result = cb(worker, conn)
            if result is not None:  # generator continuation
                yield from result

    def _deliver(self, msg: HpxMessage) -> None:
        """Hand a fully received HPX message to the runtime."""
        self.stats.inc("messages_delivered")
        if self.obs is not None:
            self.obs.instant("msg", "delivered", loc=self.locality.lid,
                             mid=msg.mid, src=msg.src,
                             parcels=msg.num_parcels)
        self.locality.on_message(msg)

    # -- reliability machinery (active only under fault injection) -----------
    def _complete_receive(self, worker: Worker, msg: HpxMessage,
                          seq: Optional[int]):
        """Generator: deliver a fully-assembled message, reliably.

        With reliability off (or a pre-reliability peer, ``seq is None``)
        this is exactly :meth:`_deliver`.  Otherwise: suppress duplicate
        deliveries of retransmitted messages by (src, seq), and always
        ack — re-acking a duplicate is what unsticks a sender whose
        previous ack was lost.
        """
        rel = self.reliability
        if rel is None or seq is None:
            self._deliver(msg)
            return
        if rel.is_dup(msg.src, seq):
            self.stats.inc("dup_deliveries")
            if self.obs is not None:
                self.obs.instant("msg", "dup_delivery",
                                 loc=self.locality.lid, mid=msg.mid,
                                 seq=seq)
        else:
            rel.record_delivery(msg.src, seq)
            self._deliver(msg)
        if self.obs is not None:
            self.obs.instant("msg", "ack_sent", loc=self.locality.lid,
                             tid=worker.name, mid=msg.mid, seq=seq,
                             dest=msg.src)
        yield from self._send_ack(worker, msg.src, seq)

    def _send_ack(self, worker: Worker, dst: int, seq: int):
        """Generator: transport-specific end-to-end ack send."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement reliability")

    def _abort_send_conn(self, worker: Worker, conn: Connection):
        """Withdraw an in-flight sender chain before retransmitting.

        Returns None or a generator (subclasses add transport-specific
        cleanup).  An aborted connection that came from the connection
        cache is handed back so the cache doesn't bleed capacity — the
        user callback never runs (the message is retransmitted or
        reported failed through the reliability path instead).
        """
        conn.aborted = True
        self.stats.inc("send_chains_aborted")
        had_cb = conn.on_complete is not None
        conn.on_complete = None
        pl = self.locality.parcel_layer
        if had_cb and pl is not None:
            pl.release_connection(conn)
        return None

    def _abort_recv_conn(self, worker: Worker, conn: Connection):
        """Reap an abandoned receiver chain.

        Returns None or a generator (subclasses add transport-specific
        cleanup: cancelling posted receives, releasing tags).
        """
        conn.aborted = True
        return None

    def _fail_send(self, worker: Worker, entry):
        """Generator: retries exhausted — report the message as failed."""
        self.stats.inc("sends_failed")
        if self.obs is not None:
            self.obs.instant("msg", "failed", loc=self.locality.lid,
                             tid=worker.name, mid=entry.msg.mid,
                             seq=entry.seq, attempts=entry.attempts)
        if entry.conn is not None:
            res = self._abort_send_conn(worker, entry.conn)
            if res is not None:
                yield from res
            entry.conn = None
        pl = self.locality.parcel_layer
        if pl is not None:
            pl.report_send_failure(entry.msg, ParcelSendError(
                f"message seq={entry.seq} to locality {entry.msg.dest} "
                f"failed after {entry.attempts} retransmissions"))

    def _reliability_poll(self, worker: Worker):
        """Generator → bool: one slice of retransmit/reap work.

        Called from background work only when :attr:`reliability` is set.
        """
        rel = self.reliability
        now = self.sim.now
        did = False
        yield worker.cpu(rel.policy.poll_cost_us)
        for entry in rel.take_expired(now):
            did = True
            if entry.attempts >= rel.policy.max_retries:
                rel.drop(entry)
                yield from self._fail_send(worker, entry)
                continue
            entry.attempts += 1
            self.stats.inc("retransmits")
            if self.obs is not None:
                self.obs.instant("msg", "retransmit", loc=self.locality.lid,
                                 tid=worker.name, mid=entry.msg.mid,
                                 seq=entry.seq, attempt=entry.attempts)
            if entry.conn is not None:
                res = self._abort_send_conn(worker, entry.conn)
                if res is not None:
                    yield from res
                entry.conn = None
            rel.reschedule(entry)
            yield worker.cpu(rel.policy.retransmit_cpu_us)
            conn = self.make_connection(entry.msg.dest)
            yield from self.send_message(worker, conn, entry.msg, None)
        for conn in rel.take_expired_recvs(now):
            did = True
            self.stats.inc("recv_chains_expired")
            res = self._abort_recv_conn(worker, conn)
            if res is not None:
                yield from res
        return did
