"""Parcelport abstract base and connection objects.

A **connection** (§3.1) manages the chain of sends or receives belonging to
one HPX message: at most one operation is outstanding per connection at any
time; the next is posted only when the previous completes.  Sender
connections are created by the upper layer (and cached unless
send-immediate); receiver connections are created when a header message
arrives.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Callable, List, Optional, Tuple, TYPE_CHECKING

from ..hpx_rt.parcel import HpxMessage
from ..hpx_rt.scheduler import Worker
from ..sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.runtime import Locality

__all__ = ["Connection", "Parcelport", "DetachedWorker"]

_conn_ids = itertools.count()


class Connection:
    """Per-HPX-message chain state (sender or receiver role)."""

    __slots__ = ("dest", "role", "msg", "plan", "stage", "tag_raw", "tag",
                 "on_complete", "cur", "cid", "piggy_bytes", "src")

    def __init__(self, dest: int, role: str = "send"):
        self.dest = dest
        self.role = role                   # "send" | "recv"
        self.cid = next(_conn_ids)
        self.reset()

    def reset(self) -> None:
        """Prepare for (re)use by a new HPX message."""
        self.msg: Optional[HpxMessage] = None
        self.plan: List[Tuple[str, int]] = []
        self.stage = 0
        self.tag_raw = 0
        self.tag = 0
        self.on_complete: Optional[Callable] = None
        self.cur: Any = None               # in-flight request / completion
        self.piggy_bytes = 0
        self.src = -1

    @property
    def finished_chunks(self) -> bool:
        return self.stage >= len(self.plan)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Conn#{self.cid} {self.role}->{self.dest} "
                f"stage={self.stage}/{len(self.plan)}>")


class DetachedWorker(Worker):
    """A worker context not owned by the scheduler.

    Used for boot-time posting and dedicated progress threads: it provides
    the ``cpu``/``lock`` cost-charging interface without participating in
    task scheduling.
    """

    def __init__(self, locality: "Locality", name: str = "detached"):
        super().__init__(locality, core_id=-1)
        self.name = f"L{locality.lid}/{name}"

    def start(self) -> None:  # pragma: no cover - misuse guard
        raise RuntimeError("detached workers are not scheduled")


class Parcelport(abc.ABC):
    """Interface the HPX runtime expects from a parcelport (§2.2)."""

    #: True if this parcelport pins a progress thread to core 0 (the HPX
    #: resource partitioner's ``rp`` mode) — the runtime then starts one
    #: fewer worker thread.
    reserves_progress_core: bool = False

    def __init__(self, locality: "Locality"):
        self.locality = locality
        self.sim = locality.sim
        self.cost = locality.cost
        self.nic = locality.nic
        self.stats = StatSet(f"L{locality.lid}.pp")
        # One background call stands in for `thread_weight` physical
        # threads' worth of polling (see PlatformSpec docs).
        self.poll_rounds = max(1, round(locality.platform.thread_weight))

    # -- upper-layer interface ------------------------------------------------
    def make_connection(self, dest: int) -> Connection:
        """A fresh (or recycled by the caller) sender connection."""
        return Connection(dest, role="send")

    @abc.abstractmethod
    def send_message(self, worker: Worker, conn: Connection,
                     msg: HpxMessage, on_complete):
        """Generator: start transferring ``msg`` over ``conn``.

        Returns once the chain is *initiated*; completion is driven by
        background work, which finally runs the ``on_complete(worker,
        conn)`` generator.
        """

    @abc.abstractmethod
    def background_work(self, worker: Worker, rounds: Optional[int] = None):
        """Generator → bool: a slice of parcelport progress.

        ``rounds`` overrides the weight-scaled default poll-round count
        (the scheduler passes ``rounds=1`` for its between-task slices).
        """

    def start(self) -> None:
        """Boot-time hook: post persistent receives, spawn progress thread."""

    # -- shared helpers ------------------------------------------------------
    def _finish(self, worker: Worker, conn: Connection):
        """Run the completion continuation of a finished sender chain."""
        self.stats.inc("sends_completed")
        cb = conn.on_complete
        conn.on_complete = None
        if cb is not None:
            result = cb(worker, conn)
            if result is not None:  # generator continuation
                yield from result

    def _deliver(self, msg: HpxMessage) -> None:
        """Hand a fully received HPX message to the runtime."""
        self.stats.inc("messages_delivered")
        self.locality.on_message(msg)
