"""End-to-end reliability for parcelports under fault injection.

The paper's parcelports assume a lossless fabric: sender-side completion
is *local* (the NIC accepted the bytes) and nothing acknowledges that the
destination actually assembled the HPX message.  Under a
:class:`~repro.faults.FaultPlan` that assumption breaks, so both
``lci_pp`` and ``mpi_pp`` layer this small end-to-end protocol on top:

* every outgoing HPX message carries a per-locality **sequence number**
  in its header;
* the receiver acks each fully-assembled message (tag :data:`ACK_TAG`)
  and **dedups** replays by (source, seq) — re-acking duplicates so a
  lost ack cannot wedge the sender;
* the sender keeps an in-flight table keyed by seq with per-message
  deadlines (a lazy-deletion heap, O(log n) per event); an expired entry
  aborts its old connection chain and retransmits the whole message with
  the *same* seq over a fresh connection, backing off exponentially with
  deterministic jitter;
* after :attr:`~repro.faults.RetryPolicy.max_retries` retransmissions
  the message is reported to the parcel layer as failed — the action's
  future fails instead of the benchmark hanging;
* receiver-side chains whose sender gave up are reaped after an idle
  expiry, cancelling their posted receives (otherwise every abandoned
  chain leaks matching-table entries and completion objects).

The layer is only instantiated when the runtime has an active fault
injector (or is explicitly built with ``reliable=True``); fault-free
runs never see it and stay byte-identical to the unreliable build.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..faults import ACK_TAG, RetryPolicy
from ..sim.stats import StatSet

if TYPE_CHECKING:  # pragma: no cover
    from ..hpx_rt.parcel import HpxMessage
    from ..sim.core import Simulator
    from .base import Connection

# ACK_TAG (= 2, below FIRST_DYNAMIC_TAG so it can never collide with a
# connection tag) is defined in repro.faults so the injector's
# credit-starvation mode can recognize acks; re-exported here because the
# parcelports treat this module as the protocol's home.
__all__ = ["ReliabilityLayer", "InFlight", "ACK_TAG"]


class InFlight:
    """Sender-side state of one unacknowledged HPX message."""

    __slots__ = ("seq", "msg", "conn", "attempts", "deadline", "credited")

    def __init__(self, seq: int, msg: "HpxMessage", conn: "Connection",
                 deadline: float):
        self.seq = seq
        self.msg = msg
        self.conn: Optional["Connection"] = conn
        self.attempts = 0          #: retransmissions performed so far
        self.deadline = deadline
        self.credited = False      #: holds one flow-control credit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<InFlight seq={self.seq} attempts={self.attempts} "
                f"deadline={self.deadline:.1f}>")


class ReliabilityLayer:
    """Per-parcelport retransmission/dedup state machine."""

    def __init__(self, sim: "Simulator", policy: RetryPolicy, rng,
                 stats: Optional[StatSet] = None, name: str = "rel"):
        self.sim = sim
        self.policy = policy
        self.rng = rng
        self.stats = stats if stats is not None else StatSet(name)
        self._seq = itertools.count()
        # sender side
        self._table: Dict[int, InFlight] = {}
        self._heap: List[Tuple[float, int]] = []
        # per-peer credit windows (flow control; 0 = disabled)
        self.credit_window = 0
        self._credits: Dict[int, int] = {}
        # receiver side
        self._seen: Set[Tuple[int, int]] = set()
        self._watched: Dict[int, "Connection"] = {}
        self._recv_heap: List[Tuple[float, int]] = []
        # span recorder + owning locality (wired by the parcelport)
        self.obs: Optional[Any] = None
        self.loc = -1

    # ------------------------------------------------------------------
    # credit-based flow control (piggybacked on the ack protocol)
    # ------------------------------------------------------------------
    def set_credit_window(self, window: int) -> None:
        """Enable per-peer credit windows of ``window`` messages (0 =
        unlimited).  A credit is consumed per fresh tracked send and
        replenished exactly once, when the message stops being tracked
        (end-to-end ack or terminal failure) — retransmissions reuse
        their original credit."""
        if window < 0:
            raise ValueError("credit window must be >= 0")
        self.credit_window = window

    def has_credit(self, peer: int) -> bool:
        """Non-consuming peek (used by the backlog pump to avoid
        inflating the stall counter on every poll)."""
        if not self.credit_window:
            return True
        return self._credits.get(peer, self.credit_window) > 0

    def consume_credit(self, peer: int) -> bool:
        """Take one credit for ``peer``; False (and a ``credit_stalls``
        count) if the window is exhausted."""
        if not self.credit_window:
            return True
        left = self._credits.get(peer, self.credit_window)
        if left <= 0:
            self.stats.inc("credit_stalls")
            return False
        self._credits[peer] = left - 1
        self.stats.inc("credits_consumed")
        return True

    def _release_credit(self, peer: int) -> None:
        if not self.credit_window:
            return
        left = self._credits.get(peer, self.credit_window)
        if left >= self.credit_window:
            raise RuntimeError(
                f"credit release beyond window for peer {peer}")
        self._credits[peer] = left + 1
        self.stats.inc("credits_replenished")

    def credits_left(self, peer: int) -> int:
        return self._credits.get(peer, self.credit_window)

    def credit_gauges(self) -> Dict[int, int]:
        """Current credits per peer (only peers ever throttled appear)."""
        return dict(self._credits)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def next_deadline(self, attempts: int) -> float:
        """Absolute deadline for (re)transmission number ``attempts``."""
        p = self.policy
        base = p.timeout_us * (p.backoff ** attempts)
        jit = 1.0 + p.jitter * float(self.rng.random()) if p.jitter else 1.0
        return self.sim.now + base * jit

    def track(self, msg: "HpxMessage", conn: "Connection") -> InFlight:
        """Register (or re-attach, on retransmit) an outgoing message.

        A fresh message gets the next sequence number and an in-flight
        entry; a retransmitted one (``msg.seq`` already set) just points
        its existing entry at the new connection.
        """
        seq = msg.seq
        if seq is None:
            msg.seq = seq = next(self._seq)
        entry = self._table.get(seq)
        if entry is None:
            entry = InFlight(seq, msg, conn, self.next_deadline(0))
            # The submit path consumed this message's credit (if any);
            # the entry carries it until ack or terminal failure.
            entry.credited = getattr(msg, "credited", False)
            self._table[seq] = entry
            heapq.heappush(self._heap, (entry.deadline, seq))
            self.stats.inc("tracked_sends")
        else:
            entry.conn = conn
        return entry

    def note_local_done(self, conn: "Connection") -> None:
        """The local chain on ``conn`` finished; stop aborting it on
        retransmit (the connection may be recycled and reused)."""
        msg = conn.msg
        if msg is None or msg.seq is None:
            return
        entry = self._table.get(msg.seq)
        if entry is not None and entry.conn is conn:
            entry.conn = None

    def on_ack(self, seq: int) -> None:
        """End-to-end ack arrived: the message is delivered, stop tracking."""
        entry = self._table.pop(seq, None)
        if entry is not None:
            self.stats.inc("acks_received")
            if self.obs is not None:
                self.obs.instant("msg", "acked", loc=self.loc,
                                 mid=entry.msg.mid, seq=seq)
            if entry.credited:
                entry.credited = False
                self._release_credit(entry.msg.dest)
        else:
            self.stats.inc("acks_stale")

    def expedite(self, seq: Optional[int]) -> None:
        """Pull a tracked message's deadline to *now* (its chain failed
        outright, e.g. a corrupted-op error — no point waiting)."""
        if seq is None:
            return
        entry = self._table.get(seq)
        if entry is not None and entry.deadline > self.sim.now:
            entry.deadline = self.sim.now
            heapq.heappush(self._heap, (entry.deadline, seq))

    def take_expired(self, now: float,
                     limit: Optional[int] = None) -> List[InFlight]:
        """Pop up to ``limit`` entries whose deadline has passed (default:
        the policy's ``drain_limit``).

        Caller must either :meth:`reschedule` or :meth:`drop` each one
        (stale heap keys from acked/refreshed entries are skipped lazily).
        """
        if limit is None:
            limit = self.policy.drain_limit
        out: List[InFlight] = []
        while self._heap and len(out) < limit:
            deadline, seq = self._heap[0]
            if deadline > now:
                break
            heapq.heappop(self._heap)
            entry = self._table.get(seq)
            if entry is None:
                continue                      # acked; stale key
            if entry.deadline > now:
                continue                      # refreshed; live key re-pushed
            out.append(entry)
        return out

    def reschedule(self, entry: InFlight) -> None:
        """Arm the next deadline after a retransmission."""
        entry.deadline = self.next_deadline(entry.attempts)
        heapq.heappush(self._heap, (entry.deadline, entry.seq))

    def drop(self, entry: InFlight) -> None:
        """Stop tracking a failed message (retries exhausted)."""
        if self._table.pop(entry.seq, None) is not None and entry.credited:
            entry.credited = False
            self._release_credit(entry.msg.dest)

    @property
    def in_flight(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def is_dup(self, src: int, seq: int) -> bool:
        return (src, seq) in self._seen

    def record_delivery(self, src: int, seq: int) -> None:
        self._seen.add((src, seq))

    def watch_recv(self, conn: "Connection") -> None:
        """Track a receiver chain so it can be reaped if the sender quits."""
        conn.last_active = self.sim.now
        self._watched[conn.cid] = conn
        heapq.heappush(self._recv_heap,
                       (conn.last_active + self.policy.recv_expiry_us,
                        conn.cid))

    def touch_recv(self, conn: "Connection") -> None:
        conn.last_active = self.sim.now

    def unwatch_recv(self, conn: "Connection") -> None:
        self._watched.pop(conn.cid, None)

    def take_expired_recvs(self, now: float, limit: Optional[int] = None
                           ) -> List["Connection"]:
        """Receiver chains idle past the expiry window (to be aborted);
        ``limit`` defaults to the policy's ``drain_limit``."""
        if limit is None:
            limit = self.policy.drain_limit
        out: List["Connection"] = []
        while self._recv_heap and len(out) < limit:
            deadline, cid = self._recv_heap[0]
            if deadline > now:
                break
            heapq.heappop(self._recv_heap)
            conn = self._watched.get(cid)
            if conn is None:
                continue                      # finished; stale key
            fresh = conn.last_active + self.policy.recv_expiry_us
            if fresh > now:
                heapq.heappush(self._recv_heap, (fresh, cid))
                continue                      # still active; re-arm
            del self._watched[cid]
            out.append(conn)
        return out

    @property
    def watched_recvs(self) -> int:
        return len(self._watched)
