"""Focused tests for the parcel-queue / connection-cache layer (§3.2.2)."""

import pytest

from repro import LAPTOP, make_runtime
from repro.hpx_rt import CostModel


def make_rt(config, **kw):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2, **kw)
    state = {"count": 0}
    done = rt.new_future()

    def sink(worker, i, total):
        state["count"] += 1
        if state["count"] == total:
            done.set_result(rt.now)
        return None

    rt.register_action("sink", sink)
    return rt, done


def send_burst(rt, n, producers=1, size=8):
    def burst(worker):
        for i in range(n // producers):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, n),
                                            arg_sizes=[8, size])
    for _ in range(producers):
        rt.locality(0).spawn(burst)


def test_connection_cache_is_bounded():
    rt, done = make_rt("lci_psr_cq_pin")
    rt.boot()
    send_burst(rt, 60, producers=4)
    rt.run_until(done, max_events=3_000_000)
    layer = rt.localities[0].parcel_layer
    created = layer.stats.counters.get("cache_misses", 0)
    assert created <= rt.cost.max_connections_per_dest
    # connections were recycled through the cache
    assert layer.stats.counters.get("cache_hits", 0) > 0


def test_pump_defers_when_connections_exhausted():
    rt, done = make_rt("lci_psr_cq_pin")
    rt.boot()
    send_burst(rt, 120, producers=4)
    rt.run_until(done, max_events=5_000_000)
    layer = rt.localities[0].parcel_layer
    # under a 4-producer burst, some pumps found all connections busy —
    # that wait is exactly where aggregation opportunity comes from
    assert layer.stats.counters.get("pump_deferred", 0) > 0
    assert layer.stats.counters.get("aggregated_messages", 0) > 0


def test_queue_drains_completely():
    rt, done = make_rt("mpi")
    rt.boot()
    send_burst(rt, 50, producers=2)
    rt.run_until(done, max_events=5_000_000)
    layer = rt.localities[0].parcel_layer
    assert layer.queued_parcels() == 0
    assert layer.stats.counters["parcels_sent"] == 50


def test_immediate_layer_has_no_queue_state():
    rt, done = make_rt("lci_psr_cq_pin_i")
    rt.boot()
    send_burst(rt, 30, producers=2)
    rt.run_until(done, max_events=3_000_000)
    layer = rt.localities[0].parcel_layer
    assert layer.immediate
    assert layer.queued_parcels() == 0
    assert layer.stats.counters.get("cache_hits", 0) == 0
    assert layer.stats.counters.get("immediate_completions", 0) == 30


def test_aggregation_ratio_grows_with_contention():
    def ratio(producers):
        rt, done = make_rt("lci_psr_cq_pin")
        rt.boot()
        send_burst(rt, 120, producers=producers)
        rt.run_until(done, max_events=5_000_000)
        return rt.localities[0].parcel_layer.aggregation_ratio()

    assert ratio(6) > ratio(1) * 0.99  # more producers, >= aggregation


def test_zero_copy_parcels_flow_through_queue_mode():
    rt, done = make_rt("lci_psr_cq_pin")
    rt.boot()
    send_burst(rt, 12, producers=3, size=20000)
    rt.run_until(done, max_events=5_000_000)
    layer = rt.localities[0].parcel_layer
    assert layer.stats.counters["parcels_sent"] == 12


def test_queue_lock_contention_is_recorded():
    rt, done = make_rt("mpi")
    rt.boot()
    send_burst(rt, 100, producers=4)
    rt.run_until(done, max_events=5_000_000)
    layer = rt.localities[0].parcel_layer
    qlock = layer._qlock(1)
    assert qlock.acquisitions > 0
    # 4 concurrent producers on one queue: someone waited
    assert qlock.total_wait_us > 0.0
