"""Open-loop serving subsystem test battery (``pytest -m serve``).

Five contracts, mirroring docs/SERVING.md:

* the arrival/size generators are pure functions of their rng stream —
  seed-stable, rate-accurate, and bounded;
* the shared seed helpers in ``repro.bench.seeds`` reproduce both the
  historical sweep-seed ladder (bit-for-bit) and the RngPool substream
  derivation;
* ``TimeSeries.p999`` has exact, pinned small-sample semantics (linear
  interpolation, numpy-identical);
* request accounting is conservation-exact under sustained overload:
  offered = delivered + shed + failed + in-flight at quiesce, with
  shedding engaging as admission control past saturation;
* every run is deterministic — identical results across reruns, traced
  vs untraced, ``--jobs 2`` fan-out, and a warm result cache.
"""

import numpy as np
import pytest

from repro import FlowControlPolicy, make_runtime
from repro.apps.serve import (ServeConfig, ServeDriver, bounded_pareto,
                              bounded_pareto_mean, bursty_arrival_times,
                              poisson_arrival_times)
from repro.bench.figures import SERVE_CONFIGS, find_knee
from repro.bench.seeds import (REPEAT_BASE, REPEAT_STEP, derive_seed,
                               repeat_seeds, substream_seeds)
from repro.bench.serve_bench import ServeBenchParams, run_serve
from repro.flow import OVERFLOW_SHED
from repro.obs.metrics import build_runtime_metrics
from repro.sim.rng import RngPool
from repro.sim.stats import TimeSeries, percentile

pytestmark = pytest.mark.serve

#: the three config families the per-test matrix exercises (the figures
#: sweep all five of SERVE_CONFIGS)
CONFIGS = ["lci_psr_cq_pin_i", "mpi_i", "mpi"]


def _rng(seed=7):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# arrival generators
# ---------------------------------------------------------------------------
def test_poisson_arrivals_deterministic_sorted_and_bounded():
    a = poisson_arrival_times(_rng(), 100.0, 5000.0)
    b = poisson_arrival_times(_rng(), 100.0, 5000.0)
    assert a == b
    assert a == sorted(a)
    assert all(0.0 < t < 5000.0 for t in a)


def test_poisson_arrivals_hit_the_offered_rate():
    # 200 K req/s over 50 ms -> 10000 expected; Poisson sd ~ 100
    times = poisson_arrival_times(_rng(1), 200.0, 50_000.0)
    assert 9500 < len(times) < 10500


def test_poisson_arrivals_empty_on_degenerate_inputs():
    assert poisson_arrival_times(_rng(), 0.0, 1000.0) == []
    assert poisson_arrival_times(_rng(), 100.0, 0.0) == []


def test_bursty_arrivals_deterministic_and_bounded():
    a = bursty_arrival_times(_rng(3), 100.0, 10_000.0)
    b = bursty_arrival_times(_rng(3), 100.0, 10_000.0)
    assert a == b
    assert a == sorted(a)
    assert all(0.0 <= t < 10_000.0 for t in a)


def test_bursty_long_run_rate_matches_poisson_x_axis():
    # Same long-run offered rate as the Poisson generator (within the
    # heavy-tailed process's wider tolerance over a long horizon).
    times = bursty_arrival_times(_rng(4), 100.0, 400_000.0)
    rate = len(times) / 400_000.0 * 1e3
    assert 70.0 < rate < 130.0


def test_bursty_arrivals_are_burstier_than_poisson():
    # Index of dispersion of per-ms counts: ~1 for Poisson, >1 for the
    # heavy-tailed ON/OFF process at the same offered rate.
    def dispersion(times, horizon):
        counts = np.bincount((np.asarray(times) // 1000).astype(int),
                             minlength=int(horizon // 1000))
        return counts.var() / counts.mean()

    h = 200_000.0
    poisson = poisson_arrival_times(_rng(5), 100.0, h)
    bursty = bursty_arrival_times(_rng(5), 100.0, h)
    assert dispersion(bursty, h) > 2.0 * dispersion(poisson, h)


def test_bursty_rejects_bad_on_fraction():
    with pytest.raises(ValueError, match="on_fraction"):
        bursty_arrival_times(_rng(), 100.0, 1000.0, on_fraction=0.0)


# ---------------------------------------------------------------------------
# bounded Pareto sizes
# ---------------------------------------------------------------------------
def test_bounded_pareto_stays_in_bounds_and_is_heavy_tailed():
    rng = _rng(11)
    draws = [bounded_pareto(rng, 1.3, 64.0, 16384.0) for _ in range(4000)]
    assert all(64.0 <= d <= 16384.0 for d in draws)
    # heavy tail: the mean sits far above the median
    assert np.mean(draws) > 1.5 * np.median(draws)


def test_bounded_pareto_empirical_mean_matches_closed_form():
    rng = _rng(12)
    draws = [bounded_pareto(rng, 1.5, 100.0, 10_000.0) for _ in range(20000)]
    mean = bounded_pareto_mean(1.5, 100.0, 10_000.0)
    assert abs(np.mean(draws) - mean) / mean < 0.05


def test_bounded_pareto_degenerate_and_invalid():
    assert bounded_pareto(_rng(), 1.3, 512.0, 512.0) == 512.0
    assert bounded_pareto_mean(1.3, 512.0, 512.0) == 512.0
    with pytest.raises(ValueError, match="lo <= hi"):
        bounded_pareto(_rng(), 1.3, 10.0, 1.0)
    with pytest.raises(ValueError, match="alpha"):
        bounded_pareto(_rng(), 0.0, 1.0, 10.0)


def test_bounded_pareto_mean_alpha_one_special_case():
    # alpha == 1 takes the logarithmic branch; sanity: between lo and hi
    m = bounded_pareto_mean(1.0, 100.0, 10_000.0)
    assert 100.0 < m < 10_000.0


# ---------------------------------------------------------------------------
# shared seed helpers
# ---------------------------------------------------------------------------
def test_repeat_seeds_is_the_historical_ladder_bit_for_bit():
    assert repeat_seeds(1) == [1000]
    assert repeat_seeds(3) == [1000 + i * 7919 for i in range(3)]
    assert repeat_seeds(2, base=5) == [5, 5 + REPEAT_STEP]
    assert REPEAT_BASE == 1000 and REPEAT_STEP == 7919
    with pytest.raises(ValueError):
        repeat_seeds(0)


def test_derive_seed_matches_rngpool_substreams():
    pool = RngPool(1234)
    for name in ("serve.arrivals", "serve.req_bytes", "anything"):
        ours = np.random.default_rng(derive_seed(1234, name))
        theirs = pool.stream(name)
        assert ours.integers(0, 2**31, 8).tolist() == \
            theirs.integers(0, 2**31, 8).tolist()


def test_substream_seeds_are_distinct_and_stable():
    seeds = substream_seeds(99, "clients", 16)
    assert len(seeds) == 16 and len(set(seeds)) == 16
    assert seeds == substream_seeds(99, "clients", 16)
    assert substream_seeds(99, "clients", 0) == []
    with pytest.raises(ValueError):
        substream_seeds(99, "clients", -1)


# ---------------------------------------------------------------------------
# TimeSeries.p999 exact small-sample semantics
# ---------------------------------------------------------------------------
def _series(values):
    ts = TimeSeries()
    for i, v in enumerate(values):
        ts.record(float(i), float(v))
    return ts


def test_p999_single_sample_degenerates_to_that_sample():
    assert _series([42.0]).p999() == 42.0


def test_p999_two_samples_interpolates_linearly():
    # rank = 0.999*(n-1) = 0.999 -> 0.001*v0 + 0.999*v1, exactly
    ts = _series([100.0, 200.0])
    assert ts.p999() == pytest.approx(100.0 * 0.001 + 200.0 * 0.999)


def test_p999_1001_uniform_samples_lands_on_the_999th():
    ts = _series(range(1001))  # 0..1000, rank = 0.999*1000 = 999
    assert ts.p999() == pytest.approx(999.0)


def test_p999_matches_numpy_linear_method():
    rng = _rng(21)
    vals = rng.exponential(50.0, size=257).tolist()
    ts = _series(vals)
    assert ts.p999() == pytest.approx(
        float(np.percentile(vals, 99.9, method="linear")))
    assert ts.p999() == pytest.approx(percentile(vals, 99.9))


def test_p999_empty_series_is_zero_and_ordering_holds():
    assert TimeSeries().p999() == 0.0
    ts = _series(_rng(22).normal(100.0, 10.0, size=500))
    assert ts.p50() <= ts.p99() <= ts.p999() <= max(ts.values())


# ---------------------------------------------------------------------------
# driver: config validation and light-load correctness
# ---------------------------------------------------------------------------
def _light_params(**kw):
    base = dict(offered_kps=50.0, horizon_us=1000.0, drain_us=1000.0)
    base.update(kw)
    return ServeBenchParams(**base)


def test_serve_config_validation():
    cfg = ServeConfig()
    with pytest.raises(ValueError, match="localities"):
        cfg.validate(1)
    with pytest.raises(ValueError, match="arrival"):
        ServeConfig(arrival="constant").validate(2)
    with pytest.raises(ValueError, match="client"):
        ServeConfig(n_clients=0).validate(2)
    with pytest.raises(ValueError, match="positive"):
        ServeConfig(offered_kps=0.0).validate(2)
    with pytest.raises(ValueError, match="slo"):
        ServeConfig(slo_us=0.0).validate(2)
    with pytest.raises(ValueError, match="drain"):
        ServeConfig(drain_us=-1.0).validate(2)


@pytest.mark.parametrize("config", CONFIGS)
def test_light_load_delivers_everything_in_slo(config):
    res = run_serve(config, _light_params(), seed=1000)
    assert res.offered > 20
    assert res.delivered == res.offered
    assert res.shed_requests == res.shed_responses == 0
    assert res.failed == res.in_flight == 0
    assert res.slo_attainment == 1.0
    assert res.goodput_kps == pytest.approx(res.achieved_kps)


def test_driver_accounting_identity_closes():
    rt = make_runtime("lci_psr_cq_pin_i", n_localities=3, seed=5)
    driver = ServeDriver(rt, ServeConfig(offered_kps=50.0,
                                         horizon_us=1000.0))
    res = driver.run(max_events=5_000_000)
    res.check_conservation()  # raises on a leak
    assert res.offered == len(driver.requests)
    # the schedule is precomputed: every request has a server != gateway
    assert all(1 <= r.server < 3 for r in driver.requests)
    assert all(r.deadline_us == r.t_arrive + driver.cfg.slo_us
               for r in driver.requests)


def test_driver_claims_the_parcel_failure_hook_exclusively():
    rt = make_runtime("mpi_i", n_localities=2, seed=5)
    rt.on_parcel_failure = lambda parcel, exc: None
    with pytest.raises(RuntimeError, match="on_parcel_failure"):
        ServeDriver(rt, ServeConfig(offered_kps=10.0,
                                    horizon_us=500.0)).run()


def test_tiny_slo_counts_misses_without_losing_requests():
    res = run_serve("lci_psr_cq_pin_i", _light_params(slo_us=0.5),
                    seed=1000)
    assert res.delivered == res.offered
    assert res.deadline_misses == res.delivered
    assert res.goodput_kps == 0.0 and res.slo_attainment == 0.0


def _conserved(res):
    return res.offered == (res.delivered + res.shed_requests
                           + res.shed_responses + res.failed
                           + res.in_flight)


def test_bursty_arrival_end_to_end_run():
    res = run_serve("mpi_i", _light_params(arrival="bursty"), seed=1000)
    assert _conserved(res)
    assert res.offered > 0 and res.delivered > 0


def test_serve_stats_flow_into_metrics_registry():
    rt = make_runtime("lci_psr_cq_pin_i", n_localities=3, seed=5,
                      flow_policy=FlowControlPolicy(
                          credit_window=8, max_backlog=16,
                          max_queued_parcels=64, overflow=OVERFLOW_SHED),
                      reliable=True)
    driver = ServeDriver(rt, ServeConfig(offered_kps=50.0,
                                         horizon_us=1000.0))
    res = driver.run(max_events=5_000_000)
    reg = build_runtime_metrics(rt)
    flat = reg.as_dict()
    assert flat["serve.responses_delivered"] == res.delivered
    assert flat["serve.requests_offered"] == res.offered
    assert flat["serve.requests_in_flight"] == res.in_flight
    hist = reg.get("serve.latency_us")
    assert hist is not None and hist.count == len(res.latency)
    assert hist.p999() == pytest.approx(res.latency.p999())


# ---------------------------------------------------------------------------
# shedding as admission control: sustained overload
# ---------------------------------------------------------------------------
OVERLOAD = ServeBenchParams(offered_kps=1600.0, horizon_us=1500.0,
                            drain_us=1500.0)


@pytest.mark.parametrize("config", CONFIGS)
def test_sustained_overload_sheds_and_conserves(config):
    res = run_serve(config, OVERLOAD, seed=1000)
    assert _conserved(res)
    assert res.shed_requests > 0, "admission control never engaged"
    assert res.slo_attainment < 0.5, "overload point is not saturating"
    assert res.faults.get("parcels_shed", 0) > 0
    assert res.deadline_misses <= res.delivered


def test_quiesce_catches_in_flight_requests_exactly():
    # No drain: whatever the horizon catches mid-stack must be counted
    # as in_flight, and the identity must still close.
    res = run_serve("mpi_i",
                    ServeBenchParams(offered_kps=800.0, horizon_us=1000.0,
                                     drain_us=0.0),
                    seed=1000)
    assert _conserved(res)
    assert res.in_flight > 0


def test_overload_accounting_is_rerun_deterministic():
    a = run_serve("lci_psr_cq_pin_i", OVERLOAD, seed=1000).as_dict()
    b = run_serve("lci_psr_cq_pin_i", OVERLOAD, seed=1000).as_dict()
    assert a == b


def test_traced_run_reports_identical_metrics():
    plain = run_serve("mpi_i", OVERLOAD, seed=1000)
    traced = run_serve("mpi_i", OVERLOAD, seed=1000, trace="parcel")
    assert plain.as_dict() == traced.as_dict()
    assert traced.obs is not None and len(traced.obs) > 0


def test_different_seeds_give_different_schedules():
    a = run_serve("mpi_i", OVERLOAD, seed=1000)
    b = run_serve("mpi_i", OVERLOAD, seed=8919)
    assert a.offered != b.offered or a.as_dict() != b.as_dict()


# ---------------------------------------------------------------------------
# sweep integration: --jobs and warm-cache invariance
# ---------------------------------------------------------------------------
def _overload_tasks():
    from repro.bench.parallel import serve_task

    from repro.hpx_rt.platform import EXPANSE

    return [serve_task(cfg, offered_kps=kps, horizon_us=1000.0,
                       n_localities=4, platform=EXPANSE, seed=seed,
                       drain_us=1000.0)
            for cfg in ("lci_psr_cq_pin_i", "mpi_i")
            for kps in (100.0, 1600.0)
            for seed in repeat_seeds(1)]


def test_serve_points_identical_under_jobs2():
    from repro.bench.parallel import run_points

    seq = run_points(_overload_tasks(), jobs=1, no_cache=True)
    par = run_points(_overload_tasks(), jobs=2, no_cache=True)
    assert seq == par
    # the heavy points shed; the light ones do not
    assert seq[1]["shed_requests"] > 0 and seq[3]["shed_requests"] > 0
    assert seq[0]["shed_requests"] == 0 and seq[2]["shed_requests"] == 0


def test_serve_points_identical_on_warm_cache(tmp_path):
    from repro.bench.parallel import ResultCache, run_points

    cache = ResultCache(tmp_path / "serve-cache")
    cold = run_points(_overload_tasks(), jobs=1, cache=cache)
    assert cache.stats()["misses"] == len(cold)
    warm = run_points(_overload_tasks(), jobs=1, cache=cache)
    assert warm == cold
    assert cache.stats()["hits"] == len(cold)


# ---------------------------------------------------------------------------
# knee finding + figure checks
# ---------------------------------------------------------------------------
def test_find_knee_locates_the_last_attaining_load():
    loads = [25.0, 50.0, 100.0, 200.0, 400.0]
    assert find_knee(loads, [1.0, 1.0, 0.95, 0.4, 0.1]) == 100.0
    # saturated below the sweep -> 0 (fails the inside-sweep check)
    assert find_knee(loads, [0.5, 0.4, 0.3, 0.2, 0.1]) == 0.0
    # never saturates -> the top of the ladder (also a located failure)
    assert find_knee(loads, [1.0] * 5) == 400.0
    # a post-dip recovery still reports the largest attaining load
    assert find_knee(loads, [1.0, 0.2, 0.95, 0.4, 0.1]) == 100.0


def test_serve_sweep_checks_on_synthetic_figure():
    from repro.bench.figures import FigureResult
    from repro.bench.harness import Series
    from repro.bench.validation import validate

    loads = [25.0, 50.0, 100.0, 200.0, 400.0]
    knees = {"lci_psr_cq_pin_i": 200.0, "lci_sr_cq_pin_i": 100.0,
             "mpi": 50.0, "mpi_i": 50.0, "mpi_orig": 50.0}
    series = []
    for cfg in SERVE_CONFIGS:
        s = Series(label=cfg)
        for x, y in zip(loads, [25.0, 50.0, 100.0, 120.0, 80.0]):
            s.add(x, y)
        series.append(s)
    fig = FigureResult(
        "serve_sweep", "synthetic", series, meta={
            "loads": loads, "knees": knees,
            "p99_us": {c: [10.0, 12.0, 20.0, 150.0, 400.0]
                       for c in SERVE_CONFIGS},
            "counters": {c: {"shed_requests": 5.0, "deadline_misses": 9.0,
                             "credit_stalls": 3.0}
                         for c in SERVE_CONFIGS}})
    outcomes = validate(fig)
    assert outcomes, "serve_sweep has no registered checks"
    failed = [o.name for o in outcomes if not o.passed]
    assert not failed, failed


def test_serve_sweep_checks_catch_a_missing_knee():
    from repro.bench.figures import FigureResult
    from repro.bench.validation import checks_for

    fig = FigureResult("serve_sweep", "synthetic", [], meta={
        "loads": [25.0, 400.0],
        "knees": {"lci_psr_cq_pin_i": 400.0, "mpi": 0.0}})
    by_name = {getattr(c, "__name__", ""): c
               for c in checks_for("serve_sweep")}
    knee_check = [c for c in checks_for("serve_sweep")][0]
    out = knee_check(fig)
    assert out.name == "knee_located_per_family" and not out.passed
    assert "lci_psr_cq_pin_i" in out.detail and "mpi" in out.detail
