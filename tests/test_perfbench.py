"""Wall-clock perf harness (repro.bench.perfbench).

Wall-clock numbers themselves are never asserted (they vary per host) —
these tests pin the harness mechanics: the BENCH document schema, the
validator, and the determinism cross-checks built into the bench runners.
A miniature workload set keeps the bench runs fast.
"""

import json

import pytest

import repro.bench.perfbench as perfbench
from repro.bench.perfbench import (BENCH_SCHEMA, KERNEL_WORKLOADS,
                                   bench_kernel, run_perf, validate_bench)

TINY_WORKLOADS = {name: (fn, 400, 800)
                  for name, (fn, _s, _f) in KERNEL_WORKLOADS.items()}


@pytest.fixture()
def tiny_workloads(monkeypatch):
    monkeypatch.setattr(perfbench, "KERNEL_WORKLOADS", TINY_WORKLOADS)


def test_kernel_workloads_have_smoke_and_full_scales():
    assert set(KERNEL_WORKLOADS) == {"timeout_storm", "process_ping_pong",
                                     "condition_fanin", "call_storm"}
    for _fn, smoke, full in KERNEL_WORKLOADS.values():
        assert 0 < smoke < full


def test_workloads_process_same_events_on_both_kernels():
    import repro.sim._seed_kernel as seed_kernel
    import repro.sim.core as live_kernel
    for name, (fn, _s, _f) in KERNEL_WORKLOADS.items():
        assert fn(live_kernel, 400) == fn(seed_kernel, 400), name


def test_bench_kernel_document_schema(tiny_workloads):
    doc = bench_kernel(repeats=1)
    assert validate_bench(doc) == []
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["kind"] == "kernel" and doc["scale"] == "smoke"
    assert set(doc["workloads"]) == set(TINY_WORKLOADS)
    for w in doc["workloads"].values():
        assert w["events"] > 0
        assert w["speedup"] == pytest.approx(
            w["live_events_per_s"] / w["seed_events_per_s"], rel=0.01)
    assert doc["speedup_min"] <= doc["speedup_geomean"]


def test_bench_kernel_full_scale_flag(tiny_workloads):
    doc = bench_kernel(full=True, repeats=1)
    assert doc["scale"] == "full"
    assert all(w["n"] == 800 for w in doc["workloads"].values())


def test_validate_bench_flags_problems():
    assert any("schema" in e for e in validate_bench({}))
    assert any("kind" in e for e in validate_bench({"schema": BENCH_SCHEMA}))
    kernel_doc = {"schema": BENCH_SCHEMA, "kind": "kernel",
                  "python": "3", "platform": "x", "generated_utc": "t",
                  "repeats": 1, "scale": "smoke",
                  "workloads": {"w": {"n": 1, "events": 0, "live_s": 1,
                                      "live_events_per_s": 1, "seed_s": 1,
                                      "seed_events_per_s": 1,
                                      "speedup": 1}},
                  "speedup_min": 1, "speedup_geomean": 1}
    errors = validate_bench(kernel_doc)
    assert errors == ["workload w: bad events=0"]
    figures_doc = {"schema": BENCH_SCHEMA, "kind": "figures",
                   "python": "3", "platform": "x", "generated_utc": "t",
                   "repeats": 1, "scale": "smoke",
                   "figures": {"fig1_quick": {"wall_s": 1.0}},
                   "sweep": {"points": 4, "sequential_s": 1.0, "jobs": 2,
                             "parallel_s": 1.0, "speedup": 1.0}}
    assert validate_bench(figures_doc) == []
    del figures_doc["sweep"]
    assert validate_bench(figures_doc) == ["figures doc has no sweep timing"]


def test_committed_baselines_are_valid():
    """The BENCH_*.json files at the repo root must pass the validator."""
    from pathlib import Path
    root = Path(__file__).resolve().parent.parent
    for fname in ("BENCH_kernel.json", "BENCH_figures.json"):
        path = root / fname
        assert path.exists(), f"{fname} baseline missing (run repro-fig perf)"
        doc = json.loads(path.read_text())
        assert validate_bench(doc) == [], fname


def test_run_perf_writes_valid_documents(tiny_workloads, tmp_path,
                                         monkeypatch, capsys):
    # stub the (slow) figure bench; kernel bench runs tiny for real
    monkeypatch.setattr(
        perfbench, "bench_figures",
        lambda full=False, jobs=None: {
            "schema": BENCH_SCHEMA, "kind": "figures", "python": "3",
            "platform": "x", "generated_utc": "t", "repeats": 1,
            "scale": "smoke",
            "figures": {"fig1_quick": {"wall_s": 0.1}},
            "sweep": {"points": 2, "sequential_s": 0.2, "jobs": 2,
                      "parallel_s": 0.1, "speedup": 2.0}})
    assert run_perf(out_dir=str(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "kernel microbenchmarks" in out and "speedup" in out
    for fname in ("BENCH_kernel.json", "BENCH_figures.json"):
        doc = json.loads((tmp_path / fname).read_text())
        assert validate_bench(doc) == []
