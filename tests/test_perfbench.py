"""Wall-clock perf harness (repro.bench.perfbench).

Wall-clock numbers themselves are never asserted (they vary per host) —
these tests pin the harness mechanics: the BENCH document schema, the
validator, and the determinism cross-checks built into the bench runners.
A miniature workload set keeps the bench runs fast.
"""

import json

import pytest

import repro.bench.perfbench as perfbench
from repro.bench.perfbench import (BENCH_SCHEMA, KERNEL_WORKLOADS,
                                   bench_kernel, run_perf, validate_bench)

TINY_WORKLOADS = {name: (fn, 400, 800)
                  for name, (fn, _s, _f) in KERNEL_WORKLOADS.items()}


@pytest.fixture()
def tiny_workloads(monkeypatch):
    monkeypatch.setattr(perfbench, "KERNEL_WORKLOADS", TINY_WORKLOADS)


def test_kernel_workloads_have_smoke_and_full_scales():
    assert set(KERNEL_WORKLOADS) == {"timeout_storm", "process_ping_pong",
                                     "condition_fanin", "call_storm"}
    for _fn, smoke, full in KERNEL_WORKLOADS.values():
        assert 0 < smoke < full


def test_workloads_process_same_events_on_both_kernels():
    import repro.sim._seed_kernel as seed_kernel
    import repro.sim.core as live_kernel
    for name, (fn, _s, _f) in KERNEL_WORKLOADS.items():
        assert fn(live_kernel, 400) == fn(seed_kernel, 400), name


def test_bench_kernel_document_schema(tiny_workloads):
    doc = bench_kernel(repeats=1)
    assert validate_bench(doc) == []
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["kind"] == "kernel" and doc["scale"] == "smoke"
    assert set(doc["workloads"]) == set(TINY_WORKLOADS)
    for w in doc["workloads"].values():
        assert w["events"] > 0
        assert w["speedup"] == pytest.approx(
            w["live_events_per_s"] / w["seed_events_per_s"], rel=0.01)
    assert doc["speedup_min"] <= doc["speedup_geomean"]


def test_bench_kernel_full_scale_flag(tiny_workloads):
    doc = bench_kernel(full=True, repeats=1)
    assert doc["scale"] == "full"
    assert all(w["n"] == 800 for w in doc["workloads"].values())


def test_validate_bench_flags_problems():
    assert any("schema" in e for e in validate_bench({}))
    assert any("kind" in e for e in validate_bench({"schema": BENCH_SCHEMA}))
    kernel_doc = {"schema": BENCH_SCHEMA, "kind": "kernel",
                  "python": "3", "platform": "x", "generated_utc": "t",
                  "repeats": 1, "scale": "smoke",
                  "workloads": {"w": {"n": 1, "events": 0, "live_s": 1,
                                      "live_events_per_s": 1, "seed_s": 1,
                                      "seed_events_per_s": 1,
                                      "speedup": 1}},
                  "speedup_min": 1, "speedup_geomean": 1}
    errors = validate_bench(kernel_doc)
    assert errors == ["workload w: bad events=0"]
    figures_doc = {"schema": BENCH_SCHEMA, "kind": "figures",
                   "python": "3", "platform": "x", "generated_utc": "t",
                   "repeats": 1, "scale": "smoke",
                   "figures": {"fig1_quick": {"wall_s": 1.0}},
                   "sweep": {"points": 4, "sequential_s": 1.0, "jobs": 2,
                             "parallel_s": 1.0, "speedup": 1.0}}
    assert validate_bench(figures_doc) == []
    del figures_doc["sweep"]
    assert validate_bench(figures_doc) == ["figures doc has no sweep timing"]


def test_validate_bench_models_kind():
    models_doc = {"schema": BENCH_SCHEMA, "kind": "models",
                  "python": "3", "platform": "x", "generated_utc": "t",
                  "repeats": 1, "scale": "smoke",
                  "workloads": {"w": {"live_s": 0.5, "ref_s": 1.0,
                                      "speedup": 2.0}},
                  "speedup_min": 2.0, "speedup_geomean": 2.0}
    assert validate_bench(models_doc) == []
    models_doc["workloads"]["w"]["ref_s"] = 0
    assert validate_bench(models_doc) == ["workload w: bad ref_s=0"]
    del models_doc["workloads"]
    assert any("no workloads" in e for e in validate_bench(models_doc))


def test_bench_models_document_schema(monkeypatch):
    """bench_models over a miniature real workload: identity + schema."""
    from repro.bench.message_rate import MessageRateParams, run_message_rate

    params = MessageRateParams(msg_size=8, batch=25, total_msgs=200,
                               inject_rate_kps=200.0)
    tiny = {"tiny_mpi_i":
            lambda: run_message_rate("mpi_i", params, seed=7).as_dict()}
    monkeypatch.setattr(perfbench, "_model_workloads", lambda full: tiny)
    doc = perfbench.bench_models(repeats=1)
    assert validate_bench(doc) == []
    assert doc["kind"] == "models" and doc["scale"] == "smoke"
    assert set(doc["workloads"]) == {"tiny_mpi_i"}
    w = doc["workloads"]["tiny_mpi_i"]
    assert w["speedup"] == pytest.approx(w["ref_s"] / w["live_s"], rel=0.01)
    assert doc["speedup_min"] <= doc["speedup_geomean"]


def test_bench_models_detects_divergence(monkeypatch):
    """A workload whose result changes between runs must be rejected."""
    import itertools
    counter = itertools.count()
    tiny = {"diverges": lambda: {"x": next(counter)}}
    monkeypatch.setattr(perfbench, "_model_workloads", lambda full: tiny)
    with pytest.raises(AssertionError, match="diverged"):
        perfbench.bench_models(repeats=1)


def test_model_workloads_cover_issue_surface():
    """The macrobench must span fig1 points, the MT sweep, and Octo-Tiger."""
    names = set(perfbench._model_workloads(full=False))
    assert names == {"fig1_point_mpi_i", "fig1_point_lci_pin",
                     "rate_sweep_lci_mt", "octotiger_step_mpi_i"}


def test_committed_baselines_are_valid():
    """The BENCH_*.json files at the repo root must pass the validator."""
    from pathlib import Path
    root = Path(__file__).resolve().parent.parent
    for fname in ("BENCH_kernel.json", "BENCH_models.json",
                  "BENCH_figures.json"):
        path = root / fname
        assert path.exists(), f"{fname} baseline missing (run repro-fig perf)"
        doc = json.loads(path.read_text())
        assert validate_bench(doc) == [], fname
    models = json.loads((root / "BENCH_models.json").read_text())
    # the committed baseline documents the >=1.5x model-path target
    assert models["speedup_geomean"] >= 1.5


def test_run_perf_writes_valid_documents(tiny_workloads, tmp_path,
                                         monkeypatch, capsys):
    # stub the (slow) figure and model benches; kernel bench runs tiny
    monkeypatch.setattr(
        perfbench, "_model_workloads",
        lambda full: {"tiny": lambda: {"x": sum(range(200_000))}})
    monkeypatch.setattr(
        perfbench, "bench_figures",
        lambda full=False, jobs=None: {
            "schema": BENCH_SCHEMA, "kind": "figures", "python": "3",
            "platform": "x", "generated_utc": "t", "repeats": 1,
            "scale": "smoke",
            "figures": {"fig1_quick": {"wall_s": 0.1}},
            "sweep": {"points": 2, "sequential_s": 0.2, "jobs": 2,
                      "parallel_s": 0.1, "speedup": 2.0}})
    assert run_perf(out_dir=str(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "kernel microbenchmarks" in out and "speedup" in out
    assert "model macrobenchmarks" in out
    for fname in ("BENCH_kernel.json", "BENCH_models.json",
                  "BENCH_figures.json"):
        doc = json.loads((tmp_path / fname).read_text())
        assert validate_bench(doc) == []
