"""Tests for the benchmark harness layer (workloads, harness, reporting)."""

import pytest

from repro.bench import (FIGURES, LatencyParams, Measurement,
                         MessageRateParams, OctoTigerBenchParams, Series,
                         platform_tables, repeat, run_latency,
                         run_message_rate, run_octotiger,
                         table_abbreviations)
from repro.bench.reporting import (ascii_plot, format_bar_chart,
                                   format_series_table, format_table)
from repro.hpx_rt.platform import LAPTOP


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
def test_repeat_aggregates_keys():
    calls = []

    def fn(seed):
        calls.append(seed)
        return {"x": float(len(calls)), "y": 2.0}

    out = repeat(fn, n=4)
    assert out["x"].n == 4
    assert out["x"].values == [1.0, 2.0, 3.0, 4.0]
    assert out["y"].mean == 2.0
    assert out["y"].std == 0.0
    assert len(set(calls)) == 4     # distinct seeds


def test_repeat_requires_positive_n():
    with pytest.raises(ValueError):
        repeat(lambda s: {}, n=0)


def test_measurement_repr():
    m = Measurement([1.0, 2.0, 3.0])
    assert m.mean == 2.0
    assert "±" in repr(m)


def test_series_add_and_lookup():
    s = Series(label="x")
    s.add(1.0, 10.0)
    s.add(2.0, Measurement([20.0, 22.0]))
    assert s.peak == 21.0
    assert s.y_at(1.2) == 10.0
    assert s.y_at(2.0) == 21.0
    assert s.yerr[0] == 0.0 and s.yerr[1] > 0


def test_series_y_at_empty_raises():
    with pytest.raises(ValueError):
        Series(label="e").y_at(1.0)


# ---------------------------------------------------------------------------
# workloads (LAPTOP-sized so they run fast)
# ---------------------------------------------------------------------------
def test_message_rate_run_returns_sane_rates():
    p = MessageRateParams(msg_size=8, batch=10, total_msgs=100,
                          inject_rate_kps=None, platform=LAPTOP)
    r = run_message_rate("lci_psr_cq_pin_i", p)
    assert r.total_msgs == 100
    assert 0 < r.comm_time_us
    assert 0 < r.inject_time_us <= r.comm_time_us
    assert r.message_rate_kps <= r.achieved_injection_kps
    d = r.as_dict()
    assert set(d) == {"achieved_injection_kps", "message_rate_kps"}


def test_message_rate_throttled_injection():
    fast = run_message_rate("lci_psr_cq_pin_i", MessageRateParams(
        msg_size=8, batch=10, total_msgs=100, inject_rate_kps=None,
        platform=LAPTOP))
    slow = run_message_rate("lci_psr_cq_pin_i", MessageRateParams(
        msg_size=8, batch=10, total_msgs=100, inject_rate_kps=50.0,
        platform=LAPTOP))
    assert slow.achieved_injection_kps < fast.achieved_injection_kps
    # throttled to ~50 K/s
    assert slow.achieved_injection_kps == pytest.approx(50.0, rel=0.2)


def test_message_rate_batch_divisibility_enforced():
    p = MessageRateParams(batch=100, total_msgs=150)
    with pytest.raises(ValueError):
        run_message_rate("mpi", p)


def test_latency_run_and_metric():
    p = LatencyParams(msg_size=8, window=2, steps=5, platform=LAPTOP)
    r = run_latency("lci_psr_cq_pin_i", p)
    assert r.one_way_latency_us == pytest.approx(
        r.total_time_us / (2 * 5))
    assert r.one_way_latency_us > 0


def test_latency_grows_with_message_size():
    small = run_latency("mpi_i", LatencyParams(
        msg_size=8, window=1, steps=5, platform=LAPTOP))
    big = run_latency("mpi_i", LatencyParams(
        msg_size=65536, window=1, steps=5, platform=LAPTOP))
    assert big.one_way_latency_us > small.one_way_latency_us


def test_octotiger_bench_returns_metrics():
    p = OctoTigerBenchParams(platform=LAPTOP, n_localities=2,
                             paper_level=5, n_steps=1)
    out = run_octotiger("lci_psr_cq_pin_i", p)
    assert out["steps_per_second"] > 0
    assert out["leaves"] > 0
    assert out["total_time_us"] > 0


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table([["a", 1], ["bbb", 22]], header=["k", "v"])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("k")
    assert set(lines[1]) <= {"-", " "}


def test_format_series_table_merges_x_axes():
    s1 = Series("a")
    s1.add(1, 10.0)
    s2 = Series("b")
    s2.add(2, 20.0)
    out = format_series_table([s1, s2])
    assert "a" in out and "b" in out
    assert "-" in out    # missing cells marked


def test_ascii_plot_renders_all_series():
    s1 = Series("one")
    for x, y in [(1, 10), (10, 100), (100, 1000)]:
        s1.add(x, y)
    s2 = Series("two")
    for x, y in [(1, 5), (10, 50)]:
        s2.add(x, y)
    out = ascii_plot([s1, s2], width=30, height=8, title="t")
    assert "o = one" in out
    assert "x = two" in out
    assert "log" in out


def test_ascii_plot_empty():
    assert ascii_plot([Series("e")]) == "(no data)"


def test_format_bar_chart():
    out = format_bar_chart(["aa", "b"], [10.0, 5.0], width=10, unit="K")
    lines = out.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_tables_render():
    t1 = table_abbreviations()
    assert "putsendrecv" in t1
    assert "send immediate" in t1
    t23 = platform_tables()
    assert "expanse" in t23 and "rostam" in t23
    assert "128" in t23 and "40" in t23


def test_figure_registry_complete():
    for n in range(1, 12):
        assert f"fig{n}" in FIGURES
    assert "ablation_mpi_pp" in FIGURES
    assert "ablation_aggregation" in FIGURES
