"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Event, Interrupt, SimulationError,
                       Simulator, Timeout)


def test_timeout_fires_at_delay():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(3.5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [3.5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_value_passed_to_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        v = yield ev
        got.append(v)

    sim.process(waiter(sim))
    sim.schedule_call(2.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_raises_in_process():
    sim = Simulator(strict=False)
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    sim.process(waiter(sim))
    sim.schedule_call(1.0, lambda: ev.fail(RuntimeError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_process_exception_propagates_in_strict_mode():
    sim = Simulator(strict=True)

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="kaput"):
        sim.run()


def test_process_return_value_is_event_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim, out):
        v = yield sim.process(child(sim))
        out.append(v)

    out = []
    sim.process(parent(sim, out))
    sim.run()
    assert out == [42]


def test_deterministic_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_float_deadline():
    sim = Simulator()
    hits = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            hits.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5
    assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "done"


def test_run_until_untriggered_event_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_max_events_guard():
    sim = Simulator()

    def spin(sim):
        while True:
            yield sim.timeout(0.1)

    sim.process(spin(sim))
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def proc(sim):
        yield AllOf(sim, [sim.timeout(1.0), sim.timeout(5.0),
                          sim.timeout(3.0)])
        done_at.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done_at == [5.0]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_any_of_fires_on_first():
    sim = Simulator()
    done_at = []

    def proc(sim):
        yield AnyOf(sim, [sim.timeout(4.0), sim.timeout(1.5)])
        done_at.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done_at == [1.5]


def test_interrupt_injects_exception():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(sleeper(sim))
    sim.schedule_call(2.0, lambda: p.interrupt("wake"))
    sim.run()
    assert log == [("interrupted", "wake", 2.0)]


def test_yield_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield "not an event"

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_yield_bare_delay_sleeps_like_timeout():
    """A float/int yield is the fast-path spelling of ``sim.timeout(d)``:
    same wake time, same number of heap records, same seq consumption."""
    log = []

    def float_proc(sim):
        yield 3.0
        log.append(("float", sim.now))
        yield 2
        log.append(("int", sim.now))

    def timeout_proc(sim):
        yield sim.timeout(3.0)
        log.append(("timeout", sim.now))
        yield sim.timeout(2)
        log.append(("timeout", sim.now))

    sim_a = Simulator()
    sim_a.process(float_proc(sim_a))
    sim_a.run()
    sim_b = Simulator()
    sim_b.process(timeout_proc(sim_b))
    sim_b.run()
    assert [t for _, t in log[:2]] == [t for _, t in log[2:]] == [3.0, 5.0]
    assert sim_a.event_count == sim_b.event_count
    assert sim_a._seq == sim_b._seq


def test_yield_negative_delay_raises():
    sim = Simulator()

    def bad(sim):
        yield -1.0

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="negative delay"):
        sim.run()


def test_waiting_on_already_processed_event_resumes():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    got = []

    def late(sim):
        yield sim.timeout(5.0)
        got.append((yield ev))

    sim.process(late(sim))
    sim.run()
    assert got == ["v"]
    assert sim.now == 5.0


def test_clock_never_goes_backwards():
    sim = Simulator()
    stamps = []

    def proc(sim, delays):
        for d in delays:
            yield sim.timeout(d)
            stamps.append(sim.now)

    sim.process(proc(sim, [3.0, 0.0, 1.0]))
    sim.process(proc(sim, [1.0, 1.0, 1.0]))
    sim.run()
    assert stamps == sorted(stamps)


def test_schedule_call_runs_function():
    sim = Simulator()
    out = []
    sim.schedule_call(7.0, lambda: out.append(sim.now))
    sim.run()
    assert out == [7.0]


def test_event_count_increments():
    sim = Simulator()
    sim.schedule_call(1.0, lambda: None)
    sim.schedule_call(2.0, lambda: None)
    sim.run()
    assert sim.event_count == 2


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.schedule_call(4.0, lambda: None)
    assert sim.peek() == 4.0
    sim.run()
    assert sim.peek() == float("inf")


# ---------------------------------------------------------------------------
# max_events semantics (regression: the seed kernel raised only after
# max_events + 1 events had been processed)
# ---------------------------------------------------------------------------
def test_max_events_stops_at_exactly_max_events():
    sim = Simulator()

    def spin(sim):
        while True:
            yield sim.timeout(0.1)

    sim.process(spin(sim))
    with pytest.raises(SimulationError, match="max_events=50"):
        sim.run(max_events=50)
    assert sim.event_count == 50


def test_max_events_allows_run_completing_in_exactly_max_events():
    sim = Simulator()
    for i in range(5):
        sim.schedule_call(float(i), lambda: None)
    sim.run(max_events=5)
    assert sim.event_count == 5
    assert sim.peek() == float("inf")


def test_max_events_respected_under_deadline():
    sim = Simulator()

    def spin(sim):
        while True:
            yield sim.timeout(0.1)

    sim.process(spin(sim))
    with pytest.raises(SimulationError, match="max_events=10"):
        sim.run(until=1000.0, max_events=10)
    assert sim.event_count == 10


# ---------------------------------------------------------------------------
# interrupt-vs-completion races
# ---------------------------------------------------------------------------
def test_interrupt_with_triggered_unprocessed_target_delivers_value_first():
    # The wait target has already triggered (URGENT, so it pops before the
    # interrupt wake): the process receives the value, then the interrupt
    # at its next suspension point — the completion is not lost.
    sim = Simulator()
    log = []
    ev = sim.event()

    def proc(sim):
        v = yield ev
        log.append(("value", v, sim.now))
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(proc(sim))

    def fire(sim):
        yield sim.timeout(2.0)
        ev.succeed("payload", priority=0)   # URGENT: pops before the wake
        p.interrupt("late")

    sim.process(fire(sim))
    sim.run()
    assert log == [("value", "payload", 2.0), ("interrupted", "late", 2.0)]


def test_interrupt_from_same_event_callback_no_double_resume():
    # Regression for the seed kernel's mid-step race: a callback of the
    # very event the process is waiting on interrupts it.  The stale wait
    # target must never resume the process a second time.
    sim = Simulator()
    log = []
    ev = sim.event()
    late = sim.event()

    def proc(sim):
        v = yield ev
        log.append(("value", v))
        try:
            yield late
            log.append(("late", sim.now))
        except Interrupt as i:
            log.append(("interrupted", i.cause))
            yield sim.timeout(5.0)
            log.append(("resumed", sim.now))

    p = sim.process(proc(sim))
    # Interrupt *before* the process's own resume callback runs: the
    # event's callback list is already detached when interrupt() fires.
    ev.callbacks.insert(0, lambda _e: p.interrupt("race"))
    sim.schedule_call(1.0, lambda: ev.succeed("v"))
    # `late` succeeding afterwards must not resume the moved-on process.
    sim.schedule_call(2.0, lambda: late.succeed("stale"))
    sim.run()
    assert log == [("value", "v"), ("interrupted", "race"),
                   ("resumed", 6.0)]


def test_interrupt_before_process_starts_is_catchable_at_first_yield():
    sim = Simulator()
    log = []

    def proc(sim):
        try:
            yield sim.timeout(50.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(proc(sim))
    p.interrupt("early")          # before the bootstrap event has run
    sim.run()
    assert log == [("interrupted", "early", 0.0)]


def test_interrupt_detaches_stale_target_no_resume_after_interrupt():
    # After an interrupt, the abandoned wait target firing later must not
    # resume the process (the seed kernel left it attached in some races).
    sim = Simulator()
    log = []
    first = sim.event()

    def proc(sim):
        try:
            yield first
            log.append("first")
        except Interrupt:
            log.append(("interrupted", sim.now))
        yield sim.timeout(10.0)
        log.append(("after", sim.now))

    p = sim.process(proc(sim))
    sim.schedule_call(1.0, lambda: p.interrupt())
    sim.schedule_call(2.0, lambda: first.succeed("zombie"))
    sim.run()
    assert log == [("interrupted", 1.0), ("after", 11.0)]


def test_double_interrupt_delivers_both():
    sim = Simulator()
    log = []

    def proc(sim):
        for _ in range(2):
            try:
                yield sim.timeout(100.0)
                log.append("slept")
            except Interrupt as i:
                log.append(("interrupted", i.cause))
        yield sim.timeout(1.0)
        log.append("done")

    p = sim.process(proc(sim))

    def fire(sim):
        yield sim.timeout(1.0)
        p.interrupt("a")
        p.interrupt("b")

    sim.process(fire(sim))
    sim.run()
    assert log == [("interrupted", "a"), ("interrupted", "b"), "done"]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)
        return "ok"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("too late")
    sim.run()
    assert p.value == "ok"


# ---------------------------------------------------------------------------
# kernel edge cases exercised by the fast paths
# ---------------------------------------------------------------------------
def test_resume_off_already_processed_failed_event_throws():
    sim = Simulator(strict=False)
    ev = sim.event()
    ev.fail(RuntimeError("old failure"))
    sim.run()                      # process the failure; ev is now stale
    caught = []

    def late(sim):
        yield sim.timeout(3.0)
        try:
            yield ev               # already processed *and* failed
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    sim.process(late(sim))
    sim.run()
    assert caught == [("old failure", 3.0)]


def test_all_of_with_prefailed_child_fails_immediately():
    sim = Simulator(strict=False)
    bad = sim.event()
    bad.fail(RuntimeError("pre-failed"))
    sim.run()
    assert bad.processed and not bad.ok
    caught = []

    def waiter(sim):
        try:
            yield AllOf(sim, [sim.timeout(5.0), bad])
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    sim.process(waiter(sim))
    sim.run()
    assert caught == [("pre-failed", 0.0)]


def test_any_of_with_prefailed_child_fails_immediately():
    sim = Simulator(strict=False)
    bad = sim.event()
    bad.fail(RuntimeError("pre-failed any"))
    sim.run()
    caught = []

    def waiter(sim):
        try:
            yield AnyOf(sim, [sim.timeout(5.0), bad])
        except RuntimeError as e:
            caught.append(str(e))

    sim.process(waiter(sim))
    sim.run()
    assert caught == ["pre-failed any"]


def test_any_of_with_preprocessed_ok_child_triggers_at_construction():
    sim = Simulator()
    won = sim.event()
    won.succeed("early")
    sim.run()
    got = []

    def waiter(sim):
        ev, value = yield AnyOf(sim, [sim.timeout(9.0), won])
        got.append((ev is won, value, sim.now))

    sim.process(waiter(sim))
    sim.run()
    assert got == [(True, "early", 0.0)]


def test_run_until_deadline_processes_urgent_ties_at_deadline():
    # A process completing at exactly the deadline schedules an URGENT wake
    # at t == deadline; ``run(until=deadline)`` must process it (ties at the
    # deadline are inside the window) while leaving anything beyond it.
    sim = Simulator()
    order = []

    def child(sim):
        yield sim.timeout(5.0)
        return "done"

    def parent(sim):
        v = yield sim.process(child(sim))
        order.append(("urgent-completion", sim.now, v))

    sim.process(parent(sim))
    sim.schedule_call(5.0, lambda: order.append(("normal", sim.now)))
    sim.schedule_call(5.0001, lambda: order.append(("beyond", sim.now)))
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert order == [("normal", 5.0), ("urgent-completion", 5.0, "done")]
    sim.run()
    assert order[-1] == ("beyond", 5.0001)


def test_peek_on_empty_heap_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")
    assert sim._heap == []
    sim.run()                      # running an empty sim is a no-op
    assert sim.now == 0.0 and sim.peek() == float("inf")


def test_schedule_calls_batch_matches_individual_calls():
    sim = Simulator()
    out = []
    evs = sim.schedule_calls([(3.0, lambda: out.append("c")),
                              (1.0, lambda: out.append("a")),
                              (2.0, lambda: out.append("b"))])
    assert len(evs) == 3 and all(e.triggered for e in evs)
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.event_count == 3


def test_schedule_calls_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule_calls([(1.0, lambda: None), (-0.5, lambda: None)])


def test_schedule_call_result_is_waitable_event():
    sim = Simulator()
    out = []
    ev = sim.schedule_call(2.0, lambda: out.append("ran"))

    def waiter(sim):
        yield ev
        out.append(("woke", sim.now))

    sim.process(waiter(sim))
    sim.run()
    assert out == ["ran", ("woke", 2.0)]
