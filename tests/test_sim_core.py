"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (AllOf, AnyOf, Event, Interrupt, SimulationError,
                       Simulator, Timeout)


def test_timeout_fires_at_delay():
    sim = Simulator()
    log = []

    def proc(sim):
        yield sim.timeout(3.5)
        log.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert log == [3.5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_event_value_passed_to_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim):
        v = yield ev
        got.append(v)

    sim.process(waiter(sim))
    sim.schedule_call(2.0, lambda: ev.succeed("payload"))
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_raises_in_process():
    sim = Simulator(strict=False)
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except RuntimeError as e:
            caught.append(str(e))

    sim.process(waiter(sim))
    sim.schedule_call(1.0, lambda: ev.fail(RuntimeError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_process_exception_propagates_in_strict_mode():
    sim = Simulator(strict=True)

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("kaput")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="kaput"):
        sim.run()


def test_process_return_value_is_event_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim, out):
        v = yield sim.process(child(sim))
        out.append(v)

    out = []
    sim.process(parent(sim, out))
    sim.run()
    assert out == [42]


def test_deterministic_fifo_order_for_simultaneous_events():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.process(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_float_deadline():
    sim = Simulator()
    hits = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            hits.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=5.5)
    assert sim.now == 5.5
    assert hits == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "done"


def test_run_until_untriggered_event_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_max_events_guard():
    sim = Simulator()

    def spin(sim):
        while True:
            yield sim.timeout(0.1)

    sim.process(spin(sim))
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=50)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    done_at = []

    def proc(sim):
        yield AllOf(sim, [sim.timeout(1.0), sim.timeout(5.0),
                          sim.timeout(3.0)])
        done_at.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done_at == [5.0]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_any_of_fires_on_first():
    sim = Simulator()
    done_at = []

    def proc(sim):
        yield AnyOf(sim, [sim.timeout(4.0), sim.timeout(1.5)])
        done_at.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done_at == [1.5]


def test_interrupt_injects_exception():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as i:
            log.append(("interrupted", i.cause, sim.now))

    p = sim.process(sleeper(sim))
    sim.schedule_call(2.0, lambda: p.interrupt("wake"))
    sim.run()
    assert log == [("interrupted", "wake", 2.0)]


def test_yield_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_waiting_on_already_processed_event_resumes():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    got = []

    def late(sim):
        yield sim.timeout(5.0)
        got.append((yield ev))

    sim.process(late(sim))
    sim.run()
    assert got == ["v"]
    assert sim.now == 5.0


def test_clock_never_goes_backwards():
    sim = Simulator()
    stamps = []

    def proc(sim, delays):
        for d in delays:
            yield sim.timeout(d)
            stamps.append(sim.now)

    sim.process(proc(sim, [3.0, 0.0, 1.0]))
    sim.process(proc(sim, [1.0, 1.0, 1.0]))
    sim.run()
    assert stamps == sorted(stamps)


def test_schedule_call_runs_function():
    sim = Simulator()
    out = []
    sim.schedule_call(7.0, lambda: out.append(sim.now))
    sim.run()
    assert out == [7.0]


def test_event_count_increments():
    sim = Simulator()
    sim.schedule_call(1.0, lambda: None)
    sim.schedule_call(2.0, lambda: None)
    sim.run()
    assert sim.event_count == 2


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.schedule_call(4.0, lambda: None)
    assert sim.peek() == 4.0
    sim.run()
    assert sim.peek() == float("inf")
