"""Determinism contract of the kernel fast paths.

The optimised kernel in :mod:`repro.sim.core` must produce **bit-identical**
schedules to the frozen pre-optimisation copy in
:mod:`repro.sim._seed_kernel`: the same ``(time, priority, seq)`` pop order,
the same ``event_count``, and the same simulated results.  These tests
replay identical workloads on both kernels step-by-step and compare the
traced schedules, then pin a set of end-to-end golden values captured from
the seed kernel.

The two deliberate behaviour *fixes* (the ``max_events`` off-by-one and the
interrupt-vs-completion races) are excluded here — they are covered as
regression tests in ``tests/test_sim_core.py``.
"""

import pytest

import repro.sim._seed_kernel as seed_kernel
import repro.sim.core as live_kernel


def trace_schedule(mod, build):
    """Run ``build(sim, mod)`` then drain the sim via ``step()``, recording
    the ``(time, priority, seq)`` triple of every processed event."""
    sim = mod.Simulator(strict=False)
    build(sim, mod)
    sched = []
    while sim._heap:
        t, prio, seq, _ev = sim._heap[0]
        sched.append((t, prio, seq))
        sim.step()
    return sched, sim.now, sim.event_count


def assert_identical_schedule(build):
    new = trace_schedule(live_kernel, build)
    old = trace_schedule(seed_kernel, build)
    assert new[0] == old[0], "schedule (time, priority, seq) diverged"
    assert new[1] == old[1], "final virtual time diverged"
    assert new[2] == old[2], "event_count diverged"
    return new


# ---------------------------------------------------------------------------
# kernel workloads
# ---------------------------------------------------------------------------
def build_timeout_storm(sim, mod):
    def proc(sim, k, d):
        for i in range(k):
            yield sim.timeout(d * (1 + (i % 3)))
    for j in range(5):
        sim.process(proc(sim, 40, 0.5 + 0.25 * j))


def build_process_chain(sim, mod):
    def child(sim, depth):
        yield sim.timeout(1.0)
        if depth:
            v = yield sim.process(child(sim, depth - 1))
            return v + 1
        return 0
    def root(sim):
        v = yield sim.process(child(sim, 10))
        assert v == 10
    sim.process(root(sim))


def build_conditions(sim, mod):
    def waiter(sim):
        evs = [sim.timeout(float(i % 4)) for i in range(16)]
        yield mod.AllOf(sim, evs)
        first = yield mod.AnyOf(sim, [sim.timeout(3.0), sim.timeout(1.0)])
        assert first[1] is None
    for _ in range(6):
        sim.process(waiter(sim))


def build_already_processed_resume(sim, mod):
    done = sim.event()
    done.succeed("early")
    def late(sim):
        yield sim.timeout(2.0)
        v = yield done            # already processed: resume-wake fast path
        assert v == "early"
        yield done                # and again
    sim.process(late(sim))
    sim.process(late(sim))


def build_schedule_call_chains(sim, mod):
    out = []
    def hop(i):
        if i < 30:
            sim.schedule_call(0.5 * (i % 5), lambda: hop(i + 1))
        out.append(i)
    sim.schedule_call(1.0, lambda: hop(0))
    def proc(sim):
        yield sim.timeout(4.0)
        sim.schedule_call(0.0, lambda: out.append("zero-delay"))
    sim.process(proc(sim))


def build_interrupt_sleeping(sim, mod):
    # The plain sleeping-process interrupt behaves identically on both
    # kernels (the fixed races need triggered-but-unprocessed targets).
    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except mod.Interrupt:
            yield sim.timeout(1.0)
    p = sim.process(sleeper(sim))
    sim.schedule_call(2.0, lambda: p.interrupt("wake"))


def build_urgent_ties(sim, mod):
    order = []
    def quick(sim, tag):
        yield sim.timeout(5.0)
        order.append(tag)        # completion wakes are URGENT at t=5
    for tag in range(8):
        sim.process(quick(sim, tag))
    sim.schedule_call(5.0, lambda: order.append("normal"))


def build_failing_processes(sim, mod):
    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("boom")
    def guard(sim):
        try:
            yield sim.process(bad(sim))
        except RuntimeError:
            yield sim.timeout(0.5)
    sim.process(guard(sim))


WORKLOADS = [build_timeout_storm, build_process_chain, build_conditions,
             build_already_processed_resume, build_schedule_call_chains,
             build_interrupt_sleeping, build_urgent_ties,
             build_failing_processes]


@pytest.mark.parametrize("build", WORKLOADS,
                         ids=lambda b: b.__name__.replace("build_", ""))
def test_schedule_bit_identical_to_seed_kernel(build):
    sched, _now, count = assert_identical_schedule(build)
    assert count == len(sched) and count > 0
    # seq values strictly increase within one (time, priority) tie class
    by_key = {}
    for t, prio, seq in sched:
        key = (t, prio)
        assert by_key.get(key, -1) < seq
        by_key[key] = seq


def test_batched_schedule_calls_matches_seed_individual_calls():
    """schedule_calls() must push heap tuples identical to a loop of
    seed-kernel schedule_call()s."""
    pairs = [(3.0, lambda: None), (0.0, lambda: None), (1.5, lambda: None),
             (1.5, lambda: None), (7.25, lambda: None)]

    def build_batched(sim, mod):
        if hasattr(sim, "schedule_calls"):
            sim.schedule_calls(pairs)
        else:
            for d, fn in pairs:
                sim.schedule_call(d, fn)

    assert_identical_schedule(build_batched)


# ---------------------------------------------------------------------------
# end-to-end golden values captured from the seed kernel (pre-fast-path)
# ---------------------------------------------------------------------------
GOLDEN_MESSAGE_RATE = [
    # (config, inject_time_us, comm_time_us) for
    # MessageRateParams(msg_size=8, batch=50, total_msgs=2000,
    #                   inject_rate_kps=200.0), seed=7
    ("mpi", 9942.827805390223, 9953.554842100666),
    ("mpi_i", 9808.548227200472, 9911.956400001256),
    ("lci_psr_cq_pin_i", 9788.916742360374, 9815.27039999989),
    ("lci_sr_sy_mt", 9957.228369905555, 10002.455300129022),
    ("mpi_orig", 9969.84220000193, 9984.819200002068),
]

GOLDEN_LATENCY = [
    # (config, total_time_us) for LatencyParams(8, window=16, steps=30),
    # seed=7
    ("mpi_i", 2107.6731999998888),
    ("lci_psr_cq_pin_i", 562.6053963056061),
]

GOLDEN_OCTOTIGER = [
    # (config, total_time_us) for OctoTigerBenchParams(n_localities=2,
    # paper_level=4, n_steps=1), seed=7
    ("mpi_i", 210793.64027123534),
    ("lci_psr_cq_pin_i", 203394.30973565462),
]


@pytest.mark.parametrize("cfg,inject_us,comm_us", GOLDEN_MESSAGE_RATE,
                         ids=[c for c, _, _ in GOLDEN_MESSAGE_RATE])
def test_message_rate_results_byte_identical_to_seed(cfg, inject_us,
                                                     comm_us):
    from repro.bench.message_rate import (MessageRateParams,
                                          run_message_rate)
    params = MessageRateParams(msg_size=8, batch=50, total_msgs=2000,
                               inject_rate_kps=200.0)
    res = run_message_rate(cfg, params, seed=7)
    assert res.inject_time_us == inject_us
    assert res.comm_time_us == comm_us


@pytest.mark.parametrize("cfg,total_us", GOLDEN_LATENCY,
                         ids=[c for c, _ in GOLDEN_LATENCY])
def test_latency_results_byte_identical_to_seed(cfg, total_us):
    from repro.bench.latency import LatencyParams, run_latency
    res = run_latency(cfg, LatencyParams(msg_size=8, window=16, steps=30),
                      seed=7)
    assert res.total_time_us == total_us


@pytest.mark.parametrize("cfg,total_us", GOLDEN_OCTOTIGER,
                         ids=[c for c, _ in GOLDEN_OCTOTIGER])
def test_octotiger_results_byte_identical_to_seed(cfg, total_us):
    from repro.bench.octotiger_bench import (OctoTigerBenchParams,
                                             run_octotiger)
    res = run_octotiger(cfg, OctoTigerBenchParams(n_localities=2,
                                                  paper_level=4, n_steps=1),
                        seed=7)
    assert res["total_time_us"] == total_us
