"""Tests for FigureResult plumbing and figure metadata (no slow sweeps)."""

import pytest

from repro.bench import FigureResult, Series
from repro.bench.figures import ALL_CONFIGS, MPI_VS_LCI


def make_result():
    s1 = Series("a")
    s1.add(1, 10)
    s1.add(10, 100)
    s2 = Series("b")
    s2.add(1, 20)
    return FigureResult("figX", "title", [s1, s2], x_name="x", y_name="y")


def test_by_label_lookup():
    r = make_result()
    assert r.by_label("a").peak == 100
    with pytest.raises(KeyError, match="figX"):
        r.by_label("missing")


def test_render_contains_table_and_plot():
    r = make_result()
    text = r.render()
    assert "figX" in text
    assert "title" in text
    assert "a" in text and "b" in text
    # multiple x values -> an ascii plot is included
    assert "log" in text


def test_render_skips_plot_for_single_x():
    s = Series("only")
    s.add(1, 5)
    r = FigureResult("f", "t", [s])
    assert "log" not in r.render()


def test_render_plot_suppressible():
    r = make_result()
    assert "log" not in r.render(plot=False)


def test_config_sets_match_paper():
    # Figs 1/4 compare MPI with/without immediate against LCI baseline
    assert MPI_VS_LCI == ["mpi", "mpi_i", "lci_psr_cq_pin",
                          "lci_psr_cq_pin_i"]
    # Figs 3/6/7/8/9 use the 11 configurations of the paper
    assert len(ALL_CONFIGS) == 11
    assert "lci_psr_cq_pin" in ALL_CONFIGS     # the no-immediate baseline
    assert "mpi" in ALL_CONFIGS and "mpi_i" in ALL_CONFIGS
    assert sum(1 for c in ALL_CONFIGS if c.startswith("lci")) == 9
