"""Tests for RNG streams, statistics containers and the CLI plumbing."""

import pytest

from repro.bench.cli import main as cli_main
from repro.sim import RngPool, StatSet, TimeSeries
from repro.sim.stats import summarize


# ---------------------------------------------------------------------------
# RngPool
# ---------------------------------------------------------------------------
def test_streams_are_deterministic_per_seed_and_name():
    a = RngPool(42).stream("x").random(5)
    b = RngPool(42).stream("x").random(5)
    assert (a == b).all()


def test_streams_differ_across_names_and_seeds():
    pool = RngPool(42)
    x = pool.stream("x").random(5)
    y = pool.stream("y").random(5)
    assert not (x == y).all()
    other = RngPool(43).stream("x").random(5)
    assert not (x == other).all()


def test_stream_is_cached():
    pool = RngPool(1)
    assert pool.stream("s") is pool.stream("s")


def test_jitter_positive_and_centered():
    pool = RngPool(7)
    draws = [pool.jitter("j", 100.0, cv=0.1) for _ in range(200)]
    assert all(d > 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 90.0 < mean < 110.0


def test_jitter_degenerate_inputs():
    pool = RngPool(7)
    assert pool.jitter("j", 0.0) == 0.0
    assert pool.jitter("j", 50.0, cv=0.0) == 50.0


# ---------------------------------------------------------------------------
# StatSet / TimeSeries
# ---------------------------------------------------------------------------
def test_statset_counters_accumulators_series():
    s = StatSet("s")
    s.inc("a")
    s.inc("a", 2)
    s.add("t", 1.5)
    s.sample("ts", 1.0, 10.0)
    s.sample("ts", 2.0, 20.0)
    assert s.counters["a"] == 3
    assert s.accum["t"] == 1.5
    assert s.series["ts"].mean() == 15.0
    assert s.series["ts"].max() == 20.0
    assert len(s.series["ts"]) == 2


def test_statset_merge():
    a, b = StatSet("a"), StatSet("b")
    a.inc("x")
    b.inc("x", 4)
    b.add("y", 2.0)
    b.sample("z", 0.0, 1.0)
    a.merge(b)
    assert a.counters["x"] == 5
    assert a.accum["y"] == 2.0
    assert len(a.series["z"]) == 1


def test_statset_as_dict_combines():
    s = StatSet()
    s.inc("n", 2)
    s.add("t", 0.5)
    assert s.as_dict() == {"n": 2, "t": 0.5}


def test_timeseries_empty_safe():
    ts = TimeSeries()
    assert ts.mean() == 0.0
    assert ts.max() == 0.0


def test_summarize_empty():
    assert summarize([])["n"] == 0


def test_summarize_population_std():
    s = summarize([2.0, 4.0])
    assert s["mean"] == 3.0
    assert s["std"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_tables(capsys):
    assert cli_main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "putsendrecv" in out
    assert "expanse" in out


def test_cli_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        cli_main(["fig99"])


def test_cli_help_lists_figures(capsys):
    with pytest.raises(SystemExit):
        cli_main(["--help"])
    out = capsys.readouterr().out
    assert "fig1" in out and "fig11" in out


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def test_tracer_disabled_by_default():
    from repro.sim import Simulator, Tracer
    sim = Simulator()
    tr = Tracer(sim)
    tr.emit("x", "ignored")
    assert len(tr) == 0


def test_tracer_records_and_filters():
    from repro.sim import Simulator, Tracer
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable(categories=["net"])
    sim.schedule_call(5.0, lambda: tr.emit("net", "tx", size=64))
    sim.schedule_call(6.0, lambda: tr.emit("sched", "ignored"))
    sim.run()
    evs = tr.events()
    assert len(evs) == 1
    assert evs[0].t == 5.0
    assert evs[0].fields == {"size": 64}
    assert "tx" in tr.render()
    assert "size=64" in tr.render()


def test_tracer_ring_buffer_drops_oldest():
    from repro.sim import Simulator, Tracer
    sim = Simulator()
    tr = Tracer(sim, capacity=3)
    tr.enable()
    for i in range(5):
        tr.emit("c", f"e{i}")
    assert len(tr) == 3
    assert tr.dropped == 2
    assert [e.text for e in tr.events()] == ["e2", "e3", "e4"]
    tr.clear()
    assert len(tr) == 0 and tr.dropped == 0


def test_tracer_since_and_predicate_filters():
    from repro.sim import Simulator, Tracer
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable()
    for t, name in [(1.0, "a"), (2.0, "b"), (3.0, "c")]:
        sim.schedule_call(t, lambda n=name: tr.emit("k", n))
    sim.run()
    assert [e.text for e in tr.events(since=2.0)] == ["b", "c"]
    assert [e.text for e in tr.events(
        predicate=lambda e: e.text != "b")] == ["a", "c"]


def test_cli_validate_flag_runs_shape_checks(capsys):
    # fig7 is the fastest figure (~4s quick) with registered checks
    rc = cli_main(["fig7", "--no-plot", "--validate"])
    out = capsys.readouterr().out
    assert "[PASS]" in out or "[FAIL]" in out
    assert rc in (0, 1)
    # our calibrated defaults must actually pass
    assert rc == 0, out
