"""Unit tests for FifoChannel and MPSCQueue."""

import pytest

from repro.sim import FifoChannel, MPSCQueue, Simulator


def test_fifo_channel_put_then_get():
    sim = Simulator()
    ch = FifoChannel(sim)
    ch.put("a")
    ch.put("b")
    got = []

    def consumer(sim):
        got.append((yield ch.get()))
        got.append((yield ch.get()))

    sim.process(consumer(sim))
    sim.run()
    assert got == ["a", "b"]


def test_fifo_channel_blocking_get():
    sim = Simulator()
    ch = FifoChannel(sim)
    got = []

    def consumer(sim):
        got.append((yield ch.get()))
        got.append(sim.now)

    sim.process(consumer(sim))
    sim.schedule_call(3.0, lambda: ch.put("late"))
    sim.run()
    assert got == ["late", 3.0]


def test_fifo_channel_try_get():
    sim = Simulator()
    ch = FifoChannel(sim)
    assert ch.try_get() is None
    ch.put(1)
    assert len(ch) == 1
    assert ch.try_get() == 1
    assert ch.try_get() is None


def test_fifo_channel_multiple_getters_fifo():
    sim = Simulator()
    ch = FifoChannel(sim)
    got = []

    def consumer(sim, tag):
        v = yield ch.get()
        got.append((tag, v))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))
    sim.schedule_call(1.0, lambda: ch.put("x"))
    sim.schedule_call(2.0, lambda: ch.put("y"))
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_mpsc_push_pop_roundtrip():
    sim = Simulator()
    q = MPSCQueue(sim)

    def producer(sim):
        yield q.push("item")

    sim.process(producer(sim))
    sim.run()
    item, cost = q.pop()
    assert item == "item"
    assert cost == q.pop_cost
    assert q.pushes == 1
    assert q.pops == 1


def test_mpsc_empty_pop_cheaper():
    sim = Simulator()
    q = MPSCQueue(sim)
    item, cost = q.pop()
    assert item is None
    assert cost < q.pop_cost
    assert q.empty_pops == 1


def test_mpsc_push_costs_time():
    sim = Simulator()
    q = MPSCQueue(sim, push_cost=1.0, contention_factor=0.0)
    t = []

    def producer(sim):
        yield q.push("a")
        t.append(sim.now)

    sim.process(producer(sim))
    sim.run()
    assert t == [1.0]


def test_mpsc_preserves_fifo_under_concurrent_pushes():
    sim = Simulator()
    q = MPSCQueue(sim, push_cost=0.5, contention_factor=0.0)

    def producer(sim, v, delay):
        yield sim.timeout(delay)
        yield q.push(v)

    for i, d in enumerate([0.0, 0.1, 0.2]):
        sim.process(producer(sim, i, d))
    sim.run()
    out = [q.pop()[0] for _ in range(3)]
    assert out == [0, 1, 2]
    assert q.max_depth == 3
