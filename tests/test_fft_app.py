"""Collectives + distributed-FFT test battery (``pytest -m collectives``).

Four contracts, mirroring docs/COLLECTIVES.md:

* the root-based data collectives (scatter / gather / all_gather) and
  the direct-exchange ``all_to_all`` move the right values, for any
  payload shape, with out-of-order arrivals and heavy op_id reuse;
* the distributed FFT equals the naive reference DFT on every
  parcelport configuration and locality count, bit-identically across
  configs;
* every run is deterministic — timelines, summaries and figure points
  are replay-identical, including under ``--jobs 2`` and a warm cache;
* the transpose incast survives adversity (drops, slow receivers,
  squeezed pools) exactly-once with conserved credits, and engages the
  flow-control machinery under high offered load.
"""

import math
import random

import pytest

from repro import (FaultPlan, FlowControlPolicy, LAPTOP, RetryPolicy,
                   make_runtime)
from repro.apps.fft import (COMPLEX_BYTES, FftConfig, FftDriver, fft,
                            is_pow2, naive_dft, twiddle)
from repro.bench.fft_bench import FftBenchParams, run_fft
from repro.hpx_rt.collectives import Collectives

pytestmark = pytest.mark.collectives

#: three Table-1 configuration families (one-sided LCI, improved MPI
#: with and without immediate completion) — the correctness matrix
CONFIGS = ["lci_psr_cq_pin_i", "mpi_i", "mpi"]


# ---------------------------------------------------------------------------
# harness: run one generator body on every locality
# ---------------------------------------------------------------------------
def run_collective(fn_builder, n_loc=3, config="lci_psr_cq_pin_i",
                   seed=1234, **rt_kw):
    """Boot a runtime, run ``fn_builder(coll, results, worker, lid)``."""
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc,
                      seed=seed, **rt_kw)
    coll = Collectives(rt)
    done = rt.new_latch(n_loc)
    results = {}

    def make_task(lid):
        def task(worker):
            yield from fn_builder(coll, results, worker, lid)
            done.count_down()
        return task

    rt.boot()
    for lid in range(n_loc):
        rt.locality(lid).spawn(make_task(lid))
    rt.run_until(done, max_events=5_000_000)
    assert done.open, "collective bodies did not all complete"
    return rt, results


# ---------------------------------------------------------------------------
# the FFT kernel vs the reference DFT (pure math, no runtime)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n", [1, 2, 4, 8, 32, 128])
def test_fft_kernel_matches_naive_dft(n):
    rng = random.Random(50 + n)
    x = [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(n)]
    got = fft(x)
    want = naive_dft(x)
    assert max(abs(a - b) for a, b in zip(got, want)) < 1e-9 * max(1, n)


def test_fft_kernel_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        fft([0j] * 12)


def test_is_pow2_and_twiddle_basics():
    assert [m for m in range(1, 9) if is_pow2(m)] == [1, 2, 4, 8]
    assert not is_pow2(0)
    assert twiddle(4, 0) == pytest.approx(1.0)
    assert twiddle(4, 1) == pytest.approx(-1j)
    # twiddle is periodic in the exponent
    assert twiddle(8, 3) == pytest.approx(twiddle(8, 11))


# ---------------------------------------------------------------------------
# scatter / gather / all_gather
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_loc", [2, 3, 5])
def test_scatter_delivers_indexed_slice(n_loc):
    def body(coll, results, worker, lid):
        values = [f"item{j}" for j in range(n_loc)] if lid == 0 else None
        got = yield from coll.scatter(worker, "sc", values, size=64)
        results[lid] = got

    _, results = run_collective(body, n_loc=n_loc)
    assert results == {lid: f"item{lid}" for lid in range(n_loc)}


def test_scatter_requires_root_values_of_right_length():
    def body(coll, results, worker, lid):
        # the root validates before participating, so peers must not
        # enter the op (they would wait forever on a dead generation)
        if lid == 0:
            with pytest.raises(ValueError):
                yield from coll.scatter(worker, "sc_bad", [1, 2], size=8)
            with pytest.raises(ValueError):
                yield from coll.scatter(worker, "sc_none", None, size=8)
        yield worker.cpu(1.0)

    run_collective(body, n_loc=3)


@pytest.mark.parametrize("n_loc", [2, 4])
def test_gather_collects_in_locality_order_at_root_only(n_loc):
    def body(coll, results, worker, lid):
        # staggered entry: contributions arrive out of order
        yield worker.cpu(float(n_loc - lid) * 7.0)
        got = yield from coll.gather(worker, "ga", lid * 11, size=8)
        results[lid] = got

    _, results = run_collective(body, n_loc=n_loc)
    assert results[0] == [lid * 11 for lid in range(n_loc)]
    assert all(results[lid] is None for lid in range(1, n_loc))


@pytest.mark.parametrize("n_loc", [2, 3, 6])
def test_all_gather_delivers_full_list_everywhere(n_loc):
    def body(coll, results, worker, lid):
        yield worker.cpu(float(lid) * 3.0)
        got = yield from coll.all_gather(worker, "ag", (lid, lid ** 2),
                                         size=16)
        results[lid] = got

    _, results = run_collective(body, n_loc=n_loc)
    want = [(lid, lid ** 2) for lid in range(n_loc)]
    assert all(results[lid] == want for lid in range(n_loc))


# ---------------------------------------------------------------------------
# all_to_all: matrix transpose, randomized payload shapes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_loc,seed", [(2, 0), (3, 1), (4, 2), (8, 3)])
def test_all_to_all_transposes_randomized_payloads(n_loc, seed):
    rng = random.Random(seed)
    # ragged, heterogeneous chunks: values[src][dest]
    matrix = [[(src, dest, tuple(rng.sample(range(100), rng.randint(0, 4))))
               for dest in range(n_loc)] for src in range(n_loc)]

    def body(coll, results, worker, lid):
        yield worker.cpu(float((lid * 13) % 5))
        got = yield from coll.all_to_all(worker, "a2a", matrix[lid],
                                         size=128)
        results[lid] = got

    _, results = run_collective(body, n_loc=n_loc)
    for dest in range(n_loc):
        assert results[dest] == [matrix[src][dest] for src in range(n_loc)]


@pytest.mark.parametrize("n_loc,seed", [(3, 10), (4, 11)])
def test_all_to_all_fragmented_reassembles_in_index_order(n_loc, seed):
    rng = random.Random(seed)
    # variable fragment counts per (src, dest) pair
    matrix = [[[f"s{src}d{dest}p{p}" for p in range(rng.randint(1, 5))]
               for dest in range(n_loc)] for src in range(n_loc)]

    def body(coll, results, worker, lid):
        yield worker.cpu(float((n_loc - lid) * 4))
        got = yield from coll.all_to_all(worker, "a2af", matrix[lid],
                                         size=32, fragment=True)
        results[lid] = got

    _, results = run_collective(body, n_loc=n_loc)
    for dest in range(n_loc):
        assert results[dest] == [matrix[src][dest] for src in range(n_loc)]


def test_all_to_all_validates_chunk_count_and_empty_fragments():
    def body(coll, results, worker, lid):
        with pytest.raises(ValueError):
            yield from coll.all_to_all(worker, "bad_n", [1, 2])
        with pytest.raises(ValueError):
            yield from coll.all_to_all(worker, "bad_frag", [[], [1], [2]],
                                       fragment=True)

    run_collective(body, n_loc=3)


# ---------------------------------------------------------------------------
# generation reuse: same op_id in a loop, out-of-order arrivals
# ---------------------------------------------------------------------------
def test_generation_reuse_no_cross_talk_many_rounds():
    """The same op_id for many generations, with per-locality jitter so
    round ``k`` arrivals from a fast locality overlap round ``k-1``
    stragglers — results must never mix generations."""
    n_loc, rounds = 4, 12

    def body(coll, results, worker, lid):
        mine = []
        for k in range(rounds):
            # jitter scrambles arrival order across rounds
            yield worker.cpu(float((lid * 7 + k * 3) % 11))
            total = yield from coll.allreduce(worker, "loop", lid + k * 100,
                                              op="sum")
            mine.append(total)
        results[lid] = mine

    _, results = run_collective(body, n_loc=n_loc)
    base = sum(range(n_loc))
    want = [base + k * 100 * n_loc for k in range(rounds)]
    assert all(results[lid] == want for lid in range(n_loc))


def test_generation_reuse_all_to_all_rounds_stay_separate():
    n_loc, rounds = 3, 8

    def body(coll, results, worker, lid):
        mine = []
        for k in range(rounds):
            yield worker.cpu(float((lid * 5 + k) % 7))
            got = yield from coll.all_to_all(
                worker, "t", [(k, lid, dest) for dest in range(n_loc)],
                size=24)
            mine.append(got)
        results[lid] = mine

    _, results = run_collective(body, n_loc=n_loc)
    for lid in range(n_loc):
        assert results[lid] == [[(k, src, lid) for src in range(n_loc)]
                                for k in range(rounds)]


def test_generation_state_is_garbage_collected():
    """After completed rounds, no per-generation state may linger."""
    n_loc = 3

    def body(coll, results, worker, lid):
        for k in range(5):
            yield from coll.allreduce(worker, "gc", 1, op="sum")
            yield from coll.all_to_all(worker, "gc_x",
                                       [k] * n_loc, size=8)

    rt, _ = run_collective(body, n_loc=n_loc)
    # the Collectives object is created inside run_collective; re-find it
    # through the registered (bound-method) action
    coll = rt.actions["coll_arrive"].__self__
    assert coll._gather == {}
    assert coll._futures == {}
    assert coll._xchg == {}


# ---------------------------------------------------------------------------
# distributed FFT vs reference DFT: configs x locality counts
# ---------------------------------------------------------------------------
def _reference_spectrum(driver):
    return naive_dft(driver.input)


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("n_loc", [2, 4, 8])
def test_distributed_fft_matches_reference(config, n_loc):
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc,
                      seed=7000 + n_loc)
    driver = FftDriver(rt, FftConfig(n1=16, n2=16))
    res = driver.run(max_events=10_000_000)
    want = _reference_spectrum(driver)
    err = max(abs(a - b) for a, b in zip(res.output, want))
    assert err < 1e-9
    assert res.checksum == pytest.approx(sum(res.output))
    assert all(len(v) == 1 for v in res.phase_times_us.values())
    assert res.total_time_us > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_distributed_fft_random_inputs_and_shapes(seed):
    shapes = {1: (8, 32), 2: (32, 8), 3: (16, 16)}
    n1, n2 = shapes[seed]
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=4,
                      seed=seed * 977)
    driver = FftDriver(rt, FftConfig(n1=n1, n2=n2, fragment=False))
    res = driver.run(max_events=10_000_000)
    want = _reference_spectrum(driver)
    assert max(abs(a - b) for a, b in zip(res.output, want)) < 1e-9


def test_distributed_fft_output_bit_identical_across_configs():
    """Same seed => same input stream => bit-identical spectra, because
    the floating-point operation order is fixed by construction."""
    outs = []
    for config in CONFIGS:
        rt = make_runtime(config, platform=LAPTOP, n_localities=4,
                          seed=4242)
        res = FftDriver(rt, FftConfig(n1=16, n2=16)).run(
            max_events=10_000_000)
        outs.append(res.output)
    assert outs[0] == outs[1] == outs[2]


def test_fft_config_validation():
    with pytest.raises(ValueError):
        FftConfig(n1=12, n2=16).validate(4)
    with pytest.raises(ValueError):
        FftConfig(n1=16, n2=16).validate(3)
    with pytest.raises(ValueError):
        FftConfig(n1=16, n2=16, iterations=0).validate(4)


def test_fft_multiple_iterations_reuse_op_ids():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2,
                      seed=11)
    driver = FftDriver(rt, FftConfig(n1=8, n2=8, iterations=3))
    res = driver.run(max_events=10_000_000)
    assert all(len(v) == 3 for v in res.phase_times_us.values())
    want = _reference_spectrum(driver)
    assert max(abs(a - b) for a, b in zip(res.output, want)) < 1e-9


# ---------------------------------------------------------------------------
# determinism: timelines, summaries, figure points
# ---------------------------------------------------------------------------
def _fingerprint(config, **kw):
    params = FftBenchParams(n1=16, n2=16, n_localities=4,
                            credit_window=4, max_backlog=8, **kw)
    res = run_fft(config, params, seed=321)
    return (res.total_time_us, res.checksum,
            tuple(sorted(res.phase_times_us.items())),
            tuple(sorted(res.faults.items())))


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_fft_runs_are_replay_identical(config):
    assert _fingerprint(config) == _fingerprint(config)


def test_fft_flow_and_fault_summaries_are_replay_identical():
    def once():
        rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP,
                          n_localities=4, seed=77,
                          flow_policy=FlowControlPolicy(credit_window=4,
                                                        max_backlog=8),
                          reliable=True)
        driver = FftDriver(rt, FftConfig(n1=32, n2=32))
        driver.run(max_events=20_000_000)
        rt.run_until(rt.sim.now + 30000.0, max_events=1_000_000)
        flow = tuple(sorted((k, tuple(sorted(v.get("credits", {}).items())))
                            for k, v in rt.flow_summary().items()))
        return (rt.sim.now, tuple(sorted(rt.fault_summary().items())), flow)

    assert once() == once()


def test_fft_figure_points_invariant_under_jobs_and_cache(tmp_path):
    from repro.bench.parallel import ResultCache, fft_task, run_points

    tasks = [fft_task(config, n1=16, n2=16, n_localities=4,
                      platform=LAPTOP, seed=55, credit_window=4,
                      max_backlog=8)
             for config in CONFIGS]
    seq = run_points(tasks, jobs=1, no_cache=True)
    par = run_points(tasks, jobs=2, no_cache=True)
    assert seq == par
    cache = ResultCache(tmp_path)
    cold = run_points(tasks, jobs=1, cache=cache)
    warm = run_points(tasks, jobs=1, cache=cache)
    assert cold == seq
    assert warm == seq
    assert cache.stats()["hits"] >= len(tasks)


# ---------------------------------------------------------------------------
# incast under adversity: drops, slow receivers, squeezed pools
# ---------------------------------------------------------------------------
ADVERSITY = "drop=0.05,slow=50:800@1*2.5,squeeze=0:500@0*8"


def _run_fft_adverse(config, plan, n=16, n_loc=4, seed=909):
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc,
                      seed=seed, fault_plan=FaultPlan.parse(plan),
                      retry_policy=RetryPolicy(timeout_us=150.0,
                                               max_retries=30),
                      flow_policy=FlowControlPolicy(credit_window=4,
                                                    max_backlog=8),
                      reliable=True)
    driver = FftDriver(rt, FftConfig(n1=n, n2=n))
    res = driver.run(max_events=30_000_000)
    # let retransmit acks / credit returns drain fully
    rt.run_until(rt.sim.now + 60000.0, max_events=2_000_000)
    rt.shutdown()
    return rt, driver, res


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_incast_completes_exactly_once_under_adversity(config):
    rt, driver, res = _run_fft_adverse(config, ADVERSITY)
    want = naive_dft(driver.input)
    assert max(abs(a - b) for a, b in zip(res.output, want)) < 1e-9
    summary = rt.fault_summary()
    assert summary.get("retransmits", 0) > 0, "drops never exercised"
    # conservation: every credit back home, nothing tracked forever
    for loc in rt.localities:
        rel = loc.parcelport.reliability
        assert rel is not None
        assert rel.in_flight == 0
        for peer, left in rel._credits.items():
            assert left == rel.credit_window, (loc.lid, peer, left)
    assert summary.get("credits_consumed") == \
        summary.get("credits_replenished")


def test_high_offered_load_incast_engages_flow_control():
    """A 64x64 fragmented transpose at window 4 must visibly stall on
    credits and defer sends — the acceptance criterion of ISSUE.md."""
    params = FftBenchParams(n1=64, n2=64, n_localities=4,
                            credit_window=4, max_backlog=8,
                            platform=LAPTOP)
    res = run_fft("lci_psr_cq_pin_i", params, seed=1000)
    assert res.faults.get("credit_stalls", 0) > 0
    assert res.faults.get("puts_deferred", 0) > 0
    assert res.faults.get("backlogged_sends", 0) > 0


def test_unfragmented_small_fft_leaves_flow_idle():
    """The armed-but-unloaded policy must not engage on a tiny block
    transpose: counters exist but the workload fits the window."""
    params = FftBenchParams(n1=8, n2=8, n_localities=2, fragment=False,
                            credit_window=64, max_backlog=0,
                            platform=LAPTOP)
    res = run_fft("lci_psr_cq_pin_i", params, seed=5)
    assert res.faults.get("credit_stalls", 0) == 0
    assert res.faults.get("puts_deferred", 0) == 0


# ---------------------------------------------------------------------------
# the fft figures
# ---------------------------------------------------------------------------
def test_fft_smoke_reports_breakdown_and_flow_counters():
    from repro.bench.figures import FFT_CONFIGS, fft_smoke
    from repro.bench.validation import validate

    res = fft_smoke(quick=True)
    assert [s.label for s in res.series] == FFT_CONFIGS
    counters = res.meta["counters"]
    assert set(counters) == set(FFT_CONFIGS)
    for cfg in ("lci_psr_cq_pin_i", "lci_sr_cq_pin_i", "mpi_i"):
        assert counters[cfg]["credit_stalls"] > 0, cfg
    # critical-path decomposition present and incast-aware
    for cfg, rep in res.meta["reports"].items():
        assert "backlog_wait" in rep
        assert "progress" in rep
    assert all(c.passed for c in validate(res)), \
        [c.render() for c in validate(res)]


def test_fft_smoke_lci_polls_while_mpi_waits_on_lock():
    from repro.bench.figures import fft_smoke

    res = fft_smoke(quick=True)
    c = res.meta["counters"]
    assert c["lci_psr_cq_pin_i"]["lock_wait_pct"] == 0
    assert c["lci_psr_cq_pin_i"]["poll_pct"] > 0
    assert c["mpi"]["lock_wait_pct"] > c["mpi"]["poll_pct"]
    assert res.meta["dominant"]["mpi"] == "progress_lock_wait"
