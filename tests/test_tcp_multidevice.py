"""Tests for the TCP parcelport and the multi-device LCI extension."""

import pytest

from repro import LAPTOP, make_runtime
from repro.hpx_rt import HpxRuntime
from repro.lci_sim import DEFAULT_LCI_PARAMS
from repro.netsim import Fabric, NetMsg, TESTNET
from repro.parcelport import (PPConfig, TcpParcelport,
                              make_parcelport_factory)
from repro.sim import Simulator
from repro.tcp_sim import DEFAULT_TCP_PARAMS, TcpStack


class FakeWorker:
    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


# ---------------------------------------------------------------------------
# TCP stack
# ---------------------------------------------------------------------------
def make_tcp_pair(params=DEFAULT_TCP_PARAMS):
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = TcpStack(sim, fabric.add_node(0), rank=0, params=params)
    b = TcpStack(sim, fabric.add_node(1), rank=1, params=params)
    return sim, FakeWorker(sim), a, b


def test_tcp_message_roundtrip():
    sim, w, a, b = make_tcp_pair()
    got = []

    def sender():
        yield from a.send_msg(w, 1, 500, meta="hello")

    def receiver():
        yield sim.timeout(100.0)
        ready = yield from b.poll(w)
        got.extend(ready)

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=10000)
    assert got == [(0, "hello")]
    assert b.stats.counters["msgs_recv"] == 1


def test_tcp_segments_large_messages():
    params = DEFAULT_TCP_PARAMS.with_(mss_bytes=1000)
    sim, w, a, b = make_tcp_pair(params)
    got = []

    def sender():
        yield from a.send_msg(w, 1, 3500, meta="big")

    def receiver():
        yield sim.timeout(100.0)
        while not got:
            ready = yield from b.poll(w)
            got.extend(ready)
            yield sim.timeout(1.0)

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=100000)
    assert got == [(0, "big")]
    assert a.stats.counters["segments_sent"] == 4
    assert b.stats.counters["segments_recv"] == 4


def test_tcp_first_send_pays_connect():
    sim, w, a, b = make_tcp_pair()
    times = []

    def sender():
        t0 = sim.now
        yield from a.send_msg(w, 1, 10, meta=None)
        times.append(sim.now - t0)
        t0 = sim.now
        yield from a.send_msg(w, 1, 10, meta=None)
        times.append(sim.now - t0)

    sim.process(sender())
    sim.run(max_events=10000)
    assert times[0] > times[1]  # handshake only once
    assert times[0] - times[1] == pytest.approx(DEFAULT_TCP_PARAMS.connect_us)
    assert a.stats.counters["connects"] == 1


def test_tcp_streams_preserve_order():
    sim, w, a, b = make_tcp_pair()
    got = []

    def sender():
        for i in range(5):
            yield from a.send_msg(w, 1, 100, meta=i)

    def receiver():
        yield sim.timeout(200.0)
        while len(got) < 5:
            ready = yield from b.poll(w)
            got.extend(m for _, m in ready)
            yield sim.timeout(1.0)

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=100000)
    assert got == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------------
# TCP parcelport end-to-end
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["tcp", "tcp_i"])
def test_tcp_parcelport_echo(config):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    done = rt.new_latch(6)
    got = []

    def sink(worker, i, blob):
        got.append(i)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(6):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "x"),
                                            arg_sizes=[8, 20000])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=2_000_000)
    assert sorted(got) == list(range(6))
    assert isinstance(rt.localities[0].parcelport, TcpParcelport)


def test_tcp_slower_than_lci():
    """The paper's premise: TCP is the legacy, slowest parcelport."""
    def latency(config):
        rt = make_runtime(config, platform=LAPTOP, n_localities=2)
        done = rt.new_latch(1)

        def sink(worker, blob):
            done.count_down()
            return None

        rt.register_action("sink", sink)

        def sender(worker):
            yield from rt.locality(0).apply(worker, 1, "sink", ("x",),
                                            arg_sizes=[4096])

        rt.boot()
        rt.locality(0).spawn(sender)
        rt.run_until(done, max_events=1_000_000)
        return rt.now

    assert latency("tcp_i") > latency("lci_psr_cq_pin_i")


# ---------------------------------------------------------------------------
# multi-device LCI (§7.2 extension)
# ---------------------------------------------------------------------------
def make_multidev_runtime(num_devices, config="lci_psr_cq_mt_i"):
    cfg = PPConfig.parse(config)
    params = DEFAULT_LCI_PARAMS.with_(num_devices=num_devices)
    factory = make_parcelport_factory(cfg, lci_params=params)
    return HpxRuntime(LAPTOP, 2, factory, immediate=cfg.immediate)


@pytest.mark.parametrize("config", ["lci_psr_cq_mt_i", "lci_sr_sy_pin_i"])
def test_multi_device_delivers_correctly(config):
    rt = make_multidev_runtime(3, config)
    done = rt.new_latch(12)
    got = []

    def sink(worker, i, blob):
        got.append(i)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(12):
            # mix of small and zero-copy messages across devices
            size = 20000 if i % 3 == 0 else 64
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "x"),
                                            arg_sizes=[8, size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    assert sorted(got) == list(range(12))


def test_multi_device_spreads_traffic():
    rt = make_multidev_runtime(3)
    done = rt.new_latch(30)

    def sink(worker, i):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(30):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,))

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    pp = rt.localities[0].parcelport
    assert len(pp.devices) == 3
    used = [d.stats.counters.get("putva", 0) for d in pp.devices]
    # the tag-block hash spreads headers over every device
    assert all(u > 0 for u in used)
    assert sum(used) == 30


def test_single_device_is_default():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP)
    rt.boot()
    assert len(rt.localities[0].parcelport.devices) == 1
    assert rt.localities[0].parcelport.device is \
        rt.localities[0].parcelport.devices[0]
