"""Tests for worker-thread scheduling internals."""

import pytest

from repro import LAPTOP, make_runtime
from repro.hpx_rt import EXPANSE
from repro.hpx_rt.scheduler import Scheduler
from repro.hpx_rt.task import Task
from repro.sim import Event, Simulator


# ---------------------------------------------------------------------------
# Scheduler data structure
# ---------------------------------------------------------------------------
def test_scheduler_fifo_order():
    sim = Simulator()
    sched = Scheduler(sim)
    for i in range(3):
        sched.push(Task(lambda w: None, name=f"t{i}"))
    names = [sched.try_pop().name for _ in range(3)]
    assert names == ["t0", "t1", "t2"]
    assert sched.try_pop() is None
    assert sched.stats.counters["tasks_pushed"] == 3


def test_scheduler_notify_wakes_one_sleeper():
    sim = Simulator()
    sched = Scheduler(sim)
    evs = [Event(sim) for _ in range(3)]
    for ev in evs:
        sched.register_sleeper(ev)
    sched.notify()
    sim.run()
    assert sum(1 for ev in evs if ev.triggered) == 1


def test_scheduler_notify_skips_stale_entries():
    sim = Simulator()
    sched = Scheduler(sim)
    stale = Event(sim)
    live = Event(sim)
    sched.register_sleeper(stale)
    sched.register_sleeper(live)
    stale.succeed()          # woken by a timeout elsewhere
    sched.notify()           # must not crash, must wake `live`
    assert live.triggered


def test_scheduler_notify_all():
    sim = Simulator()
    sched = Scheduler(sim)
    evs = [Event(sim) for _ in range(4)]
    for ev in evs:
        sched.register_sleeper(ev)
    sched.notify_all()
    assert all(ev.triggered for ev in evs)


def test_unregister_sleeper_tolerates_missing():
    sim = Simulator()
    sched = Scheduler(sim)
    ev = Event(sim)
    sched.unregister_sleeper(ev)  # no-op, no exception


@pytest.mark.parametrize("rng_seed", [3, 17, 101, 2024])
def test_sleeper_cancellation_order_matches_linear_reference(rng_seed):
    """Tombstoned wake list == the seed's O(n) list under random churn.

    The scheduler replaced ``deque.remove`` (O(n) per timed-out sleeper)
    with lazy tombstones plus periodic compaction.  That is purely a
    representation change: under any interleaving of register /
    unregister / notify the same events must wake, in the same order, as
    the seed's plain remove-from-list implementation.
    """
    import random

    rng = random.Random(rng_seed)
    sim = Simulator()
    sched = Scheduler(sim)
    reference = []          # the seed behaviour: a list with .remove()
    cancelled = []
    for _ in range(800):
        op = rng.random()
        if op < 0.45 or not reference:
            ev = Event(sim)
            sched.register_sleeper(ev)
            reference.append(ev)
        elif op < 0.75:
            # a sleeper times out and withdraws (cancellation path)
            ev = reference.pop(rng.randrange(len(reference)))
            sched.unregister_sleeper(ev)
            cancelled.append(ev)
        else:
            n = rng.randrange(1, 4)
            expect, rest = reference[:n], reference[n:]
            sched.notify(n)
            # exactly the first n live sleepers woke — FIFO order held
            # at every step pins the global wake order
            assert all(ev.triggered for ev in expect)
            assert not any(ev.triggered for ev in rest)
            reference = rest
    sched.notify_all()
    assert all(ev.triggered for ev in reference)
    assert not any(ev.triggered for ev in cancelled)


# ---------------------------------------------------------------------------
# Worker behaviour
# ---------------------------------------------------------------------------
def test_tasks_execute_on_multiple_workers():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    done = rt.new_latch(8)
    cores = set()

    def job(worker):
        cores.add(worker.core_id)
        yield worker.cpu(50.0)
        done.count_down()

    rt.boot()
    for _ in range(8):
        rt.locality(0).spawn(job)
    rt.run_until(done)
    # 4 cores -> parallel execution across more than one worker
    assert len(cores) > 1


def test_parallel_speedup_from_workers():
    def span(n_tasks):
        rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
        done = rt.new_latch(n_tasks)

        def job(worker):
            yield worker.cpu(100.0)
            done.count_down()

        rt.boot()
        for _ in range(n_tasks):
            rt.locality(0).spawn(job)
        rt.run_until(done)
        return rt.now

    # 4 tasks on 4 cores take about as long as 1 task, not 4x
    assert span(4) < 2.0 * span(1)


def test_compute_granular_interleaves_background():
    rt = make_runtime("lci_psr_cq_pin_i", platform=EXPANSE, n_localities=1)
    done = rt.new_latch(1)

    def job(worker):
        yield from worker.compute_granular(8000.0)  # several slices
        done.count_down()

    rt.boot()
    rt.locality(0).spawn(job)
    rt.run_until(done)
    w = rt.localities[0].workers[0]
    # compute time recorded is weight-scaled
    assert w.stats.accum["compute_us"] == pytest.approx(
        8000.0 / EXPANSE.thread_weight)
    # virtual time exceeds the pure compute (background slices ran)
    assert rt.now > 8000.0 / EXPANSE.thread_weight


def test_idle_workers_sleep_not_spin():
    """An idle runtime must not burn unbounded events."""
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    rt.boot()
    rt.run_until(50_000.0, max_events=30_000)  # 50 ms idle
    # exponential backoff keeps the event count tiny
    assert rt.sim.event_count < 30_000


def test_worker_wakes_quickly_on_task_arrival():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    rt.boot()
    rt.run_until(30_000.0)   # let workers back off deeply
    done = rt.new_future()

    def job(worker):
        done.set_result(rt.now)
        return None

    t0 = rt.now
    rt.locality(0).spawn(job)
    finished = rt.run_until(done)
    assert finished - t0 < 50.0  # notify bypasses the long poll backoff
