"""Unit tests for parcels, chunking and the zero-copy threshold."""

import pytest

from repro.hpx_rt import (CostModel, HpxMessage, Parcel, deserialize_cost,
                          serialize_cost, serialize_parcels, split_args)
from repro.hpx_rt.parcel import (PARCEL_METADATA_BYTES,
                                 TRANSMISSION_ENTRY_BYTES)

COST = CostModel()
THRESH = COST.zero_copy_threshold


def test_parcel_default_arg_sizes():
    p = Parcel("act", dest=1, src=0, args=(1, 2, 3))
    assert p.arg_sizes == (8, 8, 8)
    assert p.payload_bytes == 24
    assert p.serialized_bytes == PARCEL_METADATA_BYTES + 24


def test_parcel_explicit_size_mismatch_raises():
    with pytest.raises(ValueError, match="does not match"):
        Parcel("act", dest=1, src=0, args=(1, 2), arg_sizes=(8,))


def test_parcel_negative_size_raises():
    with pytest.raises(ValueError):
        Parcel("act", dest=1, src=0, args=(1,), arg_sizes=(-1,))


def test_split_args_respects_threshold():
    p = Parcel("act", dest=1, src=0, args=("s", "b", "s2"),
               arg_sizes=(100, THRESH, THRESH - 1))
    small, zc = split_args(p, THRESH)
    assert small == PARCEL_METADATA_BYTES + 100 + (THRESH - 1)
    assert zc == [THRESH]


def test_serialize_single_small_parcel():
    p = Parcel("act", dest=1, src=0, args=("x",), arg_sizes=(8,))
    msg = serialize_parcels([p], COST)
    assert msg.non_zc_size == PARCEL_METADATA_BYTES + 8
    assert msg.zc_sizes == []
    assert msg.trans_size == 0
    assert not msg.has_zero_copy
    # without zero-copy chunks the plan is just the non-zc chunk
    assert msg.chunk_plan() == [("non_zc", msg.non_zc_size)]


def test_serialize_with_zero_copy_chunks():
    p = Parcel("act", dest=1, src=0, args=("a", "b"),
               arg_sizes=(16384, 70000))
    msg = serialize_parcels([p], COST)
    assert msg.zc_sizes == [16384, 70000]
    assert msg.trans_size == 2 * TRANSMISSION_ENTRY_BYTES
    plan = msg.chunk_plan()
    assert plan[0][0] == "non_zc"
    assert plan[1] == ("trans", msg.trans_size)
    assert plan[2:] == [("zc", 16384), ("zc", 70000)]


def test_serialize_aggregated_batch():
    parcels = [Parcel("act", dest=2, src=0, args=("x",), arg_sizes=(50,))
               for _ in range(10)]
    msg = serialize_parcels(parcels, COST)
    assert msg.num_parcels == 10
    assert msg.non_zc_size == 10 * (PARCEL_METADATA_BYTES + 50)
    assert msg.total_bytes == msg.non_zc_size


def test_serialize_mixed_destinations_rejected():
    p1 = Parcel("act", dest=1, src=0, args=())
    p2 = Parcel("act", dest=2, src=0, args=())
    with pytest.raises(ValueError, match="share destination"):
        serialize_parcels([p1, p2], COST)


def test_serialize_empty_batch_rejected():
    with pytest.raises(ValueError):
        serialize_parcels([], COST)


def test_zero_copy_chunks_do_not_cost_serialization():
    small = Parcel("act", dest=1, src=0, args=("x",), arg_sizes=(100,))
    big = Parcel("act", dest=1, src=0, args=("x", "z"),
                 arg_sizes=(100, 10 ** 6))
    m_small = serialize_parcels([small], COST)
    m_big = serialize_parcels([big], COST)
    # The megabyte zero-copy argument adds only the transmission-chunk
    # entry to serialization cost — the payload itself is never copied.
    delta = serialize_cost(m_big, COST) - serialize_cost(m_small, COST)
    assert delta == pytest.approx(
        TRANSMISSION_ENTRY_BYTES * COST.serialize_per_byte_us)
    assert deserialize_cost(m_big, COST) < COST.deserialize_cost(10 ** 6)


def test_threshold_boundary_exact():
    at = Parcel("a", dest=1, src=0, args=("x",), arg_sizes=(THRESH,))
    below = Parcel("a", dest=1, src=0, args=("x",), arg_sizes=(THRESH - 1,))
    assert serialize_parcels([at], COST).has_zero_copy
    assert not serialize_parcels([below], COST).has_zero_copy


def test_total_bytes_accounting():
    p = Parcel("act", dest=1, src=0, args=("a", "b"),
               arg_sizes=(10, 20000))
    msg = serialize_parcels([p], COST)
    assert msg.total_bytes == (PARCEL_METADATA_BYTES + 10) + 20000 \
        + TRANSMISSION_ENTRY_BYTES
