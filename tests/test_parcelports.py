"""Integration tests across the full parcelport variant matrix.

Every Table-1 configuration must deliver the same application-level
results; the variants differ only in *how fast* they move parcels.
"""

import pytest

from repro import ALL_LCI_VARIANTS, LAPTOP, make_runtime
from repro.parcelport import PPConfig, make_parcelport_factory
from repro.parcelport.lci_pp import LciParcelport
from repro.parcelport.mpi_pp import MpiParcelport

ALL_CONFIGS = (["lci_psr_cq_pin", "lci_psr_sy_mt", "mpi", "mpi_i",
                "mpi_orig"] + ALL_LCI_VARIANTS)


def run_echo(config, n_msgs=8, size=8, n_loc=2, max_events=3_000_000):
    """n_msgs of `size` bytes from locality 0 to each other locality;
    each sink echoes an ack back.  Returns (runtime, received, acked)."""
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc)
    received = []
    acked = []
    total = n_msgs * (n_loc - 1)
    done = rt.new_latch(total)

    def sink(worker, i, payload):
        received.append((worker.locality.lid, i))
        yield from worker.locality.apply(worker, 0, "ack", (i,))

    def ack(worker, i):
        acked.append(i)
        done.count_down()
        return None

    rt.register_action("sink", sink)
    rt.register_action("ack", ack)

    def sender(worker):
        for i in range(n_msgs):
            for dest in range(1, n_loc):
                yield from rt.locality(0).apply(
                    worker, dest, "sink", (i, "x"), arg_sizes=[8, size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=max_events)
    return rt, received, acked


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_small_message_echo_all_variants(config):
    rt, received, acked = run_echo(config, n_msgs=6, size=8)
    assert len(received) == 6
    assert sorted(acked) == list(range(6))


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "lci_sr_sy_mt_i",
                                    "mpi", "mpi_i", "mpi_orig"])
def test_zero_copy_message_echo(config):
    rt, received, acked = run_echo(config, n_msgs=4, size=20000)
    assert len(received) == 4
    assert sorted(acked) == list(range(4))


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_three_locality_fanout(config):
    rt, received, acked = run_echo(config, n_msgs=5, size=4096, n_loc=3)
    assert len(received) == 10
    by_loc = {lid for lid, _ in received}
    assert by_loc == {1, 2}


def test_factory_resolves_backend_classes():
    rt = make_runtime("mpi", platform=LAPTOP)
    rt.boot()
    assert isinstance(rt.localities[0].parcelport, MpiParcelport)
    rt2 = make_runtime("lci_sr_sy_mt", platform=LAPTOP)
    rt2.boot()
    pp = rt2.localities[0].parcelport
    assert isinstance(pp, LciParcelport)
    assert pp.protocol == "sr"
    assert pp.completion == "sy"
    assert not pp.reserves_progress_core


def test_factory_carries_config_attribute():
    f = make_parcelport_factory("lci_psr_cq_pin_i")
    assert f.config.label == "lci_psr_cq_pin_i"


def test_wrong_backend_config_rejected():
    rt = make_runtime("lci", platform=LAPTOP)
    loc = rt.localities[0]
    with pytest.raises(ValueError):
        MpiParcelport(loc, PPConfig.parse("lci"))
    with pytest.raises(ValueError):
        LciParcelport(loc, PPConfig.parse("mpi"))


def test_original_mpi_uses_tag_release_protocol():
    rt, received, acked = run_echo("mpi_orig", n_msgs=4, size=20000)
    pp0 = rt.localities[0].parcelport
    pp1 = rt.localities[1].parcelport
    # zero-copy messages have follow-ups -> receiver sends tag releases
    assert pp1.stats.counters.get("tag_releases_sent", 0) > 0
    assert pp0.stats.counters.get("tag_releases_received", 0) > 0
    # released tags actually return to the provider free list at some point
    assert pp0.tag_provider.free_count >= 0


def test_improved_mpi_has_no_tag_release_traffic():
    rt, *_ = run_echo("mpi", n_msgs=4, size=20000)
    for loc in rt.localities:
        assert loc.parcelport.stats.counters.get("tag_releases_sent", 0) == 0


def test_original_header_always_512_bytes_on_wire():
    rt, *_ = run_echo("mpi_orig", n_msgs=3, size=8)
    # All header messages carry the full static 512 B buffer.
    nic0 = rt.localities[0].nic
    # 3 sinks + acks; headers dominate tx bytes: every header is 512+64
    assert rt.localities[0].parcelport.max_header == 512


def test_lci_psr_sends_no_two_sided_headers():
    rt, *_ = run_echo("lci_psr_cq_pin_i", n_msgs=5, size=8)
    dev = rt.localities[1].parcelport.device
    assert dev.stats.counters.get("puts_delivered", 0) >= 5
    assert dev.stats.counters.get("recvm_posted", 0) == 0  # no headers posted


def test_lci_sr_uses_persistent_header_recv():
    rt, *_ = run_echo("lci_sr_cq_pin_i", n_msgs=5, size=8)
    dev = rt.localities[1].parcelport.device
    assert dev.stats.counters.get("puts_delivered", 0) == 0
    got = dev.stats.counters.get("recvm_posted", 0) \
        + dev.stats.counters.get("recvm_unexpected", 0)
    assert got >= 5


def test_lci_sy_mode_uses_synchronizer_list():
    rt, *_ = run_echo("lci_psr_sy_pin_i", n_msgs=4, size=20000)
    pp = rt.localities[0].parcelport
    # chunk sends completed through synchronizers, not the comp CQ
    assert pp.comp_cq.stats.counters.get("signals", 0) == 0


def test_lci_cq_mode_uses_completion_queue():
    rt, *_ = run_echo("lci_psr_cq_pin_i", n_msgs=4, size=20000)
    pp = rt.localities[0].parcelport
    assert pp.comp_cq.stats.counters.get("signals", 0) > 0


def test_pin_mode_runs_dedicated_progress_thread():
    rt, *_ = run_echo("lci_psr_cq_pin_i", n_msgs=4, size=8)
    dev = rt.localities[1].parcelport.device
    assert dev.stats.counters["progress_calls"] > 0
    # pinned progress keeps a constant caller: no contended attempts
    assert dev.progress_lock.failures == 0


def test_mt_mode_workers_call_progress():
    rt, *_ = run_echo("lci_psr_cq_mt_i", n_msgs=4, size=8)
    dev = rt.localities[1].parcelport.device
    assert dev.stats.counters["progress_calls"] > 0


def test_distinct_tags_per_lci_followup_message():
    """LCI draws one tag per follow-up message (out-of-order safety)."""
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2)
    done = rt.new_latch(1)

    def sink(worker, a, b, c):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        # three zero-copy args -> three follow-up messages, distinct tags
        yield from rt.locality(0).apply(
            worker, 1, "sink", ("a", "b", "c"),
            arg_sizes=[20000, 30000, 40000])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=1_000_000)
    # tag counter advanced by 3 in one block
    assert rt.localities[0].parcelport.tags._counter.value == 3
