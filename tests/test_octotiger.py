"""Tests for the mini Octo-Tiger: octree, SFC partition, FMM graph, driver."""

import pytest

from repro import LAPTOP, make_runtime
from repro.apps.octotiger import (FmmModel, OctoTigerConfig, OctoTigerDriver,
                                  build_octree, compute_neighbors, morton_key,
                                  partition_octree)


# ---------------------------------------------------------------------------
# octree
# ---------------------------------------------------------------------------
def test_uniform_tree_counts():
    t = build_octree(max_level=2, base_level=2)
    assert len(t.leaves) == 64
    assert len(t.interiors) == 1 + 8
    assert len(t) == 73
    assert t.max_level == 2


def test_adaptive_refinement_concentrates_near_stars():
    t = build_octree(max_level=4, base_level=3)
    assert len(t.leaves) > 512          # something refined
    deep = [l for l in t.leaves if l.level == 4]
    assert deep
    # refined leaves sit near the star band (x in [0.2, 0.8], y,z mid)
    for leaf in deep:
        cx, cy, cz = leaf.centre()
        assert 0.1 < cx < 0.9
        assert 0.2 < cy < 0.8


def test_tree_parent_child_consistency():
    t = build_octree(max_level=3, base_level=2)
    for n in t.nodes:
        for c in n.children:
            assert c.parent is n
            assert c.level == n.level + 1
            assert c.x >> 1 == n.x and c.y >> 1 == n.y and c.z >> 1 == n.z
        if n.children:
            assert len(n.children) == 8


def test_find_containing_leaf():
    t = build_octree(max_level=3, base_level=2)
    finest = t.max_level
    top = 1 << finest
    for (x, y, z) in [(0, 0, 0), (top - 1, top - 1, top - 1),
                      (top // 2, top // 3, top // 4)]:
        leaf = t.find_containing_leaf(finest, x, y, z)
        assert leaf is not None and leaf.is_leaf
        # the found leaf's cell contains the query cell
        shift = finest - leaf.level
        assert leaf.x == x >> shift
        assert leaf.y == y >> shift
        assert leaf.z == z >> shift
    assert t.find_containing_leaf(finest, -1, 0, 0) is None
    assert t.find_containing_leaf(finest, top, 0, 0) is None


def test_invalid_levels_rejected():
    with pytest.raises(ValueError):
        build_octree(max_level=1, base_level=2)


# ---------------------------------------------------------------------------
# SFC partitioning
# ---------------------------------------------------------------------------
def test_morton_key_orders_parents_with_first_child():
    assert morton_key(0, 0, 0, 1) == morton_key(0, 0, 0, 2)
    assert morton_key(1, 0, 0, 1) == morton_key(2, 0, 0, 2)


def test_morton_key_distinct_for_distinct_cells():
    keys = {morton_key(x, y, z, 3)
            for x in range(8) for y in range(8) for z in range(8)}
    assert len(keys) == 512


def test_partition_covers_all_nodes_and_balances():
    t = build_octree(max_level=3, base_level=3)
    owners = partition_octree(t, 4)
    assert set(owners) == {n.nid for n in t.nodes}
    counts = [0, 0, 0, 0]
    for leaf in t.leaves:
        counts[leaf.owner] += 1
    assert max(counts) - min(counts) <= 1     # equal-leaf cuts
    # SFC locality: interior owned by a locality that owns one of its leaves
    for node in t.interiors:
        descendants = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                descendants.add(n.owner)
            stack.extend(n.children)
        assert node.owner in descendants


def test_partition_single_locality():
    t = build_octree(max_level=2, base_level=2)
    partition_octree(t, 1)
    assert all(n.owner == 0 for n in t.nodes)


def test_partition_invalid():
    t = build_octree(max_level=2, base_level=2)
    with pytest.raises(ValueError):
        partition_octree(t, 0)


# ---------------------------------------------------------------------------
# FMM structure
# ---------------------------------------------------------------------------
def test_neighbors_symmetric_and_no_self():
    t = build_octree(max_level=4, base_level=3)
    nbrs = compute_neighbors(t)
    for nid, lst in nbrs.items():
        assert nid not in lst
        for m in lst:
            assert nid in nbrs[m]


def test_uniform_tree_neighbor_counts():
    t = build_octree(max_level=2, base_level=2)
    nbrs = compute_neighbors(t)
    # a 4x4x4 uniform grid: corner leaves have 3 face neighbours,
    # interior leaves have 6
    counts = sorted(len(v) for v in nbrs.values())
    assert counts[0] == 3
    assert counts[-1] == 6


def test_cross_level_neighbors_exist_in_adaptive_tree():
    t = build_octree(max_level=4, base_level=3)
    nbrs = compute_neighbors(t)
    cross = 0
    for nid, lst in nbrs.items():
        for m in lst:
            if t.node(nid).level != t.node(m).level:
                cross += 1
    assert cross > 0


def test_fmm_model_census():
    t = build_octree(max_level=3, base_level=3)
    partition_octree(t, 4)
    model = FmmModel(t, 4, substeps=2, fields=3)
    census = model.census()
    assert census["leaves"] == 512
    assert census["boundary_msgs_per_step"] % (2 * 3) == 0
    assert census["m2m_msgs_per_step"] == census["l2l_msgs_per_step"]
    # expected inputs account for substeps x fields
    some_leaf = t.leaves[0].nid
    assert model.expected_boundary[some_leaf] == \
        len(model.neighbors[some_leaf]) * 6


def test_for_paper_level_mapping():
    c6 = OctoTigerConfig.for_paper_level(6)
    assert c6.max_level == 4 and c6.base_level == 3
    c5 = OctoTigerConfig.for_paper_level(5)
    assert c5.max_level == 4
    # shallower paper level keeps the floored tree but carries the level
    # difference in per-leaf compute (heavier -> lower comm share)
    assert c5.leaf_compute_us != c6.leaf_compute_us


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi"])
def test_driver_completes_steps(config):
    rt = make_runtime(config, platform=LAPTOP, n_localities=4)
    cfg = OctoTigerConfig(max_level=2, base_level=2, n_steps=2,
                          substeps=1, boundary_fields=1,
                          leaf_compute_us=200.0, update_compute_us=100.0,
                          interior_compute_us=50.0, l2l_compute_us=20.0)
    drv = OctoTigerDriver(rt, cfg)
    res = drv.run(max_events=5_000_000)
    assert len(res.step_times_us) == 2
    assert all(t > 0 for t in res.step_times_us)
    assert res.steps_per_second > 0
    assert res.census["leaves"] == 64


def test_driver_step_determinism():
    def one():
        rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP,
                          n_localities=2, seed=123)
        cfg = OctoTigerConfig(max_level=2, base_level=2, n_steps=1,
                              substeps=1, boundary_fields=1,
                              leaf_compute_us=100.0, update_compute_us=50.0,
                              interior_compute_us=20.0, l2l_compute_us=10.0)
        return OctoTigerDriver(rt, cfg).run(max_events=5_000_000)

    r1, r2 = one(), one()
    assert r1.step_times_us == r2.step_times_us


def test_driver_single_locality_all_local():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    cfg = OctoTigerConfig(max_level=2, base_level=2, n_steps=1,
                          substeps=1, boundary_fields=1,
                          leaf_compute_us=100.0, update_compute_us=50.0,
                          interior_compute_us=20.0, l2l_compute_us=10.0)
    res = OctoTigerDriver(rt, cfg).run(max_events=5_000_000)
    assert res.steps_per_second > 0
    assert rt.fabric.stats.counters.get("msgs", 0) == 0


# ---------------------------------------------------------------------------
# adaptive regridding
# ---------------------------------------------------------------------------
def test_star_positions_orbit():
    import math
    from repro.apps.octotiger import build_octree
    from repro.apps.octotiger.octree import star_positions
    a0, b0 = star_positions(0.0)
    a1, b1 = star_positions(math.pi)
    # half an orbit swaps the stars
    assert a1 == pytest.approx(b0)
    assert b1 == pytest.approx(a0)
    # refinement follows the stars
    t0 = build_octree(4, 3, phase=0.0)
    t1 = build_octree(4, 3, phase=math.pi / 2)
    k0 = {n.key for n in t0.leaves}
    k1 = {n.key for n in t1.leaves}
    assert k0 != k1


def test_driver_regrids_and_migrates():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=4)
    cfg = OctoTigerConfig(max_level=4, base_level=3, n_steps=4,
                          regrid_interval=2, substeps=1, boundary_fields=1,
                          leaf_compute_us=300.0, update_compute_us=150.0,
                          interior_compute_us=80.0, l2l_compute_us=40.0)
    res = OctoTigerDriver(rt, cfg).run(max_events=30_000_000)
    assert res.census["regrids"] == 1
    assert res.census["migrated_leaves"] > 0
    assert len(res.step_times_us) == 4


def test_driver_static_tree_when_regrid_disabled():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2)
    cfg = OctoTigerConfig(max_level=2, base_level=2, n_steps=3,
                          regrid_interval=0, substeps=1, boundary_fields=1,
                          leaf_compute_us=100.0, update_compute_us=50.0,
                          interior_compute_us=30.0, l2l_compute_us=10.0)
    res = OctoTigerDriver(rt, cfg).run(max_events=10_000_000)
    assert res.census["regrids"] == 0
    assert res.census["migrated_leaves"] == 0


def test_regrid_steps_slower_than_static_steps():
    def total(regrid):
        rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP,
                          n_localities=4, seed=3)
        cfg = OctoTigerConfig(max_level=4, base_level=3, n_steps=4,
                              regrid_interval=regrid, substeps=1,
                              boundary_fields=1,
                              leaf_compute_us=300.0,
                              update_compute_us=150.0,
                              interior_compute_us=80.0,
                              l2l_compute_us=40.0)
        return OctoTigerDriver(rt, cfg).run(
            max_events=30_000_000).total_time_us

    assert total(regrid=1) > total(regrid=0)
