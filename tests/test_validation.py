"""Tests for the shape-check validation engine."""

import pytest

from repro.bench import CheckResult, FigureResult, Series, checks_for, validate
from repro.bench.validation import CHECKS


def fig_with(figure, data):
    series = []
    for label, ys in data.items():
        s = Series(label)
        for i, y in enumerate(ys):
            s.add(float(i + 1), y)
        series.append(s)
    return FigureResult(figure, "t", series)


def test_every_registered_figure_has_checks():
    for name in ("fig1", "fig2", "fig4", "fig5", "fig7", "fig8", "fig9",
                 "fig10", "fig11"):
        assert checks_for(name), name
    assert checks_for("fig3") == []   # covered via fig1/fig2 targets


def test_fig1_checks_pass_on_paper_like_shape():
    r = fig_with("fig1", {
        "lci_psr_cq_pin_i": [100, 800],
        "lci_psr_cq_pin": [100, 450],
        "mpi": [100, 450],
        "mpi_i": [100, 250],
    })
    results = validate(r)
    assert results and all(c.passed for c in results)


def test_fig1_checks_fail_when_mpi_wins():
    r = fig_with("fig1", {
        "lci_psr_cq_pin_i": [100, 300],
        "lci_psr_cq_pin": [100, 450],
        "mpi": [100, 800],
        "mpi_i": [100, 700],
    })
    assert any(not c.passed for c in validate(r))


def test_fig4_decline_check():
    good = fig_with("fig4", {
        "lci_psr_cq_pin_i": [100, 220, 225],
        "lci_psr_cq_pin": [90, 120, 110],
        "mpi": [100, 150, 80],
        "mpi_i": [40, 80, 20],
    })
    assert all(c.passed for c in validate(good))
    flat_mpi = fig_with("fig4", {
        "lci_psr_cq_pin_i": [100, 220, 225],
        "lci_psr_cq_pin": [90, 120, 110],
        "mpi": [100, 120, 130],   # no decline -> fail
        "mpi_i": [40, 80, 20],
    })
    assert any(not c.passed for c in validate(flat_mpi))


def test_fig7_latency_ordering_check():
    good = fig_with("fig7", {
        "lci_psr_cq_pin_i": [4, 10],
        "lci_psr_cq_pin": [6, 12],
        "mpi": [7, 15],
        "mpi_i": [5, 13],
    })
    assert all(c.passed for c in validate(good))
    bad = fig_with("fig7", {
        "lci_psr_cq_pin_i": [8, 20],   # slower than mpi_i -> fail
        "lci_psr_cq_pin": [6, 12],
        "mpi": [7, 15],
        "mpi_i": [5, 13],
    })
    assert any(not c.passed for c in validate(bad))


def test_fig10_collapse_check():
    good = fig_with("fig10", {
        "lci": [9, 80],
        "mpi": [8, 55],
        "mpi_i": [8, 13],
    })
    assert all(c.passed for c in validate(good))


def test_missing_series_reported_not_raised():
    r = fig_with("fig1", {"lci_psr_cq_pin_i": [1, 2]})
    results = validate(r)
    assert results
    assert all(not c.passed for c in results)
    assert any("missing series" in c.detail for c in results)


def test_checkresult_render():
    c = CheckResult("x", True, "fine")
    assert c.render() == "[PASS] x: fine"
    assert "[FAIL]" in CheckResult("x", False, "bad").render()


def test_unknown_figure_validates_empty():
    r = fig_with("fig99", {"a": [1]})
    assert validate(r) == []
