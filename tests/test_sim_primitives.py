"""Unit tests for locks, atomics and serial resources."""

import pytest

from repro.sim import (AtomicCell, ContentionMeter, SerialResource, Simulator,
                       SpinLock, TryLock)


# ---------------------------------------------------------------------------
# SpinLock
# ---------------------------------------------------------------------------
def test_spinlock_mutual_exclusion_and_fifo():
    sim = Simulator()
    lock = SpinLock(sim, acquire_cost=0.0)
    order = []

    def proc(sim, tag, hold):
        yield lock.acquire()
        order.append((tag, "in", sim.now))
        yield sim.timeout(hold)
        order.append((tag, "out", sim.now))
        lock.release()

    for i, hold in enumerate([3.0, 2.0, 1.0]):
        sim.process(proc(sim, i, hold))
    sim.run()
    # FIFO: 0 in/out, then 1, then 2; no overlap.
    tags = [t for t, what, _ in order]
    assert tags == [0, 0, 1, 1, 2, 2]
    times = [t for _, _, t in order]
    assert times == sorted(times)


def test_spinlock_release_unheld_raises():
    sim = Simulator()
    lock = SpinLock(sim)
    with pytest.raises(RuntimeError):
        lock.release()


def test_spinlock_wait_statistics():
    sim = Simulator()
    lock = SpinLock(sim, acquire_cost=0.0)

    def holder(sim):
        yield lock.acquire()
        yield sim.timeout(10.0)
        lock.release()

    def waiter(sim):
        yield lock.acquire()
        lock.release()

    sim.process(holder(sim))
    sim.process(waiter(sim))
    sim.run()
    assert lock.total_wait_us == pytest.approx(10.0)
    assert lock.acquisitions == 2
    assert lock.max_queue == 1


def test_spinlock_acquire_cost_delays_owner():
    sim = Simulator()
    lock = SpinLock(sim, acquire_cost=0.5)
    t = []

    def proc(sim):
        yield lock.acquire()
        t.append(sim.now)
        lock.release()

    sim.process(proc(sim))
    sim.run()
    assert t == [0.5]


# ---------------------------------------------------------------------------
# TryLock
# ---------------------------------------------------------------------------
def test_trylock_fail_fast():
    sim = Simulator()
    tl = TryLock(sim)
    assert tl.try_acquire() is True
    assert tl.try_acquire() is False
    tl.release()
    assert tl.try_acquire() is True
    assert tl.attempts == 3
    assert tl.failures == 1
    assert tl.failure_rate == pytest.approx(1 / 3)


def test_trylock_release_unheld_raises():
    sim = Simulator()
    tl = TryLock(sim)
    with pytest.raises(RuntimeError):
        tl.release()


# ---------------------------------------------------------------------------
# SerialResource
# ---------------------------------------------------------------------------
def test_serial_resource_serializes_requests():
    sim = Simulator()
    res = SerialResource(sim)
    done = []

    def proc(sim, tag):
        yield res.request(2.0)
        done.append((tag, sim.now))

    for tag in range(3):
        sim.process(proc(sim, tag))
    sim.run()
    assert done == [(0, 2.0), (1, 4.0), (2, 6.0)]
    assert res.served == 3
    assert res.total_busy_us == pytest.approx(6.0)


def test_serial_resource_idle_gap_resets_queue():
    sim = Simulator()
    res = SerialResource(sim)
    done = []

    def first(sim):
        yield res.request(1.0)
        done.append(sim.now)

    def second(sim):
        yield sim.timeout(10.0)
        yield res.request(1.0)
        done.append(sim.now)

    sim.process(first(sim))
    sim.process(second(sim))
    sim.run()
    assert done == [1.0, 11.0]
    assert res.total_queued_us == 0.0


def test_serial_resource_utilization():
    sim = Simulator()
    res = SerialResource(sim)

    def proc(sim):
        yield res.request(4.0)
        yield sim.timeout(4.0)

    sim.process(proc(sim))
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# AtomicCell
# ---------------------------------------------------------------------------
def test_atomic_fetch_add_returns_previous_and_serializes():
    sim = Simulator()
    cell = AtomicCell(sim, op_cost=1.0, contention_factor=0.0)
    got = []

    def proc(sim):
        old = yield cell.fetch_add(5)
        got.append((old, sim.now))

    sim.process(proc(sim))
    sim.process(proc(sim))
    sim.run()
    assert [g[0] for g in got] == [0, 5]
    assert cell.value == 10
    # ops serialize through the cache line: 1.0 then 2.0
    assert [g[1] for g in got] == [1.0, 2.0]


def test_atomic_contention_inflates_cost():
    sim = Simulator()
    cell = AtomicCell(sim, op_cost=1.0, contention_factor=1.0)
    finish = []

    def proc(sim):
        yield cell.fetch_add(1)
        finish.append(sim.now)

    for _ in range(3):
        sim.process(proc(sim))
    sim.run()
    # Second and third ops pay the contention surcharge.
    assert finish[0] == pytest.approx(1.0)
    assert finish[1] > 2.0
    assert finish[2] > finish[1] + 1.0


def test_atomic_relaxed_ops_are_free():
    sim = Simulator()
    cell = AtomicCell(sim, value=7)
    assert cell.load() == 7
    assert cell.add_relaxed(3) == 7
    assert cell.value == 10
    assert sim.now == 0.0


# ---------------------------------------------------------------------------
# ContentionMeter
# ---------------------------------------------------------------------------
def test_contention_meter_accumulates_and_decays():
    m = ContentionMeter(tau_us=10.0)
    assert m.touch(0.0) == 0.0
    assert m.touch(0.0) == 1.0
    assert m.touch(0.0) == 2.0
    # after a full window, pressure decays to zero
    assert m.pressure(20.0) == 0.0
    assert m.touch(20.0) == 0.0


def test_contention_meter_partial_decay():
    m = ContentionMeter(tau_us=10.0)
    m.touch(0.0)
    m.touch(0.0)
    # at t=5 half the window elapsed -> half pressure remains
    assert m.pressure(5.0) == pytest.approx(1.0)
