"""Adaptive-policy controller + auto-tuner tests (pytest -m adapt).

Three contracts:

* **Byte-identity when off** — a runtime built without ``adapt=`` must
  produce exactly the results it produced before the subsystem existed,
  across fault/flow/trace feature combinations (the committed
  ``results/fig1.txt`` diff in CI is the end-to-end half of this).
* **Determinism when on** — an adaptive run is a pure function of
  ``(config, spec, params, seed)``: rerunning it, fanning it across
  worker processes, or replaying it through a warm cache all yield the
  identical result dict, controller counters included.
* **The tuner emits a valid artifact** — ``run_tune`` writes a
  ``BENCH_tune.json`` that passes ``validate_bench``, and the committed
  artifact records a tuned config that beats the paper's best static
  configuration.
"""

import json
from pathlib import Path

import pytest

from repro import FaultPlan, FlowControlPolicy, make_runtime
from repro.adapt import AdaptiveSpec
from repro.bench.message_rate import MessageRateParams, run_message_rate
from repro.bench.parallel import (evaluate_point, execution,
                                  message_rate_task, run_points)
from repro.hpx_rt.platform import EXPANSE
from repro.sim.shard import ShardContext, ShardingUnsupported, set_current

pytestmark = pytest.mark.adapt

P_SMALL = MessageRateParams(msg_size=8, batch=10, total_msgs=200,
                            inject_rate_kps=None, platform=EXPANSE)


# ---------------------------------------------------------------------------
# AdaptiveSpec validation + round-trip
# ---------------------------------------------------------------------------
def test_spec_defaults_valid():
    AdaptiveSpec()


@pytest.mark.parametrize("kw", [
    {"interval_us": 0.0},
    {"agg_hold_init": -1},
    {"agg_hold_start": 512, "agg_hold_max": 256},
    {"eager_scale_min": 0.0},
    {"eager_scale_init": 8.0},
    {"backlog_low": 9, "backlog_high": 8},
    {"contention_low": 0.9, "contention_high": 0.5},
    {"dwell_ticks": 0},
    {"step": 1.0},
])
def test_spec_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        AdaptiveSpec(**kw)


def test_spec_dict_roundtrip():
    spec = AdaptiveSpec(agg_hold_init=1024, eager_scale_init=0.5,
                        dwell_ticks=3)
    assert AdaptiveSpec.from_dict(spec.as_dict()) == spec


def test_spec_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown"):
        AdaptiveSpec.from_dict({"interval_us": 50.0, "bogus": 1})


# ---------------------------------------------------------------------------
# byte-identity when off
# ---------------------------------------------------------------------------
FEATURE_COMBOS = [
    {},
    {"fault_plan": FaultPlan.parse("drop=0.05")},
    {"flow_policy": FlowControlPolicy()},
    {"trace": "parcel"},
    {"fault_plan": FaultPlan.parse("drop=0.02,corrupt=0.01"),
     "flow_policy": FlowControlPolicy()},
]


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "lci_psr_cq_pin",
                                    "mpi"])
def test_adaptive_off_identity(config):
    """With ``adapt=None`` the result dict is identical to a run that
    never mentions the subsystem, for every feature combination — and an
    adaptive run in between leaks no state into later plain runs."""
    for kw in FEATURE_COMBOS:
        before = run_message_rate(config, P_SMALL, seed=5, **kw).as_dict()
        assert not any(k.startswith("adapt.") for k in before)
        # An adaptive run on the same config must not perturb anything.
        run_message_rate(config, P_SMALL, seed=5, adapt=AdaptiveSpec(),
                         **{k: v for k, v in kw.items() if k != "trace"})
        after = run_message_rate(config, P_SMALL, seed=5, adapt=None,
                                 **kw).as_dict()
        assert after == before


def test_adaptive_off_runtime_has_no_controller():
    rt = make_runtime("lci", platform=EXPANSE, n_localities=2, seed=1)
    rt.boot()
    try:
        assert rt.adapt is None
        for loc in rt.localities:
            assert loc.parcelport.adapt is None
    finally:
        rt.shutdown()


# ---------------------------------------------------------------------------
# determinism when on
# ---------------------------------------------------------------------------
def test_adaptive_run_deterministic():
    spec = AdaptiveSpec(agg_hold_init=512)
    a = run_message_rate("lci_psr_cq_pin", P_SMALL, seed=9,
                         adapt=spec).as_dict()
    b = run_message_rate("lci_psr_cq_pin", P_SMALL, seed=9,
                         adapt=spec).as_dict()
    assert a == b
    assert a["adapt.ticks"] > 0


def _adapt_tasks():
    spec = AdaptiveSpec(agg_hold_init=512).as_dict()
    return [message_rate_task("lci_psr_cq_pin", msg_size=8, batch=10,
                              total_msgs=200, inject_rate_kps=None,
                              platform=EXPANSE, seed=s, adapt=spec)
            for s in (3, 4)]


def test_adaptive_jobs_invariance():
    seq = [evaluate_point(t) for t in _adapt_tasks()]
    with execution(jobs=2):
        par = run_points(_adapt_tasks())
    assert par == seq


def test_adaptive_warm_cache_invariance(tmp_path):
    with execution(cache=tmp_path / "c") as pol:
        cold = run_points(_adapt_tasks())
        assert pol.cache.stats()["misses"] == 2
        warm = run_points(_adapt_tasks())
        assert warm == cold
        assert pol.cache.stats()["hits"] == 2
    assert cold == [evaluate_point(t) for t in _adapt_tasks()]


def test_adapt_in_cache_key_only_when_on(tmp_path):
    """A plain task's cache key must be unchanged by the subsystem (all
    pre-existing cache entries stay valid), and an adaptive task must
    never collide with its plain twin."""
    plain = message_rate_task("lci", msg_size=8, batch=10, total_msgs=200,
                              inject_rate_kps=None, platform=EXPANSE, seed=1)
    on = message_rate_task("lci", msg_size=8, batch=10, total_msgs=200,
                           inject_rate_kps=None, platform=EXPANSE, seed=1,
                           adapt=AdaptiveSpec().as_dict())
    assert "adapt" not in plain.params
    assert plain.canonical() != on.canonical()


# ---------------------------------------------------------------------------
# the controller actually controls
# ---------------------------------------------------------------------------
def test_controller_pins_worker_progress_under_contention():
    """On the worker-progress config the controller detects progress-lock
    contention and flips to a pinned engine — the adaptive run must beat
    the static one."""
    p = MessageRateParams(msg_size=8, batch=100, total_msgs=2000,
                          inject_rate_kps=None, platform=EXPANSE)
    plain = run_message_rate("lci_psr_cq_mt_i", p, seed=1)
    tuned = run_message_rate("lci_psr_cq_mt_i", p, seed=1,
                             adapt=AdaptiveSpec())
    assert tuned.adapt["retune.progress_pinned"] >= 1
    assert tuned.adapt["progress_pinned_final"] == 1.0
    assert tuned.message_rate_kps > plain.message_rate_kps * 1.5


def test_controller_inert_on_best_static_config():
    """On the paper's winner the signals stay in band: zero retunes and
    the exact static schedule (identical rate, not merely close)."""
    p = MessageRateParams(msg_size=8, batch=100, total_msgs=2000,
                          inject_rate_kps=None, platform=EXPANSE)
    plain = run_message_rate("lci_psr_cq_pin_i", p, seed=1)
    tuned = run_message_rate("lci_psr_cq_pin_i", p, seed=1,
                             adapt=AdaptiveSpec())
    assert tuned.adapt["retunes"] == 0.0
    assert tuned.message_rate_kps == plain.message_rate_kps


def test_aggregation_hold_engages_and_flushes():
    spec = AdaptiveSpec(agg_hold_init=4096)
    r = run_message_rate("lci_psr_cq_pin", P_SMALL, seed=2, adapt=spec)
    assert r.adapt["agg_hold_final"] >= 0
    # Every message still arrives: holds delay pumps, never drop them.
    assert r.message_rate_kps > 0


# ---------------------------------------------------------------------------
# sharding guard
# ---------------------------------------------------------------------------
def test_adapt_rejected_under_shards():
    set_current(ShardContext(0, 2))
    try:
        with pytest.raises(ShardingUnsupported, match="adapt"):
            make_runtime("lci", platform=EXPANSE, n_localities=2, seed=1,
                         adapt=AdaptiveSpec())
    finally:
        set_current(None)


def test_adapt_task_rejected_by_sharded_engine():
    task = _adapt_tasks()[0]
    with execution(shards=2):
        with pytest.raises(ShardingUnsupported, match="adapt"):
            run_points([task])


# ---------------------------------------------------------------------------
# the auto-tuner
# ---------------------------------------------------------------------------
def test_run_tune_smoke(tmp_path):
    from repro.adapt.tuner import run_tune
    rc = run_tune(workload="message_rate", out_dir=str(tmp_path),
                  configs=["lci_psr_cq_pin_i", "lci_psr_cq_mt_i"],
                  adapt_variants={"static": None, "auto": AdaptiveSpec()},
                  budgets=[200, 400])
    assert rc == 0
    doc = json.loads((tmp_path / "BENCH_tune.json").read_text())
    assert doc["kind"] == "tune"
    assert doc["baseline"]["config"] == "lci_psr_cq_pin_i"
    assert len(doc["rungs"]) == 2
    names = {c["name"] for c in doc["rungs"][0]["candidates"]}
    assert names == {"lci_psr_cq_pin_i", "lci_psr_cq_pin_i+auto",
                     "lci_psr_cq_mt_i", "lci_psr_cq_mt_i+auto"}
    assert doc["winner"]["score"] > 0
    from repro.bench.perfbench import validate_bench
    assert validate_bench(doc) == []


def test_committed_tune_artifact_beats_baseline():
    """The checked-in BENCH_tune.json must validate and must record a
    tuned configuration that beats ``lci_psr_cq_pin_i``."""
    path = Path(__file__).resolve().parent.parent / "BENCH_tune.json"
    doc = json.loads(path.read_text())
    from repro.bench.perfbench import validate_bench
    assert validate_bench(doc) == []
    assert doc["winner"]["improvement_pct"] > 0
    assert doc["baseline"]["config"] == "lci_psr_cq_pin_i"
