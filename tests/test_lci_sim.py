"""Unit tests for the simulated LCI library."""

import pytest

from repro.lci_sim import (CompletionQueue, DEFAULT_LCI_PARAMS,
                           HandlerCompletion, LciDevice, LciParams,
                           PacketPool, Synchronizer)
from repro.netsim import Fabric, TESTNET
from repro.sim import Simulator


class FakeWorker:
    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


def make_pair(params=DEFAULT_LCI_PARAMS):
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = LciDevice(sim, fabric.add_node(0), rank=0, params=params)
    b = LciDevice(sim, fabric.add_node(1), rank=1, params=params)
    for d in (a, b):
        d.put_target_cq = CompletionQueue(sim, params)
    return sim, FakeWorker(sim), a, b


def progress_until(sim, w, device, pred, max_iters=1000):
    def loop():
        for _ in range(max_iters):
            if pred():
                return
            yield from device.progress(w, caller="test")
            yield sim.timeout(0.5)
    return sim.process(loop())


# ---------------------------------------------------------------------------
# completion objects
# ---------------------------------------------------------------------------
def test_completion_queue_fifo_and_costs():
    sim = Simulator()
    cq = CompletionQueue(sim, DEFAULT_LCI_PARAMS)
    cq.signal("a")
    cq.signal("b")
    assert len(cq) == 2
    v1, c1 = cq.pop()
    v2, c2 = cq.pop()
    v3, c3 = cq.pop()
    assert (v1, v2, v3) == ("a", "b", None)
    assert c1 == DEFAULT_LCI_PARAMS.cq_pop_us
    assert c3 < c1  # empty pop cheaper
    assert cq.max_depth == 2


def test_synchronizer_single_shot():
    s = Synchronizer()
    assert not s.test()
    s.signal(("recv", None, "v"))
    assert s.test()
    assert s.value == ("recv", None, "v")


def test_handler_completion_invokes_function():
    hits = []
    h = HandlerCompletion(hits.append)
    h.signal("x")
    assert hits == ["x"]


# ---------------------------------------------------------------------------
# packet pool
# ---------------------------------------------------------------------------
def test_packet_pool_exhaustion_and_release():
    sim = Simulator()
    pool = PacketPool(sim, DEFAULT_LCI_PARAMS.with_(packet_count=2))
    assert pool.try_acquire()
    assert pool.try_acquire()
    assert not pool.try_acquire()  # non-blocking failure, LCI style
    assert pool.in_use == 2
    pool.release()
    assert pool.try_acquire()
    assert pool.stats.counters["exhaustions"] == 1


def test_packet_pool_release_at_delay():
    sim = Simulator()
    pool = PacketPool(sim, DEFAULT_LCI_PARAMS.with_(packet_count=1))
    assert pool.try_acquire()
    pool.release_at(5.0)
    assert pool.free == 0
    sim.run()
    assert pool.free == 1


def test_packet_pool_double_release_raises():
    sim = Simulator()
    pool = PacketPool(sim, DEFAULT_LCI_PARAMS.with_(packet_count=1))
    with pytest.raises(RuntimeError):
        pool.release()


# ---------------------------------------------------------------------------
# two-sided medium path
# ---------------------------------------------------------------------------
def test_sendm_recvm_posted_first():
    sim, w, a, b = make_pair()
    comp = Synchronizer()

    def receiver():
        yield from b.recvm(w, tag=7, size=64, comp=comp, ctx="rx")

    def sender():
        yield sim.timeout(1.0)
        ok = yield from a.sendm(w, 1, 64, tag=7, comp=None, payload="data")
        assert ok

    sim.process(receiver())
    sim.process(sender())
    progress_until(sim, w, b, comp.test)
    sim.run(max_events=50000)
    assert comp.test()
    kind, ctx, payload = comp.value
    assert (kind, ctx, payload) == ("recv", "rx", "data")


def test_sendm_unexpected_then_recvm():
    sim, w, a, b = make_pair()
    comp = Synchronizer()

    def sender():
        yield from a.sendm(w, 1, 64, tag=7, comp=None, payload="data")

    def receiver():
        yield sim.timeout(10.0)
        yield from b.progress(w, caller="rx")   # stash as unexpected
        assert b.unexpected_count == 1
        yield from b.recvm(w, tag=7, size=64, comp=comp, ctx="rx")

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=50000)
    assert comp.test()
    assert comp.value[2] == "data"
    assert b.unexpected_count == 0


def test_sendm_local_completion_at_injection():
    sim, w, a, b = make_pair()
    comp = Synchronizer()

    def sender():
        ok = yield from a.sendm(w, 1, 64, tag=1, comp=comp, payload=None)
        assert ok
        assert comp.test()   # medium sends complete locally

    sim.process(sender())
    sim.run(max_events=10000)


def test_sendm_pool_exhaustion_returns_false():
    params = DEFAULT_LCI_PARAMS.with_(packet_count=0)
    sim, w, a, b = make_pair(params)

    def sender():
        ok = yield from a.sendm(w, 1, 64, tag=1, comp=None, payload=None)
        assert ok is False

    sim.process(sender())
    sim.run(max_events=10000)


# ---------------------------------------------------------------------------
# one-sided dynamic put
# ---------------------------------------------------------------------------
def test_putva_lands_in_remote_cq():
    sim, w, a, b = make_pair()

    def sender():
        ok = yield from a.putva(w, 1, 256, ctx="hdr", payload="header",
                                assembled_in_place=True)
        assert ok

    sim.process(sender())
    progress_until(sim, w, b, lambda: len(b.put_target_cq) > 0)
    sim.run(max_events=50000)
    entry, _cost = b.put_target_cq.pop()
    kind, ctx, payload, size = entry
    assert kind == "put"
    assert payload == "header"
    assert size == 256


def test_putva_requires_configured_cq():
    sim, w, a, b = make_pair()
    b.put_target_cq = None

    def sender():
        yield from a.putva(w, 1, 64, payload="x")

    sim.process(sender())

    def poller():
        yield sim.timeout(10.0)
        yield from b.progress(w, caller="rx")

    sim.process(poller())
    with pytest.raises(RuntimeError, match="no\\s+pre-configured"):
        sim.run(max_events=50000)


# ---------------------------------------------------------------------------
# long (rendezvous) path
# ---------------------------------------------------------------------------
def test_sendl_recvl_roundtrip_both_orders():
    for recv_first in (True, False):
        sim, w, a, b = make_pair()
        scomp, rcomp = Synchronizer(), Synchronizer()

        def receiver():
            if not recv_first:
                yield sim.timeout(20.0)
            yield from b.recvl(w, tag=4, size=65536, comp=rcomp, ctx="rx")

        def sender():
            if recv_first:
                yield sim.timeout(20.0)
            yield from a.sendl(w, 1, 65536, tag=4, comp=scomp, ctx="tx",
                               payload="bulk")

        sim.process(receiver())
        sim.process(sender())
        progress_until(sim, w, a, scomp.test)
        progress_until(sim, w, b, rcomp.test)
        sim.run(max_events=200000)
        assert rcomp.test(), f"recv_first={recv_first}"
        assert rcomp.value[2] == "bulk"
        assert scomp.test(), f"recv_first={recv_first}"


def test_progress_trylock_contention_fails_fast():
    sim, w, a, b = make_pair()
    results = []

    def caller(tag):
        n = yield from b.progress(FakeWorker(sim), caller=tag)
        results.append(n)

    # Hold the try-lock, then call progress: it must return -1 immediately.
    assert b.progress_lock.try_acquire()
    sim.process(caller("w1"))
    sim.run(max_events=1000)
    assert results == [-1]
    b.progress_lock.release()


def test_distinct_tags_no_matching_collision():
    """LCI has no in-order guarantee, so the parcelport uses one tag per
    message; the matching table must keep concurrent tags separate."""
    sim, w, a, b = make_pair()
    comps = {t: Synchronizer() for t in (11, 12, 13)}

    def receiver():
        # post receives in reverse tag order
        for t in (13, 12, 11):
            yield from b.recvm(w, tag=t, size=32, comp=comps[t], ctx=t)

    def sender():
        yield sim.timeout(1.0)
        for t in (11, 12, 13):
            yield from a.sendm(w, 1, 32, tag=t, comp=None, payload=f"p{t}")

    sim.process(receiver())
    sim.process(sender())
    progress_until(sim, w, b, lambda: all(c.test() for c in comps.values()))
    sim.run(max_events=100000)
    for t, c in comps.items():
        assert c.value[1] == t
        assert c.value[2] == f"p{t}"


def test_caller_switch_penalty_tracked():
    sim, w, a, b = make_pair()

    def calls():
        yield from b.progress(w, caller="x")
        yield from b.progress(w, caller="x")
        yield from b.progress(w, caller="y")

    sim.process(calls())
    sim.run(max_events=10000)
    assert b.stats.counters["progress_calls"] == 3
