"""Calibration anchors: the paper-shape constants still hold.

These are the self-checks DESIGN.md §4 tells maintainers to run after
touching any cost constant.  A small fast subset runs here; the full set
runs via ``python -c "from repro.bench import check_calibration, ..."``.
"""

import pytest

from repro.bench import check_calibration, format_calibration


@pytest.fixture(scope="module")
def fast_results():
    return check_calibration(["lci_peak_8b", "pin_over_mt_ratio",
                              "small_latency_band",
                              "mpi_i_small_latency_close"])


def test_fast_anchors_hold(fast_results):
    report = format_calibration(fast_results)
    print("\n" + report)
    failures = [n for n, (ok, _, _) in fast_results.items() if not ok]
    assert not failures, report


def test_format_mentions_bands(fast_results):
    text = format_calibration(fast_results)
    assert "band" in text
    assert "PASS" in text or "FAIL" in text
