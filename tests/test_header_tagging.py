"""Unit tests for header planning / piggybacking and tag management."""

import pytest

from repro.hpx_rt import CostModel, Parcel, serialize_parcels
from repro.parcelport import plan_header, tag_of
from repro.parcelport.header import (HEADER_BASE_BYTES, ORIGINAL_MAX_HEADER)
from repro.parcelport.tagging import (FIRST_DYNAMIC_TAG, TagAllocator,
                                      TagProvider)
from repro.sim import Simulator

COST = CostModel()


def msg_for(arg_sizes):
    p = Parcel("act", dest=1, src=0, args=tuple("x" * len(arg_sizes)),
               arg_sizes=tuple(arg_sizes))
    return serialize_parcels([p], COST)


# ---------------------------------------------------------------------------
# header planning
# ---------------------------------------------------------------------------
def test_small_message_fully_piggybacked():
    msg = msg_for([8])
    plan = plan_header(msg, max_header=8192)
    assert plan.piggy_non_zc
    assert plan.followups == []
    assert plan.header_size == HEADER_BASE_BYTES + msg.non_zc_size


def test_zero_copy_chunk_never_piggybacked():
    msg = msg_for([16384])
    plan = plan_header(msg, max_header=8192)
    assert plan.piggy_non_zc
    assert plan.piggy_trans
    assert plan.followups == [("zc", 16384)]


def test_original_variant_no_trans_piggyback():
    msg = msg_for([16384])
    plan = plan_header(msg, max_header=ORIGINAL_MAX_HEADER,
                       piggyback_trans=False)
    assert plan.piggy_non_zc       # 64+40 fits in 512
    assert not plan.piggy_trans
    assert plan.followups == [("trans", msg.trans_size), ("zc", 16384)]


def test_oversized_non_zc_gets_own_message():
    # 200 aggregated parcels -> non-zc chunk larger than the header cap
    parcels = [Parcel("act", dest=1, src=0, args=("x",), arg_sizes=(50,))
               for _ in range(200)]
    msg = serialize_parcels(parcels, COST)
    assert msg.non_zc_size > 8192
    plan = plan_header(msg, max_header=8192)
    assert not plan.piggy_non_zc
    assert plan.followups == [("non_zc", msg.non_zc_size)]
    assert plan.header_size == HEADER_BASE_BYTES


def test_header_budget_boundary():
    # payload sized exactly to the cap piggybacks; one byte more does not
    cap = 1000
    fit = cap - HEADER_BASE_BYTES - 64  # metadata + arg
    msg = msg_for([fit])
    assert plan_header(msg, cap).piggy_non_zc
    msg2 = msg_for([fit + 1])
    assert not plan_header(msg2, cap).piggy_non_zc


def test_max_header_below_metadata_rejected():
    msg = msg_for([8])
    with pytest.raises(ValueError):
        plan_header(msg, max_header=HEADER_BASE_BYTES - 1)


def test_piggybacked_bytes_accounting():
    msg = msg_for([100])
    plan = plan_header(msg, 8192)
    assert plan.piggybacked_bytes == msg.non_zc_size
    assert plan.n_followups == 0


# ---------------------------------------------------------------------------
# tagging
# ---------------------------------------------------------------------------
def test_tag_of_never_returns_reserved_tags():
    for raw in range(0, 200000, 777):
        t = tag_of(raw, 0, max_tag=32767)
        assert FIRST_DYNAMIC_TAG <= t <= 32767


def test_tag_of_wraps_around():
    span = 32767 - FIRST_DYNAMIC_TAG + 1
    assert tag_of(0, 0, 32767) == tag_of(span, 0, 32767)
    assert tag_of(0, 5, 32767) == tag_of(5, 0, 32767)


class FakeWorker:
    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


def test_tag_allocator_draws_disjoint_blocks():
    sim = Simulator()
    alloc = TagAllocator(sim, max_tag=32767)
    w = FakeWorker(sim)
    out = []

    def drawer():
        r1 = yield from alloc.draw(w, 3)
        r2 = yield from alloc.draw(w, 2)
        out.extend([r1, r2])

    sim.process(drawer())
    sim.run()
    r1, r2 = out
    assert r2 == r1 + 3
    tags1 = {alloc.tag(r1, i) for i in range(3)}
    tags2 = {alloc.tag(r2, i) for i in range(2)}
    assert not tags1 & tags2


def test_tag_provider_reuses_released_tags():
    sim = Simulator()
    prov = TagProvider(sim, max_tag=32767)
    w = FakeWorker(sim)
    out = []

    def run():
        t1 = yield from prov.draw(w)
        t2 = yield from prov.draw(w)
        yield from prov.release(w, t1)
        t3 = yield from prov.draw(w)
        out.extend([t1, t2, t3])

    sim.process(run())
    sim.run()
    t1, t2, t3 = out
    assert t3 == t1          # released tag comes back first
    assert t2 != t1
    assert prov.free_count == 0
