"""Parallel sweep engine + result cache (repro.bench.parallel).

The contracts under test:

* ``run_points`` with ``jobs=N`` returns results **element-wise identical**
  to a sequential run (every point is an independent deterministic
  simulation keyed by its own seed).
* The content-addressed cache: a hit skips the simulation entirely, a
  changed parameter / seed / code fingerprint misses, ``no_cache=True``
  bypasses a populated cache.
* ``run_sweep(jobs=N)`` produces the same rows as sequential.
"""

import pytest

import repro.bench.parallel as parallel
from repro.bench.parallel import (ExecutionPolicy, PointTask, ResultCache,
                                  code_fingerprint, evaluate_point,
                                  execution, latency_task,
                                  message_rate_task, octotiger_task,
                                  run_points, set_policy)
from repro.bench.sweep import SweepSpec, run_sweep
from repro.hpx_rt.platform import EXPANSE, ROSTAM


def small_tasks(n_seeds=2, total=300):
    return [message_rate_task(cfg, msg_size=8, batch=50, total_msgs=total,
                              inject_rate_kps=rate, platform=EXPANSE,
                              seed=1000 + i * 7919)
            for cfg in ("mpi_i", "lci_psr_cq_pin_i")
            for rate in (100.0, None)
            for i in range(n_seeds)]


# ---------------------------------------------------------------------------
# task descriptors
# ---------------------------------------------------------------------------
def test_point_task_canonical_is_stable_and_sorted():
    t = message_rate_task("mpi_i", msg_size=8, batch=50, total_msgs=100,
                          inject_rate_kps=None, platform=EXPANSE, seed=3)
    c = t.canonical()
    assert c == t.canonical()
    assert c.index('"config"') < c.index('"kind"') < c.index('"params"')
    assert '"platform":"expanse"' in c


def test_task_builders_serialize_platform_by_name():
    t1 = latency_task("mpi_i", msg_size=8, window=4, steps=5,
                      platform=ROSTAM, seed=1)
    t2 = octotiger_task("mpi_i", platform=EXPANSE, n_localities=2,
                        paper_level=4, n_steps=1, seed=1)
    assert t1.params["platform"] == "rostam"
    assert t2.params["platform"] == "expanse"


def test_evaluate_point_matches_direct_run():
    from repro.bench.message_rate import MessageRateParams, run_message_rate
    task = message_rate_task("mpi_i", msg_size=8, batch=50, total_msgs=300,
                             inject_rate_kps=None, platform=EXPANSE, seed=5)
    direct = run_message_rate(
        "mpi_i", MessageRateParams(msg_size=8, batch=50, total_msgs=300,
                                   inject_rate_kps=None, platform=EXPANSE),
        seed=5).as_dict()
    assert evaluate_point(task) == direct


def test_evaluate_point_rejects_unknown_kind_and_platform():
    with pytest.raises(ValueError, match="unknown point kind"):
        evaluate_point(PointTask("nope", "mpi_i", {}, 0))
    bad = message_rate_task("mpi_i", msg_size=8, batch=50, total_msgs=10,
                            inject_rate_kps=None, platform=EXPANSE, seed=0)
    broken = PointTask("message_rate", "mpi_i",
                       {**bad.params, "platform": "cray"}, 0)
    with pytest.raises(ValueError, match="unknown platform"):
        evaluate_point(broken)


# ---------------------------------------------------------------------------
# parallel == sequential
# ---------------------------------------------------------------------------
def test_jobs2_results_element_wise_identical_to_sequential():
    tasks = small_tasks()
    seq = run_points(tasks, jobs=1, no_cache=True)
    par = run_points(tasks, jobs=2, no_cache=True)
    assert len(seq) == len(tasks)
    assert seq == par


def test_run_sweep_jobs2_rows_identical_to_sequential():
    spec = SweepSpec(axes={"config": ["mpi_i", "lci_psr_cq_pin_i"],
                           "total_msgs": [200, 400]}, repeats=2)
    seq = run_sweep(_sweep_fn, spec, jobs=1)
    par = run_sweep(_sweep_fn, spec, jobs=2)
    assert seq.rows == par.rows
    assert len(seq.rows) == spec.size
    assert [r["seed"] for r in seq.rows[:2]] == [1000, 8919]


def _sweep_fn(config, total_msgs, seed):
    # top-level so ProcessPoolExecutor workers can unpickle it
    from repro.bench.message_rate import MessageRateParams, run_message_rate
    params = MessageRateParams(msg_size=8, batch=50, total_msgs=total_msgs,
                               inject_rate_kps=None, platform=EXPANSE)
    return run_message_rate(config, params, seed=seed).as_dict()


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------
def test_cache_roundtrip_and_hit_skips_simulation(tmp_path, monkeypatch):
    tasks = small_tasks(n_seeds=1)
    cache = ResultCache(tmp_path)
    first = run_points(tasks, jobs=1, cache=cache)
    assert cache.stats() == {"hits": 0, "misses": len(tasks),
                             "stores": len(tasks)}

    def boom(task):
        raise AssertionError("cache hit must not re-simulate")

    monkeypatch.setattr(parallel, "evaluate_point", boom)
    second = run_points(tasks, jobs=1, cache=cache)
    assert second == first
    assert cache.hits == len(tasks)


def test_changed_param_and_seed_miss(tmp_path):
    cache = ResultCache(tmp_path)
    base = small_tasks(n_seeds=1)[0]
    cache.put(base, {"x": 1.0})
    assert cache.get(base) == {"x": 1.0}
    other_seed = PointTask(base.kind, base.config, base.params,
                           base.seed + 1)
    other_param = PointTask(base.kind, base.config,
                            {**base.params, "total_msgs": 999}, base.seed)
    assert cache.get(other_seed) is None
    assert cache.get(other_param) is None


def test_changed_code_fingerprint_misses(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    task = small_tasks(n_seeds=1)[0]
    cache.put(task, {"x": 2.0})
    assert cache.get(task) == {"x": 2.0}
    monkeypatch.setattr(parallel, "_FINGERPRINT", "0" * 64)
    assert cache.get(task) is None


def test_no_cache_bypasses_populated_cache(tmp_path, monkeypatch):
    tasks = small_tasks(n_seeds=1)[:1]
    cache = ResultCache(tmp_path)
    cache.put(tasks[0], {"sentinel": 1.0})
    monkeypatch.setattr(parallel, "evaluate_point",
                        lambda task: {"fresh": 2.0})
    with execution(jobs=1, cache=cache):
        cached = run_points(tasks)
        assert cached == [{"sentinel": 1.0}]
        fresh = run_points(tasks, no_cache=True)
        assert fresh == [{"fresh": 2.0}]
    assert cache.stores == 1  # no_cache run must not write either


def test_cache_ignores_corrupt_and_wrong_schema_entries(tmp_path):
    cache = ResultCache(tmp_path)
    task = small_tasks(n_seeds=1)[0]
    path = cache._path(cache.key(task))
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.get(task) is None
    path.write_text('{"schema": "repro-cache/0", "result": {"x": 1}}')
    assert cache.get(task) is None


def test_code_fingerprint_is_hex_and_cached():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0


# ---------------------------------------------------------------------------
# execution policy
# ---------------------------------------------------------------------------
def test_set_policy_validates_and_execution_restores(tmp_path):
    prev = parallel.policy()
    with execution(jobs=3, cache=tmp_path) as pol:
        assert parallel.policy() is pol
        assert pol.jobs == 3 and pol.cache is not None
        with pytest.raises(ValueError, match="jobs"):
            set_policy(jobs=0)
    assert parallel.policy() is prev


def test_env_var_supplies_default_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel.CACHE_ENV, str(tmp_path / "envcache"))
    with execution(jobs=1, cache=None):
        pol = set_policy()
        assert pol.cache is not None
        assert pol.cache.root == tmp_path / "envcache"
        pol2 = set_policy(no_cache=True)
        assert pol2.cache is None
