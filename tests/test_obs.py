"""Observability-layer tests: span recording, lifecycle-chain correlation,
Chrome-trace export, critical-path analysis, metrics — and the contract
that tracing never changes simulation results (pytest -m obs)."""

import json

import pytest

from repro.bench.latency import LatencyParams, run_latency
from repro.bench.message_rate import MessageRateParams, run_message_rate
from repro.faults import FaultPlan
from repro.obs import (CATEGORIES, TRACE_PRESETS, MetricsRegistry,
                       SpanRecorder, analyze, build_chains, parse_trace_spec,
                       render_timeline, to_chrome_trace,
                       to_merged_chrome_trace, validate_chrome_trace)
from repro.sim.core import Simulator
from repro.sim.stats import TimeSeries, percentile
from repro.sim.trace import Tracer

pytestmark = pytest.mark.obs

MPI_CFG = "mpi_i"
LCI_CFG = "lci_psr_cq_pin_i"
PARAMS = LatencyParams(msg_size=8, window=16, steps=30)
EXPECTED_MSGS = 2 * PARAMS.window * PARAMS.steps  # every ping and pong


@pytest.fixture(scope="module")
def traced_mpi():
    return run_latency(MPI_CFG, PARAMS, trace="parcel")


@pytest.fixture(scope="module")
def traced_lci():
    return run_latency(LCI_CFG, PARAMS, trace="parcel")


# ---------------------------------------------------------------------------
# trace-spec parsing + the legacy Tracer
# ---------------------------------------------------------------------------
def test_parse_trace_spec_presets():
    assert parse_trace_spec(None) is None
    assert parse_trace_spec(True) is None
    assert parse_trace_spec("all") is None
    parcel = parse_trace_spec("parcel")
    assert parcel == TRACE_PRESETS["parcel"]
    assert "lock" not in parcel          # raw lock traffic is opt-in
    assert parse_trace_spec("lifecycle") == parcel
    assert parse_trace_spec("parcel,lock") == parcel | {"lock"}
    assert parse_trace_spec("wire, msg") == frozenset({"wire", "msg"})
    assert parse_trace_spec(["wire", "msg"]) == frozenset({"wire", "msg"})
    assert parse_trace_spec("all,wire") is None


def test_parse_trace_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_trace_spec("bogus")
    with pytest.raises(ValueError):
        parse_trace_spec("")
    with pytest.raises(ValueError):
        parse_trace_spec(["wire", "nope"])


def test_tracer_empty_categories_means_none():
    """Regression: ``enable(categories=[])`` must filter everything out,
    not fall back to 'everything' because an empty set is falsy."""
    sim = Simulator()
    tr = Tracer(sim)
    tr.enable(categories=[])
    tr.emit("net", "hello")
    assert len(tr) == 0
    tr.enable(categories=None)
    tr.emit("net", "hello")
    assert len(tr) == 1


def test_tracer_bridges_to_span_recorder():
    sim = Simulator()
    tr = Tracer(sim)
    rec = SpanRecorder(sim, spec="all")
    tr.enable()
    tr.bridge_to(rec)
    tr.emit("wire", "leg", mid=7)
    assert len(rec) == 1
    assert rec.spans[0].kind == "instant"
    assert rec.spans[0].fields["mid"] == 7


# ---------------------------------------------------------------------------
# SpanRecorder invariants
# ---------------------------------------------------------------------------
def test_recorder_filtering_and_none_safe_end():
    sim = Simulator()
    rec = SpanRecorder(sim, spec="wire")
    assert rec.wants("wire") and not rec.wants("lock")
    sp = rec.begin("lock", "w")      # filtered -> None
    assert sp is None
    rec.end(sp)                      # must be a no-op, not a crash
    rec.instant("lock", "x")
    assert len(rec) == 0
    rec.instant("wire", "x", mid=1)
    assert len(rec) == 1


def test_recorder_capacity_drops_not_grows():
    sim = Simulator()
    rec = SpanRecorder(sim, spec="all", capacity=2)
    for i in range(5):
        rec.instant("msg", "e", mid=i)
    assert len(rec) == 2
    assert rec.dropped == 3


def test_span_nesting_well_formed(traced_mpi):
    rec = traced_mpi.obs
    assert len(rec) > 0 and rec.dropped == 0
    for sp in rec.spans:
        assert sp.cat in CATEGORIES
        if sp.kind == "instant":
            assert sp.t1 == sp.t0
        else:
            assert sp.t1 is None or sp.t1 >= sp.t0


# ---------------------------------------------------------------------------
# byte-identity: tracing must not change simulation results
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("cfg", [MPI_CFG, LCI_CFG])
def test_latency_byte_identical_with_tracing(cfg):
    base = run_latency(cfg, PARAMS, trace=None)
    traced = run_latency(cfg, PARAMS, trace="parcel")
    assert base.obs is None and traced.obs is not None
    assert traced.total_time_us == base.total_time_us
    assert traced.as_dict() == base.as_dict()


def test_message_rate_byte_identical_with_tracing():
    params = MessageRateParams(msg_size=8, batch=50, total_msgs=500)
    base = run_message_rate(MPI_CFG, params, trace=None)
    traced = run_message_rate(MPI_CFG, params, trace="all")
    assert traced.as_dict() == base.as_dict()
    assert traced.comm_time_us == base.comm_time_us


# ---------------------------------------------------------------------------
# lifecycle chains
# ---------------------------------------------------------------------------
def test_exactly_one_chain_per_delivered_message(traced_mpi):
    rec = traced_mpi.obs
    delivered = rec.query(cat="msg", name="delivered")
    assert len(delivered) == EXPECTED_MSGS
    # one delivery per message id — exactly-once, even at the trace level
    mids = [sp.fields["mid"] for sp in delivered]
    assert len(set(mids)) == len(mids)
    chains = build_chains(rec)
    complete = [c for c in chains.values() if c.complete]
    assert len(complete) == EXPECTED_MSGS
    for ch in complete:
        # causal ordering within each chain
        assert ch.t_ser0 <= ch.t_inject <= ch.t_arrive <= ch.t_delivered
        assert ch.src != ch.dst
        assert "hdr" in ch.parts


def test_chains_survive_retransmits():
    params = MessageRateParams(msg_size=8, batch=50, total_msgs=500)
    res = run_message_rate(LCI_CFG, params,
                           fault_plan=FaultPlan(drop_prob=0.1),
                           trace="parcel")
    rec = res.obs
    rep = analyze(rec)
    assert rep.retransmits > 0
    assert len(rec.query(cat="msg", name="retransmit")) == rep.retransmits
    delivered = rec.query(cat="msg", name="delivered")
    mids = [sp.fields["mid"] for sp in delivered]
    assert len(set(mids)) == len(mids)   # retries never double-deliver
    # every delivered message still resolves to one complete chain
    chains = build_chains(rec)
    for mid in mids:
        assert chains[mid].complete


# ---------------------------------------------------------------------------
# critical-path analysis (the Fig. 7 narrative)
# ---------------------------------------------------------------------------
def test_components_sum_to_latency(traced_mpi):
    rep = analyze(traced_mpi.obs)
    assert rep.n_complete == EXPECTED_MSGS
    wall = traced_mpi.obs.sim.now
    for ch in rep.chains.values():
        if not ch.complete:
            continue
        assert sum(ch.components.values()) == pytest.approx(ch.latency)
        assert all(v >= 0.0 for v in ch.components.values())
        assert ch.latency <= wall
    assert sum(rep.totals.values()) == pytest.approx(rep.total_latency)
    shares = rep.shares()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_mpi_dominated_by_progress_lock_wait(traced_mpi):
    """The paper's profiling claim: the improved MPI parcelport spends the
    vast majority of its time spinning on the progress lock."""
    rep = analyze(traced_mpi.obs)
    assert rep.dominant == "progress_lock_wait"
    assert rep.shares()["progress_lock_wait"] > 0.5


def test_lci_dominated_by_lock_free_polling(traced_mpi, traced_lci):
    rep = analyze(traced_lci.obs)
    assert rep.dominant == "progress_poll"
    assert rep.shares()["progress_lock_wait"] == 0.0
    # and the headline result: LCI finishes the same workload faster
    assert traced_lci.total_time_us < traced_mpi.total_time_us


# ---------------------------------------------------------------------------
# Chrome/Perfetto export
# ---------------------------------------------------------------------------
def test_chrome_trace_schema_valid(traced_mpi):
    doc = to_chrome_trace(traced_mpi.obs)
    assert validate_chrome_trace(doc) == []
    # survives a JSON round trip untouched
    doc2 = json.loads(json.dumps(doc))
    assert validate_chrome_trace(doc2) == []
    events = doc["traceEvents"]
    for ev in events:
        assert {"ph", "ts", "pid", "tid"} <= set(ev)
    assert sum(ev["ph"] == "B" for ev in events) \
        == sum(ev["ph"] == "E" for ev in events)
    assert any(ev["ph"] == "M" for ev in events)
    assert any(ev["ph"] == "s" for ev in events)  # wire flow arrows


def test_merged_chrome_trace(traced_mpi, traced_lci):
    doc = to_merged_chrome_trace([(traced_mpi.obs, "mpi"),
                                  (traced_lci.obs, "lci")])
    assert validate_chrome_trace(doc) == []
    pids = {ev["pid"] for ev in doc["traceEvents"]}
    assert any(p < 100 for p in pids) and any(p >= 100 for p in pids)
    labels = [r["label"] for r in doc["otherData"]["runs"]]
    assert labels == ["mpi", "lci"]


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace(42)
    assert validate_chrome_trace({"events": []})
    # E with no matching B
    bad = {"traceEvents": [
        {"ph": "E", "name": "x", "ts": 1.0, "pid": 0, "tid": 0}]}
    assert any("no open B" in e for e in validate_chrome_trace(bad))
    # unclosed B
    bad = {"traceEvents": [
        {"ph": "B", "name": "x", "ts": 1.0, "pid": 0, "tid": 0}]}
    assert any("unclosed" in e for e in validate_chrome_trace(bad))
    # missing required keys
    bad = {"traceEvents": [{"ph": "i", "ts": 0.0}]}
    assert validate_chrome_trace(bad)


def test_render_timeline_filters(traced_mpi):
    txt = render_timeline(traced_mpi.obs, categories=["wire"], limit=10)
    assert "wire:" in txt
    assert "parcel:" not in txt
    mid = traced_mpi.obs.query(cat="msg", name="delivered")[0].fields["mid"]
    chain_txt = render_timeline(traced_mpi.obs, mid=mid)
    assert "msg:delivered" in chain_txt


# ---------------------------------------------------------------------------
# stats percentiles + metrics registry
# ---------------------------------------------------------------------------
def test_percentile_and_timeseries():
    assert percentile([], 50.0) == 0.0
    assert percentile([7.0], 99.0) == 7.0
    vals = [float(i) for i in range(1, 101)]
    assert percentile(vals, 0.0) == 1.0
    assert percentile(vals, 100.0) == 100.0
    assert percentile(vals, 50.0) == pytest.approx(50.5)
    with pytest.raises(ValueError):
        percentile(vals, 101.0)
    ts = TimeSeries()
    for i, v in enumerate(vals):
        ts.record(float(i), v)
    assert ts.p50() == pytest.approx(50.5)
    assert ts.p90() == pytest.approx(90.1)
    assert ts.p99() == pytest.approx(99.01)
    assert ts.percentile(25.0) == pytest.approx(25.75)


def test_metrics_registry():
    reg = MetricsRegistry()
    reg.counter("pp.sends").inc()
    reg.counter("pp.sends").inc(2)
    reg.gauge("pool.in_use").set(5)
    h = reg.histogram("lat.us")
    h.observe_many([1.0, 2.0, 3.0, 4.0])
    assert reg.get("pp.sends").value == 3.0
    assert len(reg) == 3
    with pytest.raises(TypeError):
        reg.gauge("pp.sends")        # name already taken by a Counter
    assert set(reg.query("pp.")) == {"pp.sends"}
    d = reg.as_dict()
    assert d["pp.sends"] == 3.0
    assert d["pool.in_use"] == 5.0
    assert d["lat.us.count"] == 4.0
    assert d["lat.us.p50"] == pytest.approx(2.5)
    assert "pp.sends" in reg.render()


def test_runtime_metrics_snapshot(traced_mpi):
    m = traced_mpi.metrics
    assert m is not None
    d = m.as_dict()
    assert d["obs.spans"] == len(traced_mpi.obs)
    assert d["wire.msgs"] == EXPECTED_MSGS
    assert d["sim.virtual_time_us"] == pytest.approx(
        traced_mpi.total_time_us)
    assert d["obs.rx_wait_us.count"] > 0


# ---------------------------------------------------------------------------
# the trace_smoke figure end to end
# ---------------------------------------------------------------------------
def test_trace_smoke_figure(tmp_path):
    from repro.bench.figures import trace_smoke
    out = tmp_path / "trace.json"
    fig = trace_smoke(quick=True, trace_out=str(out), show_metrics=True)
    assert fig.meta["dominant"]["mpi_i"] == "progress_lock_wait"
    assert fig.meta["dominant"]["lci_psr_cq_pin_i"] == "progress_poll"
    assert fig.meta["trace_errors"] == []
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert "progress_lock_wait" in fig.render(plot=False)
