"""Additional coverage: kernel edge cases, library corners, integrations."""

import pytest

from repro import LAPTOP, make_runtime
from repro.apps.octotiger import OctoTigerConfig, OctoTigerDriver
from repro.parcelport.base import Connection, DetachedWorker
from repro.sim import (AllOf, AnyOf, Event, Interrupt, Simulator)


# ---------------------------------------------------------------------------
# kernel edge cases
# ---------------------------------------------------------------------------
def test_allof_fails_fast_on_child_failure():
    sim = Simulator(strict=False)
    bad = Event(sim)
    caught = []

    def proc(sim):
        try:
            yield AllOf(sim, [sim.timeout(10.0), bad])
        except RuntimeError as e:
            caught.append((str(e), sim.now))

    sim.process(proc(sim))
    sim.schedule_call(1.0, lambda: bad.fail(RuntimeError("child")))
    sim.run()
    assert caught == [("child", 1.0)]  # did not wait for the timeout


def test_anyof_value_identifies_winner():
    sim = Simulator()
    got = []

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        ev, value = yield AnyOf(sim, [slow, fast])
        got.append(value)

    sim.process(proc(sim))
    sim.run()
    assert got == ["fast"]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("late")      # must not raise
    sim.run()


def test_nonstrict_process_failure_recorded_on_event():
    sim = Simulator(strict=False)

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("inside")

    p = sim.process(bad(sim))
    sim.run()
    assert p.triggered and not p.ok
    assert isinstance(p.value, ValueError)


def test_interrupt_cancels_pending_wait():
    sim = Simulator()
    state = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            state.append(sim.now)
            yield sim.timeout(1.0)   # can keep running after interrupt
            state.append(sim.now)

    p = sim.process(sleeper(sim))
    sim.schedule_call(5.0, lambda: p.interrupt())
    sim.run()
    assert state == [5.0, 6.0]


# ---------------------------------------------------------------------------
# parcelport plumbing corners
# ---------------------------------------------------------------------------
def test_connection_reset_clears_state():
    c = Connection(dest=3)
    c.plan = [("zc", 100)]
    c.stage = 1
    c.tag = 7
    c.piggy_bytes = 40
    c.reset()
    assert c.plan == [] and c.stage == 0 and c.tag == 0
    assert c.finished_chunks  # empty plan counts as finished
    assert c.dest == 3        # identity survives reset


def test_detached_worker_cannot_be_scheduled():
    rt = make_runtime("lci", platform=LAPTOP)
    rt.boot()
    dw = DetachedWorker(rt.localities[0], name="probe")
    with pytest.raises(RuntimeError):
        dw.start()


def test_worker_lock_records_wait_time():
    rt = make_runtime("lci", platform=LAPTOP)
    rt.boot()
    loc = rt.localities[0]
    done = rt.new_latch(2)
    from repro.sim import SpinLock
    lk = SpinLock(rt.sim, acquire_cost=0.0)

    def holder(worker):
        yield from worker.lock(lk)
        yield worker.cpu(25.0)
        lk.release()
        done.count_down()

    loc.spawn(holder)
    loc.spawn(holder)
    rt.run_until(done)
    waits = [w.stats.accum.get("lock_wait_us", 0.0) for w in loc.workers]
    assert max(waits) >= 25.0


# ---------------------------------------------------------------------------
# MPI library corners
# ---------------------------------------------------------------------------
def test_mpi_pending_rts_accounting():
    from repro.mpi_sim import DEFAULT_MPI_PARAMS, MpiComm
    from repro.netsim import Fabric, TESTNET

    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = MpiComm(sim, fabric.add_node(0), 0,
                DEFAULT_MPI_PARAMS.with_(eager_threshold=10))
    b = MpiComm(sim, fabric.add_node(1), 1,
                DEFAULT_MPI_PARAMS.with_(eager_threshold=10))

    class W:
        def __init__(self):
            self.sim = sim

        def cpu(self, us):
            return sim.timeout(us)

        def lock(self, lk):
            yield lk.acquire()

        def lock_acquired(self, lk, t0):
            pass

    w = W()

    def run():
        yield from a.isend(w, 1, 5000, tag=9, payload="x")
        yield sim.timeout(20.0)
        yield from b.progress_only(w)          # stash the RTS
        assert b.pending_rts == 1
        req = yield from b.irecv(w, 0, 5000, tag=9)   # matches buffered RTS
        assert b.pending_rts == 0
        while not req.done:
            yield sim.timeout(1.0)
            yield from b.test(w, req)
            yield from a.progress_only(w)

    sim.process(run())
    sim.run(max_events=100000)


# ---------------------------------------------------------------------------
# cross-backend Octo-Tiger integration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["tcp", "mpi_orig", "lci_sr_sy_mt_i"])
def test_octotiger_runs_on_every_backend(config):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    cfg = OctoTigerConfig(max_level=2, base_level=2, n_steps=1,
                          substeps=1, boundary_fields=1,
                          leaf_compute_us=150.0, update_compute_us=80.0,
                          interior_compute_us=40.0, l2l_compute_us=20.0)
    res = OctoTigerDriver(rt, cfg).run(max_events=5_000_000)
    assert res.steps_per_second > 0
