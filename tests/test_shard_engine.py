"""Sharded conservative-parallel engine: identity, determinism, guards.

The engine's contract (docs/SHARDING.md) is byte-identity: a sweep point
evaluated at ``--shards N`` returns the same result dict, bit for bit,
as the sequential kernel, for every N.  These tests pin that contract on
every workload family, pin the window-boundary determinism of fault
draws, and exercise the loud-failure guards (lookahead, unsupported
features, cache fingerprinting of the engine's own modules).
"""

from __future__ import annotations

import pytest

from repro import make_runtime
from repro.bench.parallel import (ResultCache, code_fingerprint,
                                  evaluate_point, execution, fft_task,
                                  message_rate_task, octotiger_task,
                                  serve_task)
from repro.faults import FaultPlan
from repro.hpx_rt.platform import EXPANSE
from repro.sim.shard import (LookaheadViolation, ShardContext,
                             ShardingUnsupported, current_context,
                             run_sharded_point, set_current)

pytestmark = pytest.mark.shards


# ---------------------------------------------------------------------------
# shard-count invariance: the byte-identity contract per workload family
# ---------------------------------------------------------------------------
def _assert_invariant(task, counts=(1, 2, 4)):
    seq = evaluate_point(task)
    for n in counts:
        assert run_sharded_point(task, n) == seq, \
            f"shards={n} diverged from the sequential kernel"
    return seq


def test_fig1_point_invariance():
    # 2 localities; shards=4 also exercises shards with zero owned
    # localities (they must barrier along without perturbing anything).
    _assert_invariant(message_rate_task(
        "mpi", msg_size=64, batch=8, total_msgs=240,
        inject_rate_kps=None, platform=EXPANSE, seed=7))


def test_fig1_point_invariance_lci():
    _assert_invariant(message_rate_task(
        "lci", msg_size=64, batch=8, total_msgs=240,
        inject_rate_kps=None, platform=EXPANSE, seed=3))


def test_fft_point_invariance():
    # "all"-mode termination + distributed-state contributions
    # (_out/_checksum/_marks flow to the root shard at the stop).
    _assert_invariant(fft_task(
        "lci", n1=8, n2=8, n_localities=4, platform=EXPANSE, seed=11))


def test_serve_point_invariance():
    # Saturated so the identity premises hold: the quiesce timer (a
    # replica on every shard, same seq on each) cuts the run, and sheds
    # are request-side (gateway) only.
    task = serve_task("lci", offered_kps=3000.0, horizon_us=1200.0,
                      n_localities=4, platform=EXPANSE, seed=13)
    seq = _assert_invariant(task)
    assert seq["shed_requests"] > 0          # genuinely saturated
    assert seq["shed_responses"] == 0        # premise of the cut proof


def test_policy_routing_through_execution():
    # --shards routes evaluate_point through the sharded engine; the
    # result must equal the plain sequential evaluation.
    task = message_rate_task("lci", msg_size=64, batch=8, total_msgs=160,
                             inject_rate_kps=None, platform=EXPANSE, seed=5)
    seq = evaluate_point(task)
    with execution(jobs=1, shards=2):
        assert evaluate_point(task) == seq


# ---------------------------------------------------------------------------
# window-boundary determinism under fault plans
# ---------------------------------------------------------------------------
def _faulted_run(plan: str):
    """Deadline-terminated all-to-all chatter under a fault plan.

    Deadline termination freezes every shard at exactly the same virtual
    instant, so the merged fault counters must be identical at any shard
    count — the keyed fault draws make the drop/slow schedule a pure
    function of each message's (source, per-source seq) identity.
    """
    def run():
        rt = make_runtime("mpi", platform=EXPANSE, n_localities=4, seed=9,
                          fault_plan=FaultPlan.parse(plan))

        def sink(worker, x):
            return None

        rt.register_action("sink", sink)

        def chatter(lid):
            def task(worker):
                for i in range(30):
                    yield from worker.locality.apply(
                        worker, (lid + 1 + i) % 4, "sink", (i,),
                        arg_sizes=[64])
            return task

        rt.boot()
        for lid in range(4):
            if rt.shard_owns(lid):
                rt.locality(lid).spawn(chatter(lid), name=f"chat{lid}")
        rt.run_until(2500.0)
        return dict(sorted(rt.fault_summary().items()))

    return run


@pytest.mark.faults
@pytest.mark.parametrize("plan", ["drop=0.08", "slow=0:1500@1*3",
                                  "drop=0.03,corrupt=0.02"])
def test_fault_plan_window_determinism(plan):
    run = _faulted_run(plan)
    r1 = run_sharded_point(run, 1)
    assert r1, "fault plan produced no counters — test is vacuous"
    assert run_sharded_point(run, 2) == r1
    assert run_sharded_point(run, 4) == r1


def test_fault_counters_nonzero_under_drop():
    r = run_sharded_point(_faulted_run("drop=0.08"), 2)
    assert r.get("drops", 0) > 0
    assert r.get("retransmits", 0) > 0


# ---------------------------------------------------------------------------
# lookahead + unsupported-feature guards
# ---------------------------------------------------------------------------
def test_zero_lookahead_rejected_at_attach():
    flat = EXPANSE.with_(network=EXPANSE.network.with_(wire_latency_us=0.0))
    set_current(ShardContext(0, 2))
    try:
        with pytest.raises(LookaheadViolation, match="no lookahead"):
            make_runtime("mpi", platform=flat, n_localities=2, seed=1)
    finally:
        set_current(None)


def test_stale_import_raises_lookahead_violation():
    set_current(ShardContext(0, 2))
    try:
        rt = make_runtime("mpi", platform=EXPANSE, n_localities=2, seed=1)
        ctx = rt.shard_ctx
        rt.sim.now = 100.0
        with pytest.raises(LookaheadViolation, match="violated"):
            # guard fires on the timestamp, before any decoding
            ctx._import_msgs([(99.0, 0, 0, 1, None)])
    finally:
        set_current(None)


def test_tracing_rejected_under_shards():
    set_current(ShardContext(0, 2))
    try:
        with pytest.raises(ShardingUnsupported, match="trace"):
            make_runtime("mpi", platform=EXPANSE, n_localities=2, seed=1,
                         trace="parcel")
    finally:
        set_current(None)


def test_one_runtime_per_shard():
    set_current(ShardContext(0, 2))
    try:
        make_runtime("mpi", platform=EXPANSE, n_localities=2, seed=1)
        with pytest.raises(ShardingUnsupported, match="exactly one"):
            make_runtime("mpi", platform=EXPANSE, n_localities=2, seed=1)
    finally:
        set_current(None)


def test_octotiger_rejected_under_shards():
    task = octotiger_task("mpi_i", n_localities=2, paper_level=3,
                          n_steps=1, platform=EXPANSE, seed=7)
    with execution(jobs=1, shards=2):
        with pytest.raises(ShardingUnsupported, match="octotiger"):
            evaluate_point(task)


def test_shards_one_is_in_process():
    # --shards 1 must not fork; it runs under an in-process context.
    def probe():
        ctx = current_context()
        return (ctx.shard_id, ctx.n_shards, len(ctx.owned))

    assert current_context() is None
    assert run_sharded_point(probe, 1) == (0, 1, 0)
    assert current_context() is None  # context restored afterwards


def test_metrics_rejected_under_shards():
    set_current(ShardContext(0, 2))
    try:
        rt = make_runtime("mpi", platform=EXPANSE, n_localities=2, seed=1)
        with pytest.raises(ShardingUnsupported, match="one shard"):
            rt.metrics()
    finally:
        set_current(None)


# ---------------------------------------------------------------------------
# cache fingerprint covers the shard-engine modules
# ---------------------------------------------------------------------------
def test_cache_misses_after_shard_module_edit(tmp_path, monkeypatch):
    """Editing a shard-engine source file must invalidate every cache key."""
    import shutil

    import repro

    task = message_rate_task("mpi", msg_size=8, batch=8, total_msgs=16,
                             inject_rate_kps=None, platform=EXPANSE, seed=1)
    cache = ResultCache(tmp_path / "cache")
    try:
        key_before = cache.key(task)
        cache.put(task, {"x": 1.0})
        assert cache.get(task) == {"x": 1.0}

        # Clone the package tree, touch ONLY the shard engine, repoint
        # the fingerprint at the clone.
        src = type(repro).__dict__  # noqa: F841  (keep repro imported)
        pkg_root = tmp_path / "repro"
        shutil.copytree(
            __import__("pathlib").Path(repro.__file__).resolve().parent,
            pkg_root, ignore=shutil.ignore_patterns("__pycache__"))
        monkeypatch.setattr(repro, "__file__",
                            str(pkg_root / "__init__.py"))
        assert code_fingerprint(refresh=True) is not None
        assert cache.key(task) == key_before  # identical clone, same key

        target = pkg_root / "sim" / "shard" / "context.py"
        target.write_text(target.read_text() + "\n# touched\n")
        code_fingerprint(refresh=True)
        assert cache.key(task) != key_before
        assert cache.get(task) is None  # the old entry is unreachable
    finally:
        monkeypatch.undo()
        code_fingerprint(refresh=True)  # restore the process-wide digest


# ---------------------------------------------------------------------------
# seed-ladder helpers (the last ad-hoc derivation sites now route here)
# ---------------------------------------------------------------------------
def test_repeat_seed_ladder_pinned():
    from repro.bench.seeds import REPEAT_BASE, REPEAT_STEP, repeat_seeds

    # The historical inline sequence every committed figure was
    # generated with: 1000 + i*7919.  Pinned so the migrations in
    # bench/sweep.py and bench/perfbench.py stay bit-exact.
    assert (REPEAT_BASE, REPEAT_STEP) == (1000, 7919)
    assert repeat_seeds(3) == [1000, 8919, 16838]
    assert repeat_seeds(1) == [1000]
    # sweep.py's per-spec ladder: base_seed + rep*7919
    assert repeat_seeds(3, base=42) == [42, 7961, 15880]
    with pytest.raises(ValueError, match="at least one"):
        repeat_seeds(0)


def test_sweep_cells_use_the_ladder():
    from repro.bench.sweep import SweepSpec, run_sweep

    spec = SweepSpec(axes={"x": [1, 2]}, repeats=2, base_seed=500)
    result = run_sweep(lambda x, seed: {"y": float(seed)}, spec, jobs=1)
    assert [row["seed"] for row in result.rows] == \
        [500 + rep * 7919 for _ in (1, 2) for rep in range(2)]
