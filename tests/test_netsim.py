"""Unit tests for the NIC + fabric network substrate."""

import pytest

from repro.netsim import Fabric, HDR_IB, FDR_IB, NetMsg, NetworkParams, TESTNET
from repro.sim import Simulator


def make_net(n=2, params=TESTNET):
    sim = Simulator()
    fabric = Fabric(sim, params)
    nics = [fabric.add_node(i) for i in range(n)]
    return sim, fabric, nics


def test_message_delivered_after_tx_and_wire():
    sim, fabric, (a, b) = make_net()
    msg = NetMsg(src=0, dst=1, size=1000, kind="x")
    a.post_send(msg)
    sim.run()
    got = b.poll_rx()
    assert got is msg
    expected = TESTNET.tx_overhead_us + 1000 / TESTNET.bytes_per_us \
        + TESTNET.wire_latency_us
    assert got.arrive_t == pytest.approx(expected)


def test_post_send_returns_doorbell_cost():
    sim, fabric, (a, b) = make_net()
    cost = a.post_send(NetMsg(src=0, dst=1, size=8, kind="x"))
    assert cost == TESTNET.post_cost_us


def test_tx_pipeline_serializes_messages():
    sim, fabric, (a, b) = make_net()
    for i in range(3):
        a.post_send(NetMsg(src=0, dst=1, size=10000, kind="x", tag=i))
    sim.run()
    arrivals = []
    while True:
        m = b.poll_rx()
        if m is None:
            break
        arrivals.append(m.arrive_t)
    assert len(arrivals) == 3
    per_msg = TESTNET.tx_time(10000)
    # consecutive arrivals separated by exactly one TX service time
    assert arrivals[1] - arrivals[0] == pytest.approx(per_msg)
    assert arrivals[2] - arrivals[1] == pytest.approx(per_msg)


def test_fifo_delivery_order_preserved():
    sim, fabric, (a, b) = make_net()
    for i in range(5):
        a.post_send(NetMsg(src=0, dst=1, size=64, kind="x", tag=i))
    sim.run()
    tags = [b.poll_rx().tag for _ in range(5)]
    assert tags == [0, 1, 2, 3, 4]


def test_loopback_skips_wire_latency():
    sim, fabric, (a, b) = make_net()
    a.post_send(NetMsg(src=0, dst=0, size=100, kind="x"))
    sim.run()
    got = a.poll_rx()
    assert got.arrive_t == pytest.approx(TESTNET.tx_time(100))


def test_arrival_event_wakes_waiter():
    sim, fabric, (a, b) = make_net()
    woke = []

    def waiter(sim):
        yield b.arrival_event()
        woke.append(sim.now)

    sim.process(waiter(sim))
    sim.schedule_call(5.0, lambda: a.post_send(
        NetMsg(src=0, dst=1, size=8, kind="x")))
    sim.run()
    assert len(woke) == 1
    assert woke[0] > 5.0


def test_arrival_event_immediate_when_pending():
    sim, fabric, (a, b) = make_net()
    a.post_send(NetMsg(src=0, dst=1, size=8, kind="x"))
    sim.run()
    ev = b.arrival_event()
    assert ev.triggered


def test_on_deliver_hook_called():
    sim, fabric, (a, b) = make_net()
    hits = []
    b.on_deliver = lambda: hits.append(sim.now)
    a.post_send(NetMsg(src=0, dst=1, size=8, kind="x"))
    sim.run()
    assert len(hits) == 1


def test_unknown_destination_raises():
    sim, fabric, (a, b) = make_net()
    with pytest.raises(KeyError):
        a.post_send(NetMsg(src=0, dst=99, size=8, kind="x"))


def test_duplicate_node_rejected():
    sim, fabric, _ = make_net()
    with pytest.raises(ValueError):
        fabric.add_node(0)


def test_nic_statistics():
    sim, fabric, (a, b) = make_net()
    a.post_send(NetMsg(src=0, dst=1, size=100, kind="x"))
    a.post_send(NetMsg(src=0, dst=1, size=200, kind="x"))
    sim.run()
    assert a.stats.counters["tx_msgs"] == 2
    assert a.stats.accum["tx_bytes"] == 300
    assert b.stats.counters["rx_msgs"] == 2
    assert fabric.stats.counters["msgs"] == 2


def test_network_params_presets_sane():
    for p in (HDR_IB, FDR_IB, TESTNET):
        assert p.wire_latency_us > 0
        assert p.bytes_per_us > 0
        assert p.tx_time(0) == p.tx_overhead_us
        assert p.tx_time(10000) > p.tx_overhead_us
    # HDR is faster than FDR in both latency and bandwidth
    assert HDR_IB.bytes_per_us > FDR_IB.bytes_per_us
    assert HDR_IB.wire_latency_us < FDR_IB.wire_latency_us


def test_with_override():
    p = TESTNET.with_(wire_latency_us=9.0)
    assert p.wire_latency_us == 9.0
    assert p.bytes_per_us == TESTNET.bytes_per_us


# ---------------------------------------------------------------------------
# FatTreeFabric
# ---------------------------------------------------------------------------
def test_fat_tree_same_switch_like_crossbar():
    from repro.netsim import FatTreeFabric
    sim = Simulator()
    fabric = FatTreeFabric(sim, TESTNET, nodes_per_switch=4)
    a, b = fabric.add_node(0), fabric.add_node(1)
    a.post_send(NetMsg(src=0, dst=1, size=1000, kind="x"))
    sim.run()
    got = b.poll_rx()
    expected = TESTNET.tx_time(1000) + TESTNET.wire_latency_us
    assert got.arrive_t == pytest.approx(expected)
    assert fabric.stats.counters.get("cross_switch_msgs", 0) == 0


def test_fat_tree_cross_switch_adds_hops():
    from repro.netsim import FatTreeFabric
    sim = Simulator()
    fabric = FatTreeFabric(sim, TESTNET, nodes_per_switch=2,
                           switch_hop_us=0.5)
    nics = [fabric.add_node(i) for i in range(4)]
    nics[0].post_send(NetMsg(src=0, dst=3, size=1000, kind="x"))
    sim.run()
    got = nics[3].poll_rx()
    same_switch = TESTNET.tx_time(1000) + TESTNET.wire_latency_us
    assert got.arrive_t > same_switch + 2 * 0.5 - 1e-9
    assert fabric.stats.counters["cross_switch_msgs"] == 1
    assert fabric.switch_of(0) == 0 and fabric.switch_of(3) == 1


def test_fat_tree_oversubscription_serializes_uplink():
    from repro.netsim import FatTreeFabric

    def span(oversub):
        sim = Simulator()
        fabric = FatTreeFabric(sim, TESTNET, nodes_per_switch=2,
                               oversubscription=oversub)
        nics = [fabric.add_node(i) for i in range(4)]
        # both nodes of switch 0 blast cross-switch traffic at once
        for src, dst in ((0, 2), (1, 3)):
            for _ in range(5):
                nics[src].post_send(NetMsg(src=src, dst=dst, size=50000,
                                           kind="x"))
        sim.run()
        return sim.now

    # heavier oversubscription -> the shared up-link finishes later
    assert span(8.0) > span(1.0)


def test_fat_tree_invalid_parameters():
    from repro.netsim import FatTreeFabric
    sim = Simulator()
    with pytest.raises(ValueError):
        FatTreeFabric(sim, TESTNET, nodes_per_switch=0)
    with pytest.raises(ValueError):
        FatTreeFabric(sim, TESTNET, oversubscription=0.0)


def test_fat_tree_loopback():
    from repro.netsim import FatTreeFabric
    sim = Simulator()
    fabric = FatTreeFabric(sim, TESTNET, nodes_per_switch=2)
    a = fabric.add_node(0)
    a.post_send(NetMsg(src=0, dst=0, size=100, kind="x"))
    sim.run()
    assert a.poll_rx() is not None


def test_nic_virtual_channels_separate_traffic():
    sim, fabric, (a, b) = make_net()
    a.post_send(NetMsg(src=0, dst=1, size=8, kind="x", vchan=0))
    a.post_send(NetMsg(src=0, dst=1, size=8, kind="y", vchan=2))
    sim.run()
    assert b.rx_pending() == 2
    assert b.rx_pending(0) == 1
    assert b.rx_pending(1) == 0
    assert b.rx_pending(2) == 1
    assert b.poll_rx(2).kind == "y"
    assert b.poll_rx(0).kind == "x"
    assert b.poll_rx(5) is None
